#include "res/budget.hpp"

#include <dirent.h>
#include <sys/resource.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"

namespace sssp::res {
namespace {

void bump(const char* name) {
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter(name).add(1);
}

// Runtime-named failpoint check (the SSSP_FAILPOINT macro wants a
// literal; charge sites arrive as strings). Same fast path: one
// relaxed load when faults are globally off.
bool site_fires(const char* site) noexcept {
  if (!fault::faults_enabled()) return false;
  if (fault::FailpointRegistry::global().failpoint(site).should_fire())
    return true;
  return fault::FailpointRegistry::global()
      .failpoint("res.alloc.fail")
      .should_fire();
}

std::string format_error(ResourceKind kind, const std::string& site,
                         std::uint64_t requested, std::uint64_t available) {
  std::ostringstream out;
  out << "resource budget exceeded at " << site << ": requested " << requested
      << " " << to_string(kind) << ", available " << available;
  return out.str();
}

util::WriteFault io_failpoint_hook() noexcept {
  util::WriteFault fault;
  if (SSSP_FAILPOINT("io.write.enospc")) fault.error = ENOSPC;
  if (SSSP_FAILPOINT("io.write.short")) fault.short_write = true;
  return fault;
}

std::uint64_t env_mb(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

const char* to_string(ResourceKind kind) noexcept {
  switch (kind) {
    case ResourceKind::kMemory:
      return "memory bytes";
    case ResourceKind::kScratch:
      return "scratch bytes";
    case ResourceKind::kFds:
      return "fds";
  }
  return "resource";
}

ResourceError::ResourceError(ResourceKind kind, std::string site,
                             std::uint64_t requested, std::uint64_t available)
    : std::runtime_error(format_error(kind, site, requested, available)),
      kind_(kind),
      site_(std::move(site)),
      requested_(requested),
      available_(available) {}

struct ResourceBudget::State {
  std::atomic<std::uint64_t> memory_limit{kUnlimited};
  std::atomic<std::uint64_t> memory_used{0};
  std::atomic<std::uint64_t> memory_peak{0};
  std::atomic<std::uint64_t> scratch_limit{kUnlimited};
  std::atomic<std::uint64_t> scratch_used{0};
  std::atomic<std::uint64_t> fd_headroom{16};
  std::atomic<std::uint64_t> rejections{0};
};

ResourceBudget::State& ResourceBudget::state() const noexcept {
  static State instance;
  return instance;
}

ResourceBudget& ResourceBudget::global() {
  static ResourceBudget instance;
  return instance;
}

void ResourceBudget::set_memory_limit(std::uint64_t bytes) noexcept {
  state().memory_limit.store(bytes, std::memory_order_relaxed);
}

std::uint64_t ResourceBudget::memory_limit() const noexcept {
  return state().memory_limit.load(std::memory_order_relaxed);
}

std::uint64_t ResourceBudget::memory_used() const noexcept {
  return state().memory_used.load(std::memory_order_relaxed);
}

std::uint64_t ResourceBudget::memory_available() const noexcept {
  const std::uint64_t limit = memory_limit();
  if (limit == kUnlimited) return std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t used = memory_used();
  return used >= limit ? 0 : limit - used;
}

bool ResourceBudget::injected_or_over(std::uint64_t bytes, const char* site,
                                      std::uint64_t limit,
                                      std::uint64_t used) noexcept {
  if (site_fires(site)) return true;
  if (limit == kUnlimited) return false;
  return bytes > limit || used > limit - bytes;
}

bool ResourceBudget::try_charge_memory(std::uint64_t bytes,
                                       const char* site) noexcept {
  auto& s = state();
  const std::uint64_t limit = s.memory_limit.load(std::memory_order_relaxed);
  // CAS loop so concurrent charges cannot jointly overshoot the limit.
  std::uint64_t used = s.memory_used.load(std::memory_order_relaxed);
  for (;;) {
    if (injected_or_over(bytes, site, limit, used)) {
      s.rejections.fetch_add(1, std::memory_order_relaxed);
      bump("res.reject.memory");
      return false;
    }
    if (s.memory_used.compare_exchange_weak(used, used + bytes,
                                            std::memory_order_relaxed))
      break;
  }
  std::uint64_t peak = s.memory_peak.load(std::memory_order_relaxed);
  const std::uint64_t now = used + bytes;
  while (peak < now && !s.memory_peak.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void ResourceBudget::charge_memory(std::uint64_t bytes, const char* site) {
  if (!try_charge_memory(bytes, site))
    throw ResourceError(ResourceKind::kMemory, site, bytes,
                        memory_available());
}

void ResourceBudget::release_memory(std::uint64_t bytes) noexcept {
  auto& s = state();
  std::uint64_t used = s.memory_used.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next = used >= bytes ? used - bytes : 0;
    if (s.memory_used.compare_exchange_weak(used, next,
                                            std::memory_order_relaxed))
      return;
  }
}

bool ResourceBudget::check_memory(std::uint64_t bytes,
                                  const char* site) noexcept {
  if (!injected_or_over(bytes, site, memory_limit(), memory_used()))
    return true;
  state().rejections.fetch_add(1, std::memory_order_relaxed);
  bump("res.reject.memory");
  return false;
}

void ResourceBudget::require_memory(std::uint64_t bytes, const char* site) {
  const std::uint64_t limit = memory_limit();
  const std::uint64_t used = memory_used();
  if (injected_or_over(bytes, site, limit, used)) {
    state().rejections.fetch_add(1, std::memory_order_relaxed);
    bump("res.reject.memory");
    throw ResourceError(ResourceKind::kMemory, site, bytes,
                        memory_available());
  }
  // Record what the check admitted so snapshots reflect the real
  // high-water even for untracked process-lifetime objects.
  auto& s = state();
  std::uint64_t peak = s.memory_peak.load(std::memory_order_relaxed);
  const std::uint64_t now = used + bytes;
  while (peak < now && !s.memory_peak.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void ResourceBudget::set_scratch_limit(std::uint64_t bytes) noexcept {
  state().scratch_limit.store(bytes, std::memory_order_relaxed);
}

std::uint64_t ResourceBudget::scratch_limit() const noexcept {
  return state().scratch_limit.load(std::memory_order_relaxed);
}

std::uint64_t ResourceBudget::scratch_used() const noexcept {
  return state().scratch_used.load(std::memory_order_relaxed);
}

bool ResourceBudget::try_charge_scratch(std::uint64_t bytes,
                                        const char* site) noexcept {
  auto& s = state();
  const std::uint64_t limit = s.scratch_limit.load(std::memory_order_relaxed);
  std::uint64_t used = s.scratch_used.load(std::memory_order_relaxed);
  for (;;) {
    if (injected_or_over(bytes, site, limit, used)) {
      s.rejections.fetch_add(1, std::memory_order_relaxed);
      bump("res.reject.scratch");
      return false;
    }
    if (s.scratch_used.compare_exchange_weak(used, used + bytes,
                                             std::memory_order_relaxed))
      return true;
  }
}

void ResourceBudget::release_scratch(std::uint64_t bytes) noexcept {
  auto& s = state();
  std::uint64_t used = s.scratch_used.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next = used >= bytes ? used - bytes : 0;
    if (s.scratch_used.compare_exchange_weak(used, next,
                                             std::memory_order_relaxed))
      return;
  }
}

void ResourceBudget::set_fd_headroom(std::uint64_t headroom) noexcept {
  state().fd_headroom.store(headroom, std::memory_order_relaxed);
}

std::uint64_t ResourceBudget::fd_headroom() const noexcept {
  return state().fd_headroom.load(std::memory_order_relaxed);
}

int ResourceBudget::open_fd_count() noexcept {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  // The opendir itself holds one descriptor while counting.
  return count > 0 ? count - 1 : 0;
}

std::uint64_t ResourceBudget::fd_limit() noexcept {
  struct rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0 ||
      limit.rlim_cur == RLIM_INFINITY)
    return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(limit.rlim_cur);
}

bool ResourceBudget::try_require_fds(std::uint64_t count,
                                     const char* site) noexcept {
  if (site_fires(site)) {
    state().rejections.fetch_add(1, std::memory_order_relaxed);
    bump("res.reject.fds");
    return false;
  }
  const std::uint64_t limit = fd_limit();
  if (limit == std::numeric_limits<std::uint64_t>::max()) return true;
  const int open = open_fd_count();
  if (open < 0) return true;  // no /proc: cannot measure, do not block
  const std::uint64_t needed =
      static_cast<std::uint64_t>(open) + count + fd_headroom();
  if (needed <= limit) return true;
  state().rejections.fetch_add(1, std::memory_order_relaxed);
  bump("res.reject.fds");
  return false;
}

void ResourceBudget::require_fds(std::uint64_t count, const char* site) {
  if (try_require_fds(count, site)) return;
  const std::uint64_t limit = fd_limit();
  const int open = open_fd_count();
  const std::uint64_t available =
      (open >= 0 && limit > static_cast<std::uint64_t>(open))
          ? limit - static_cast<std::uint64_t>(open)
          : 0;
  throw ResourceError(ResourceKind::kFds, site, count, available);
}

ResourceBudget::Snapshot ResourceBudget::snapshot() const noexcept {
  const auto& s = state();
  Snapshot snap;
  snap.memory_limit = s.memory_limit.load(std::memory_order_relaxed);
  snap.memory_used = s.memory_used.load(std::memory_order_relaxed);
  snap.memory_peak = s.memory_peak.load(std::memory_order_relaxed);
  snap.scratch_limit = s.scratch_limit.load(std::memory_order_relaxed);
  snap.scratch_used = s.scratch_used.load(std::memory_order_relaxed);
  snap.rejections = s.rejections.load(std::memory_order_relaxed);
  snap.open_fds = open_fd_count();
  return snap;
}

void ResourceBudget::reset() noexcept {
  auto& s = state();
  s.memory_limit.store(kUnlimited, std::memory_order_relaxed);
  s.memory_used.store(0, std::memory_order_relaxed);
  s.memory_peak.store(0, std::memory_order_relaxed);
  s.scratch_limit.store(kUnlimited, std::memory_order_relaxed);
  s.scratch_used.store(0, std::memory_order_relaxed);
  s.fd_headroom.store(16, std::memory_order_relaxed);
  s.rejections.store(0, std::memory_order_relaxed);
}

MemoryReservation::MemoryReservation(ResourceBudget& budget,
                                     std::uint64_t bytes, const char* site)
    : budget_(&budget), bytes_(bytes) {
  if (!budget.try_charge_memory(bytes, site)) {
    budget_ = nullptr;
    throw ResourceError(ResourceKind::kMemory, site, bytes,
                        budget.memory_available());
  }
}

MemoryReservation::MemoryReservation(MemoryReservation&& other) noexcept
    : budget_(other.budget_), bytes_(other.bytes_) {
  other.budget_ = nullptr;
  other.bytes_ = 0;
}

MemoryReservation& MemoryReservation::operator=(
    MemoryReservation&& other) noexcept {
  if (this != &other) {
    release();
    budget_ = other.budget_;
    bytes_ = other.bytes_;
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

MemoryReservation MemoryReservation::try_reserve(ResourceBudget& budget,
                                                 std::uint64_t bytes,
                                                 const char* site) noexcept {
  MemoryReservation reservation;
  if (budget.try_charge_memory(bytes, site)) {
    reservation.budget_ = &budget;
    reservation.bytes_ = bytes;
  }
  return reservation;
}

void MemoryReservation::release() noexcept {
  if (budget_ != nullptr) {
    budget_->release_memory(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }
}

void configure_from_env() {
  auto& budget = ResourceBudget::global();
  if (const std::uint64_t mb = env_mb("SSSP_MEM_BUDGET_MB"); mb > 0)
    budget.set_memory_limit(mb * 1024 * 1024);
  if (const std::uint64_t mb = env_mb("SSSP_SCRATCH_BUDGET_MB"); mb > 0)
    budget.set_scratch_limit(mb * 1024 * 1024);
  if (const std::uint64_t headroom = env_mb("SSSP_FD_HEADROOM"); headroom > 0)
    budget.set_fd_headroom(headroom);
}

void install_io_failpoints() { util::set_write_fault_hook(&io_failpoint_hook); }

}  // namespace sssp::res
