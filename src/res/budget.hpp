// Process-wide resource governance (docs/ROBUSTNESS.md, "Resource
// budgets & exhaustion"). The big consumers — CSR graph load, the
// frontier engine's high-water reserves, batch-engine SoA lanes,
// checkpoint serialization, the serve result cache — ask the
// ResourceBudget *before* allocating, so oversize work is rejected
// with a structured ResourceError (tools exit kExitResourceBudget)
// instead of dying in the OOM killer or an uncaught std::bad_alloc.
//
// Three tracked resources:
//   memory   bytes of large-object allocations, charged/released
//            explicitly by the instrumented sites (not a malloc hook —
//            small allocations are deliberately untracked).
//   scratch  bytes of scratch-disk output (checkpoints, spill files).
//   fds      open file descriptors, measured live from /proc/self/fd
//            against RLIMIT_NOFILE with a configurable headroom.
//
// Every charge site doubles as a failpoint: try_charge_memory(site,…)
// fires the failpoint named by `site` (e.g. "res.engine.alloc") plus
// the generic "res.alloc.fail", so CI can prove each degradation path
// without actually shrinking the machine. Layering: res sits between
// fault and graph (links fault + util), which also makes it the home
// of install_io_failpoints() — the glue that maps io.write.* failpoints
// onto util/atomic_file's hook, which util itself cannot reference.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace sssp::res {

enum class ResourceKind : std::uint8_t { kMemory = 0, kScratch = 1, kFds = 2 };

const char* to_string(ResourceKind kind) noexcept;

// A budget was (or would be) exceeded. `site` names the charge site —
// which is also the failpoint that can force this error in tests.
class ResourceError : public std::runtime_error {
 public:
  ResourceError(ResourceKind kind, std::string site, std::uint64_t requested,
                std::uint64_t available);

  ResourceKind kind() const noexcept { return kind_; }
  const std::string& site() const noexcept { return site_; }
  std::uint64_t requested() const noexcept { return requested_; }
  std::uint64_t available() const noexcept { return available_; }

 private:
  ResourceKind kind_;
  std::string site_;
  std::uint64_t requested_;
  std::uint64_t available_;
};

inline constexpr std::uint64_t kUnlimited = 0;  // limit value: no cap

class ResourceBudget {
 public:
  ResourceBudget() = default;
  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  // The process-wide instance every instrumented site consults.
  static ResourceBudget& global();

  // ---- memory ----
  void set_memory_limit(std::uint64_t bytes) noexcept;
  std::uint64_t memory_limit() const noexcept;
  std::uint64_t memory_used() const noexcept;
  // Remaining headroom; max uint64 when unlimited.
  std::uint64_t memory_available() const noexcept;

  // Charges `bytes` against the budget. `site` is both the label in
  // the ResourceError and the failpoint fired here. try_* returns
  // false instead of throwing; the throwing form is for sites with no
  // degradation path. Both bump the `res.reject` counter on refusal.
  bool try_charge_memory(std::uint64_t bytes, const char* site) noexcept;
  void charge_memory(std::uint64_t bytes, const char* site);
  void release_memory(std::uint64_t bytes) noexcept;

  // Check-only variant for process-lifetime objects (the resident
  // graph): verifies headroom and records a high-water mark but does
  // not hold a charge that would need releasing.
  void require_memory(std::uint64_t bytes, const char* site);
  // Non-throwing check-only form, for sites with a degradation path
  // (skip a high-water reserve, fall back to serial advance).
  bool check_memory(std::uint64_t bytes, const char* site) noexcept;

  // ---- scratch disk ----
  void set_scratch_limit(std::uint64_t bytes) noexcept;
  std::uint64_t scratch_limit() const noexcept;
  std::uint64_t scratch_used() const noexcept;
  bool try_charge_scratch(std::uint64_t bytes, const char* site) noexcept;
  void release_scratch(std::uint64_t bytes) noexcept;

  // ---- file descriptors ----
  // Minimum free descriptors (RLIMIT_NOFILE minus open count) that
  // must remain after a site opens `count` more; default 16.
  void set_fd_headroom(std::uint64_t headroom) noexcept;
  std::uint64_t fd_headroom() const noexcept;
  // Live count of open descriptors via /proc/self/fd; -1 if
  // unavailable (non-Linux), in which case fd checks pass trivially.
  static int open_fd_count() noexcept;
  // Soft RLIMIT_NOFILE; max uint64 if unlimited/unknown.
  static std::uint64_t fd_limit() noexcept;
  // Throws ResourceError{kFds} if opening `count` descriptors would
  // leave less than the headroom. `site` fires as a failpoint first.
  void require_fds(std::uint64_t count, const char* site);
  bool try_require_fds(std::uint64_t count, const char* site) noexcept;

  struct Snapshot {
    std::uint64_t memory_limit = 0;
    std::uint64_t memory_used = 0;
    std::uint64_t memory_peak = 0;
    std::uint64_t scratch_limit = 0;
    std::uint64_t scratch_used = 0;
    std::uint64_t rejections = 0;
    int open_fds = -1;
  };
  Snapshot snapshot() const noexcept;

  // Tests only: clears limits, charges, and counters.
  void reset() noexcept;

 private:
  bool injected_or_over(std::uint64_t bytes, const char* site,
                        std::uint64_t limit, std::uint64_t used) noexcept;

  struct State;
  State& state() const noexcept;
};

// RAII memory charge: releases on destruction. Default-constructed /
// moved-from reservations hold nothing.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  // Throws ResourceError when the charge is refused.
  MemoryReservation(ResourceBudget& budget, std::uint64_t bytes,
                    const char* site);
  MemoryReservation(MemoryReservation&& other) noexcept;
  MemoryReservation& operator=(MemoryReservation&& other) noexcept;
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation() { release(); }

  // Non-throwing acquisition; holds nothing on refusal.
  static MemoryReservation try_reserve(ResourceBudget& budget,
                                       std::uint64_t bytes,
                                       const char* site) noexcept;

  bool held() const noexcept { return budget_ != nullptr; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  void release() noexcept;

 private:
  ResourceBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
};

// Reads SSSP_MEM_BUDGET_MB / SSSP_SCRATCH_BUDGET_MB / SSSP_FD_HEADROOM
// into the global budget (unset or unparsable values are ignored).
// Tools call this before flag parsing so --mem-budget-mb can override.
void configure_from_env();

// Installs the util/atomic_file write-fault hook that maps the
// `io.write.enospc` (inject ENOSPC) and `io.write.short` (halve the
// chunk) failpoints onto every atomic write. Idempotent; called from
// the tools' enable_faults().
void install_io_failpoints();

}  // namespace sssp::res
