#include "frontier/engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"
#include "res/budget.hpp"
#include "util/thread_pool.hpp"
#include "util/weight_math.hpp"

namespace sssp::frontier {

namespace {

// Instrument handles are resolved once and cached; every hot-path use
// is behind the metrics_enabled() branch.
struct EngineMetrics {
  obs::Counter& advances;
  obs::Counter& parallel_advances;
  obs::Counter& edges_relaxed;
  obs::Counter& improving;
  obs::Counter& bisects;
  obs::Histogram& frontier_size;
  obs::Histogram& chunk_edges;
  obs::Histogram& thread_utilization;

  static EngineMetrics& get() {
    static EngineMetrics m{
        obs::MetricsRegistry::global().counter("engine.advance.calls"),
        obs::MetricsRegistry::global().counter("engine.advance.parallel"),
        obs::MetricsRegistry::global().counter("engine.advance.edges"),
        obs::MetricsRegistry::global().counter("engine.advance.improving"),
        obs::MetricsRegistry::global().counter("engine.bisect.calls"),
        obs::MetricsRegistry::global().histogram("engine.frontier_size"),
        obs::MetricsRegistry::global().histogram("engine.advance.chunk_edges"),
        obs::MetricsRegistry::global().histogram(
            "engine.advance.thread_utilization")};
    return m;
  }
};

constexpr std::size_t kChunksPerThread = 8;   // oversubscription for claiming
constexpr std::size_t kRangesPerThread = 4;   // uniform-cost scan phases

// Headroom-checked high-water reserve (docs/ROBUSTNESS.md, "Resource
// budgets & exhaustion"): when the budget refuses, the reserve is
// skipped and the vector grows on demand — amortized-correct, just
// slower — instead of dying in std::bad_alloc at the reserve.
template <typename T>
void reserve_within_budget(std::vector<T>& vec, std::size_t count) {
  if (count <= vec.capacity()) return;
  if (!res::ResourceBudget::global().check_memory(
          static_cast<std::uint64_t>(count) * sizeof(T),
          "res.engine.alloc")) {
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global().counter("engine.reserve.skipped").add(1);
    return;
  }
  vec.reserve(count);
}

}  // namespace

NearFarEngine::NearFarEngine(const graph::CsrGraph& graph,
                             graph::VertexId source)
    : NearFarEngine(graph, source, Options{}) {}

NearFarEngine::NearFarEngine(const graph::CsrGraph& graph,
                             graph::VertexId source, const Options& options)
    : graph_(&graph),
      source_(source),
      options_(options),
      dist_(graph.num_vertices(), graph::kInfiniteDistance),
      parent_(graph.num_vertices(), graph::kInvalidVertex),
      mark_(graph.num_vertices(), 0) {
  if (source >= graph.num_vertices())
    throw std::invalid_argument("NearFarEngine: source out of range");
  dist_[source] = 0;
  parent_[source] = source;
  frontier_.push_back(source);
}

NearFarEngine::AdvanceResult NearFarEngine::advance_and_filter() {
  {
    // The dedup filter itself is fused into the advance loop (the
    // epoch-stamped mark array); this span covers the standalone part
    // of the filter phase — bitmap epoch maintenance. See
    // docs/OBSERVABILITY.md for how to read the fused trace.
    SSSP_TRACE_SPAN("filter");
    SSSP_PROF_PHASE("filter");
    updated_frontier_.clear();
    reserve_within_budget(updated_frontier_, updated_high_water_);
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: reset marks once every 2^32 iterations
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
  }
  AdvanceResult result;
  {
    SSSP_TRACE_SPAN("advance");
    SSSP_PROF_PHASE("advance");
    bool parallel =
        options_.parallel && frontier_.size() >= options_.parallel_threshold;
    // Budget preflight BEFORE any mutation: once a parallel advance has
    // partially relaxed (atomic-min already lowered distances), re-
    // running the iteration serially would lose frontier vertices, so
    // the degrade decision can only be taken here, while the iteration
    // state is still untouched. Serial and parallel advances produce
    // identical final distances/parents — only iteration dynamics and
    // scratch footprint differ — which is what makes this safe.
    if (parallel && !parallel_scratch_fits()) {
      parallel = false;
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global()
            .counter("engine.advance.degraded_serial")
            .add(1);
    }
    result = parallel ? advance_parallel() : advance_serial();
  }
  total_improving_ += result.improving_relaxations;
  updated_high_water_ = std::max<std::size_t>(updated_high_water_, result.x3);
  frontier_.clear();
  if (obs::metrics_enabled()) {
    EngineMetrics& m = EngineMetrics::get();
    m.advances.add();
    m.edges_relaxed.add(result.x2);
    m.improving.add(result.improving_relaxations);
    m.frontier_size.record(static_cast<double>(result.x1));
  }
  return result;
}

bool NearFarEngine::parallel_scratch_fits() noexcept {
  const std::size_t x1 = frontier_.size();
  std::uint64_t bytes = 0;
  if (winner_.size() != graph_->num_vertices())
    bytes += static_cast<std::uint64_t>(graph_->num_vertices()) *
             sizeof(std::uint64_t);
  if (edge_prefix_.capacity() < x1 + 1)
    bytes += static_cast<std::uint64_t>(x1 + 1) * sizeof(std::uint64_t);
  if (frontier_dist_.capacity() < x1)
    bytes += static_cast<std::uint64_t>(x1) * sizeof(graph::Distance);
  // Candidate buffers scale with the frontier's out-edges; the exact
  // degree sum is only known after planning, so estimate with the
  // graph-wide average degree.
  const double avg_degree =
      graph_->num_vertices() == 0
          ? 0.0
          : static_cast<double>(graph_->num_edges()) /
                static_cast<double>(graph_->num_vertices());
  bytes += static_cast<std::uint64_t>(static_cast<double>(x1) * avg_degree) *
           sizeof(Candidate);
  return res::ResourceBudget::global().check_memory(bytes, "res.engine.alloc");
}

NearFarEngine::AdvanceResult NearFarEngine::advance_serial() {
  AdvanceResult result;
  result.x1 = frontier_.size();

  for (std::size_t fi = 0; fi < frontier_.size(); ++fi) {
    if (options_.control != nullptr && (fi & 4095u) == 0 &&
        options_.control->should_abort())
      throw util::StopRequested(options_.control->reason());
    const graph::VertexId u = frontier_[fi];
    const auto neighbors = graph_->neighbors(u);
    const auto weights = graph_->weights_of(u);
    result.x2 += neighbors.size();
    const graph::Distance du = dist_[u];
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::VertexId v = neighbors[i];
      const graph::Distance nd = util::saturating_add(du, weights[i]);
      if (nd < dist_[v]) {
        dist_[v] = nd;
        parent_[v] = u;
        ++result.improving_relaxations;
        if (mark_[v] != epoch_) {
          mark_[v] = epoch_;
          updated_frontier_.push_back(v);
        }
      }
    }
  }
  result.x3 = updated_frontier_.size();
  return result;
}

std::uint64_t NearFarEngine::plan_chunks() {
  const std::size_t x1 = frontier_.size();
  frontier_dist_.resize(x1);

  // The shared planner (frontier/plan.hpp) runs the parallel two-pass
  // prefix sum over the frontier's out-degrees; its snapshot hook
  // captures every frontier vertex's iteration-start distance in the
  // same sweep (synchronous-relaxation semantics: phase A reads only
  // this snapshot, so mid-iteration improvements of a frontier vertex
  // never leak into the same iteration — that is what makes the
  // results schedule-independent).
  PlanParams params;
  params.partition = options_.partition;
  params.min_chunk_edges = options_.min_chunk_edges;
  params.chunks_per_thread = kChunksPerThread;
  params.ranges_per_thread = kRangesPerThread;
  const std::uint64_t x2 = build_frontier_plan(
      *graph_, frontier_, params, edge_prefix_, chunk_begin_, range_base_,
      [&](std::size_t i, graph::VertexId u) { frontier_dist_[i] = dist_[u]; });
  if (obs::metrics_enabled()) {
    EngineMetrics& m = EngineMetrics::get();
    for (std::size_t c = 0; c + 1 < chunk_begin_.size(); ++c)
      m.chunk_edges.record(static_cast<double>(
          edge_prefix_[chunk_begin_[c + 1]] - edge_prefix_[chunk_begin_[c]]));
  }
  return x2;
}

NearFarEngine::AdvanceResult NearFarEngine::advance_parallel() {
  AdvanceResult result;
  result.x1 = frontier_.size();
  util::ThreadPool& pool = util::ThreadPool::global();
  if (winner_.size() != graph_->num_vertices())
    winner_.assign(graph_->num_vertices(), 0);

  // Abort polls sit at phase *boundaries* only: pool workers never see
  // the control object, so a stop request lands between phases, before
  // any of this iteration's writes become externally visible state.
  if (options_.control != nullptr && options_.control->should_abort())
    throw util::StopRequested(options_.control->reason());
  {
    SSSP_TRACE_SPAN("advance.plan");
    SSSP_PROF_PHASE("advance.plan");
    result.x2 = plan_chunks();
  }
  const std::size_t num_chunks = chunk_begin_.size() - 1;
  const bool tally_threads = obs::metrics_enabled();
  if (tally_threads) thread_edges_.assign(pool.size(), 0);

  // Phase A — relax: atomic-min every edge's proposed distance into
  // dist_, claim each improved vertex exactly once via an epoch CAS on
  // the mark array. The claim *set* is schedule-independent (v is
  // claimed iff some edge beats its iteration-start distance); which
  // thread claims is not, so ordering is resolved in phases B1/B2.
  {
    SSSP_TRACE_SPAN("advance.relax");
    SSSP_PROF_PHASE("advance.relax");
    pool.for_each_chunk(num_chunks, [&](std::size_t c, std::size_t tid) {
      const std::size_t begin = chunk_begin_[c];
      const std::size_t end = chunk_begin_[c + 1];
      for (std::size_t i = begin; i < end; ++i) {
        const graph::VertexId u = frontier_[i];
        const graph::Distance du = frontier_dist_[i];
        const auto neighbors = graph_->neighbors(u);
        const auto weights = graph_->weights_of(u);
        for (std::size_t e = 0; e < neighbors.size(); ++e) {
          const graph::VertexId v = neighbors[e];
          const graph::Distance nd = util::saturating_add(du, weights[e]);
          std::atomic_ref<graph::Distance> dv(dist_[v]);
          graph::Distance current = dv.load(std::memory_order_relaxed);
          bool improved = false;
          while (nd < current) {
            if (dv.compare_exchange_weak(current, nd,
                                         std::memory_order_relaxed)) {
              improved = true;
              break;
            }
          }
          if (!improved) continue;
          std::atomic_ref<std::uint32_t> mark(mark_[v]);
          std::uint32_t seen = mark.load(std::memory_order_relaxed);
          while (seen != epoch_) {
            if (mark.compare_exchange_weak(seen, epoch_,
                                           std::memory_order_relaxed)) {
              // Sole claimer initializes the winner slot; the phase
              // barrier publishes it to B1.
              winner_[v] = std::numeric_limits<std::uint64_t>::max();
              break;
            }
          }
        }
      }
      if (tally_threads)
        thread_edges_[tid] += edge_prefix_[end] - edge_prefix_[begin];
    });
  }

  if (options_.control != nullptr && options_.control->should_abort())
    throw util::StopRequested(options_.control->reason());

  // Phase B1 — candidates: distances are final now, so re-walk the
  // edges and record every relaxation that achieved its target's final
  // distance, atomic-min-ing the canonical edge rank (frontier order ×
  // adjacency order) into the winner slot. Both the per-chunk candidate
  // lists and the winner ranks are pure functions of iteration-start
  // state — no schedule dependence survives this phase.
  {
    SSSP_TRACE_SPAN("advance.candidates");
    SSSP_PROF_PHASE("advance.candidates");
    chunk_candidates_.resize(
        std::max(chunk_candidates_.size(), num_chunks));
    pool.for_each_chunk(num_chunks, [&](std::size_t c, std::size_t) {
      auto& candidates = chunk_candidates_[c];
      candidates.clear();
      const std::size_t begin = chunk_begin_[c];
      const std::size_t end = chunk_begin_[c + 1];
      for (std::size_t i = begin; i < end; ++i) {
        const graph::VertexId u = frontier_[i];
        const graph::Distance du = frontier_dist_[i];
        const std::uint64_t base = edge_prefix_[i];
        const auto neighbors = graph_->neighbors(u);
        const auto weights = graph_->weights_of(u);
        for (std::size_t e = 0; e < neighbors.size(); ++e) {
          const graph::VertexId v = neighbors[e];
          if (mark_[v] != epoch_) continue;  // not improved this iteration
          const graph::Distance nd = util::saturating_add(du, weights[e]);
          if (nd != dist_[v]) continue;  // does not achieve the final value
          const std::uint64_t rank = base + e;
          std::atomic_ref<std::uint64_t> w(winner_[v]);
          std::uint64_t cur = w.load(std::memory_order_relaxed);
          while (rank < cur &&
                 !w.compare_exchange_weak(cur, rank,
                                          std::memory_order_relaxed)) {
          }
          candidates.push_back({rank, v, u});
        }
      }
    });
  }

  // Phase B2 — deterministic merge: count winners per chunk, exclusive-
  // prefix-sum the counts, write each chunk's winners into its reserved
  // slots. Chunk ranges partition the rank space in order and each list
  // is rank-sorted, so the concatenation is globally ordered by winning
  // edge rank — one canonical order, whatever the thread count or
  // chunking. The winning edge also records the parent.
  {
    SSSP_TRACE_SPAN("advance.emit");
    SSSP_PROF_PHASE("advance.emit");
    chunk_counts_.assign(num_chunks, 0);
    pool.for_each_chunk(num_chunks, [&](std::size_t c, std::size_t) {
      std::uint64_t count = 0;
      for (const Candidate& cand : chunk_candidates_[c])
        if (winner_[cand.v] == cand.rank) ++count;
      chunk_counts_[c] = count;
    });
    chunk_offsets_.assign(num_chunks, 0);
    std::uint64_t total = 0;
    std::uint64_t improving = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      chunk_offsets_[c] = total;
      total += chunk_counts_[c];
      improving += chunk_candidates_[c].size();
    }
    updated_frontier_.resize(total);
    pool.for_each_chunk(num_chunks, [&](std::size_t c, std::size_t) {
      std::uint64_t out = chunk_offsets_[c];
      for (const Candidate& cand : chunk_candidates_[c]) {
        if (winner_[cand.v] != cand.rank) continue;
        updated_frontier_[out++] = cand.v;
        parent_[cand.v] = cand.u;
      }
    });
    result.x3 = total;
    result.improving_relaxations = improving;
  }

  if (tally_threads) {
    EngineMetrics& m = EngineMetrics::get();
    m.parallel_advances.add();
    const std::uint64_t busiest =
        *std::max_element(thread_edges_.begin(), thread_edges_.end());
    if (busiest > 0)
      m.thread_utilization.record(
          static_cast<double>(result.x2) /
          (static_cast<double>(pool.size()) * static_cast<double>(busiest)));
  }
  return result;
}

void NearFarEngine::partition_by_distance(
    const std::vector<graph::VertexId>& input, graph::Distance threshold,
    std::vector<graph::VertexId>& below) {
  below.clear();
  frontier_max_distance_ = 0;
  const std::size_t n = input.size();
  reserve_within_budget(spill_, spill_high_water_);
  if (!options_.parallel || n < options_.parallel_threshold) {
    for (const graph::VertexId v : input) {
      const graph::Distance d = dist_[v];
      if (d < threshold) {
        below.push_back(v);
        frontier_max_distance_ = std::max(frontier_max_distance_, d);
      } else {
        spill_.push_back(v);
      }
    }
    spill_high_water_ = std::max(spill_high_water_, spill_.size());
    return;
  }

  // Count → exclusive-prefix-sum → write: the stable partition runs on
  // the pool but produces exactly the serial output (input order is
  // preserved on both sides).
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(n, pool.size() * kRangesPerThread));
  const std::size_t per = (n + chunks - 1) / chunks;
  chunk_counts_.assign(chunks, 0);   // below side
  chunk_counts2_.assign(chunks, 0);  // spill side
  chunk_max_.assign(chunks, 0);
  pool.for_each_chunk(chunks, [&](std::size_t c, std::size_t) {
    const std::size_t begin = std::min(n, c * per);
    const std::size_t end = std::min(n, begin + per);
    std::uint64_t num_below = 0;
    graph::Distance max_below = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const graph::Distance d = dist_[input[i]];
      if (d < threshold) {
        ++num_below;
        max_below = std::max(max_below, d);
      }
    }
    chunk_counts_[c] = num_below;
    chunk_counts2_[c] = (end - begin) - num_below;
    chunk_max_[c] = max_below;
  });
  chunk_offsets_.assign(chunks, 0);
  chunk_offsets2_.assign(chunks, 0);
  std::uint64_t below_total = 0, spill_total = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    chunk_offsets_[c] = below_total;
    chunk_offsets2_[c] = spill_total;
    below_total += chunk_counts_[c];
    spill_total += chunk_counts2_[c];
    frontier_max_distance_ = std::max(frontier_max_distance_, chunk_max_[c]);
  }
  below.resize(below_total);
  const std::size_t spill_base = spill_.size();
  spill_.resize(spill_base + spill_total);
  pool.for_each_chunk(chunks, [&](std::size_t c, std::size_t) {
    const std::size_t begin = std::min(n, c * per);
    const std::size_t end = std::min(n, begin + per);
    std::uint64_t wb = chunk_offsets_[c];
    std::uint64_t ws = spill_base + chunk_offsets2_[c];
    for (std::size_t i = begin; i < end; ++i) {
      const graph::VertexId v = input[i];
      if (dist_[v] < threshold) {
        below[wb++] = v;
      } else {
        spill_[ws++] = v;
      }
    }
  });
  spill_high_water_ = std::max(spill_high_water_, spill_.size());
}

std::uint64_t NearFarEngine::bisect(graph::Distance threshold) {
  SSSP_TRACE_SPAN("bisect");
  SSSP_PROF_PHASE("bisect");
  if (options_.control != nullptr && options_.control->should_abort())
    throw util::StopRequested(options_.control->reason());
  if (obs::metrics_enabled()) EngineMetrics::get().bisects.add();
  // advance_and_filter() left the frontier empty; refill the near side.
  partition_by_distance(updated_frontier_, threshold, frontier_);
  updated_frontier_.clear();
  return frontier_.size();
}

std::uint64_t NearFarEngine::demote(graph::Distance threshold) {
  const std::uint64_t scanned = frontier_.size();
  partition_by_distance(frontier_, threshold, partition_scratch_);
  frontier_.swap(partition_scratch_);
  return scanned;
}

std::uint64_t NearFarEngine::demote_excess(std::size_t keep) {
  if (frontier_.size() <= keep) return 0;
  const std::uint64_t spilled = frontier_.size() - keep;
  spill_.insert(spill_.end(), frontier_.begin() + static_cast<std::ptrdiff_t>(keep),
                frontier_.end());
  spill_high_water_ = std::max(spill_high_water_, spill_.size());
  frontier_.resize(keep);
  frontier_max_distance_ = 0;
  for (const graph::VertexId v : frontier_)
    frontier_max_distance_ = std::max(frontier_max_distance_, dist_[v]);
  return spilled;
}

void NearFarEngine::inject(std::span<const graph::VertexId> vertices) {
  reserve_within_budget(frontier_, frontier_.size() + vertices.size());
  for (const graph::VertexId v : vertices) {
    frontier_.push_back(v);
    frontier_max_distance_ = std::max(frontier_max_distance_, dist_[v]);
  }
}

NearFarEngine::State NearFarEngine::state() const {
  State state;
  state.dist = dist_;
  state.parent = parent_;
  state.frontier = frontier_;
  state.total_improving = total_improving_;
  state.frontier_max_distance = frontier_max_distance_;
  return state;
}

void NearFarEngine::restore(State&& state) {
  const std::size_t n = graph_->num_vertices();
  if (state.dist.size() != n || state.parent.size() != n)
    throw std::invalid_argument(
        "NearFarEngine: restore state does not match graph size");
  for (const graph::VertexId v : state.frontier)
    if (v >= n)
      throw std::invalid_argument(
          "NearFarEngine: restore frontier vertex out of range");
  dist_ = std::move(state.dist);
  parent_ = std::move(state.parent);
  frontier_ = std::move(state.frontier);
  total_improving_ = state.total_improving;
  frontier_max_distance_ = state.frontier_max_distance;
  // Per-advance scratch restarts clean; epoch 0 means the next advance
  // opens epoch 1 against all-zero marks, exactly like a fresh engine.
  std::fill(mark_.begin(), mark_.end(), 0);
  epoch_ = 0;
  updated_frontier_.clear();
  spill_.clear();
}

}  // namespace sssp::frontier
