#include "frontier/engine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace sssp::frontier {

namespace {

// Instrument handles are resolved once and cached; every hot-path use
// is behind the metrics_enabled() branch.
struct EngineMetrics {
  obs::Counter& advances;
  obs::Counter& edges_relaxed;
  obs::Counter& improving;
  obs::Counter& bisects;
  obs::Histogram& frontier_size;

  static EngineMetrics& get() {
    static EngineMetrics m{
        obs::MetricsRegistry::global().counter("engine.advance.calls"),
        obs::MetricsRegistry::global().counter("engine.advance.edges"),
        obs::MetricsRegistry::global().counter("engine.advance.improving"),
        obs::MetricsRegistry::global().counter("engine.bisect.calls"),
        obs::MetricsRegistry::global().histogram("engine.frontier_size")};
    return m;
  }
};

}  // namespace

NearFarEngine::NearFarEngine(const graph::CsrGraph& graph,
                             graph::VertexId source)
    : NearFarEngine(graph, source, Options{}) {}

NearFarEngine::NearFarEngine(const graph::CsrGraph& graph,
                             graph::VertexId source, const Options& options)
    : graph_(&graph),
      source_(source),
      options_(options),
      dist_(graph.num_vertices(), graph::kInfiniteDistance),
      parent_(graph.num_vertices(), graph::kInvalidVertex),
      mark_(graph.num_vertices(), 0) {
  if (source >= graph.num_vertices())
    throw std::invalid_argument("NearFarEngine: source out of range");
  dist_[source] = 0;
  parent_[source] = source;
  frontier_.push_back(source);
}

NearFarEngine::AdvanceResult NearFarEngine::advance_and_filter() {
  {
    // The dedup filter itself is fused into the advance loop (the
    // epoch-stamped mark array); this span covers the standalone part
    // of the filter phase — bitmap epoch maintenance. See
    // docs/OBSERVABILITY.md for how to read the fused trace.
    SSSP_TRACE_SPAN("filter");
    updated_frontier_.clear();
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: reset marks once every 2^32 iterations
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
  }
  AdvanceResult result;
  {
    SSSP_TRACE_SPAN("advance");
    result = options_.parallel && frontier_.size() >= options_.parallel_threshold
                 ? advance_parallel()
                 : advance_serial();
  }
  total_improving_ += result.improving_relaxations;
  frontier_.clear();
  if (obs::metrics_enabled()) {
    EngineMetrics& m = EngineMetrics::get();
    m.advances.add();
    m.edges_relaxed.add(result.x2);
    m.improving.add(result.improving_relaxations);
    m.frontier_size.record(static_cast<double>(result.x1));
  }
  return result;
}

NearFarEngine::AdvanceResult NearFarEngine::advance_serial() {
  AdvanceResult result;
  result.x1 = frontier_.size();

  for (const graph::VertexId u : frontier_) {
    const auto neighbors = graph_->neighbors(u);
    const auto weights = graph_->weights_of(u);
    result.x2 += neighbors.size();
    const graph::Distance du = dist_[u];
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::VertexId v = neighbors[i];
      const graph::Distance nd = du + weights[i];
      if (nd < dist_[v]) {
        dist_[v] = nd;
        parent_[v] = u;
        ++result.improving_relaxations;
        if (mark_[v] != epoch_) {
          mark_[v] = epoch_;
          updated_frontier_.push_back(v);
        }
      }
    }
  }
  result.x3 = updated_frontier_.size();
  return result;
}

NearFarEngine::AdvanceResult NearFarEngine::advance_parallel() {
  used_parallel_advance_ = true;
  AdvanceResult result;
  result.x1 = frontier_.size();

  std::atomic<std::uint64_t> edges{0};
  std::atomic<std::uint64_t> improving{0};
  std::mutex merge_mu;

  util::parallel_for(frontier_.size(), [&](std::size_t begin,
                                           std::size_t end) {
    std::vector<graph::VertexId> local_frontier;
    std::uint64_t local_edges = 0;
    std::uint64_t local_improving = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const graph::VertexId u = frontier_[i];
      const auto neighbors = graph_->neighbors(u);
      const auto weights = graph_->weights_of(u);
      local_edges += neighbors.size();
      const graph::Distance du =
          std::atomic_ref<graph::Distance>(dist_[u]).load(
              std::memory_order_relaxed);
      for (std::size_t e = 0; e < neighbors.size(); ++e) {
        const graph::VertexId v = neighbors[e];
        const graph::Distance nd = du + weights[e];
        std::atomic_ref<graph::Distance> dv(dist_[v]);
        graph::Distance current = dv.load(std::memory_order_relaxed);
        bool improved = false;
        while (nd < current) {
          if (dv.compare_exchange_weak(current, nd,
                                       std::memory_order_relaxed)) {
            improved = true;
            break;
          }
        }
        if (!improved) continue;
        ++local_improving;
        // Deduplicate with an epoch CAS: exactly one thread appends v.
        std::atomic_ref<std::uint32_t> mark(mark_[v]);
        std::uint32_t seen = mark.load(std::memory_order_relaxed);
        while (seen != epoch_) {
          if (mark.compare_exchange_weak(seen, epoch_,
                                         std::memory_order_relaxed)) {
            local_frontier.push_back(v);
            break;
          }
        }
      }
    }
    edges.fetch_add(local_edges, std::memory_order_relaxed);
    improving.fetch_add(local_improving, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(merge_mu);
    updated_frontier_.insert(updated_frontier_.end(), local_frontier.begin(),
                             local_frontier.end());
  });

  result.x2 = edges.load();
  result.improving_relaxations = improving.load();
  result.x3 = updated_frontier_.size();
  return result;
}

std::uint64_t NearFarEngine::bisect(graph::Distance threshold) {
  SSSP_TRACE_SPAN("bisect");
  if (obs::metrics_enabled()) EngineMetrics::get().bisects.add();
  // advance_and_filter() left the frontier empty; refill the near side.
  frontier_max_distance_ = 0;
  for (const graph::VertexId v : updated_frontier_) {
    const graph::Distance d = dist_[v];
    if (d < threshold) {
      frontier_.push_back(v);
      frontier_max_distance_ = std::max(frontier_max_distance_, d);
    } else {
      spill_.push_back(v);
    }
  }
  updated_frontier_.clear();
  return frontier_.size();
}

std::uint64_t NearFarEngine::demote(graph::Distance threshold) {
  const std::uint64_t scanned = frontier_.size();
  std::size_t keep = 0;
  frontier_max_distance_ = 0;
  for (const graph::VertexId v : frontier_) {
    const graph::Distance d = dist_[v];
    if (d < threshold) {
      frontier_[keep++] = v;
      frontier_max_distance_ = std::max(frontier_max_distance_, d);
    } else {
      spill_.push_back(v);
    }
  }
  frontier_.resize(keep);
  return scanned;
}

std::uint64_t NearFarEngine::demote_excess(std::size_t keep) {
  if (frontier_.size() <= keep) return 0;
  const std::uint64_t spilled = frontier_.size() - keep;
  spill_.insert(spill_.end(), frontier_.begin() + static_cast<std::ptrdiff_t>(keep),
                frontier_.end());
  frontier_.resize(keep);
  frontier_max_distance_ = 0;
  for (const graph::VertexId v : frontier_)
    frontier_max_distance_ = std::max(frontier_max_distance_, dist_[v]);
  return spilled;
}

void NearFarEngine::inject(std::span<const graph::VertexId> vertices) {
  for (const graph::VertexId v : vertices) {
    frontier_.push_back(v);
    frontier_max_distance_ = std::max(frontier_max_distance_, dist_[v]);
  }
}

}  // namespace sssp::frontier
