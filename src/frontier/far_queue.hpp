// The baseline far queue: vertices whose tentative distance exceeds the
// current threshold, postponed for later phases (Davidson et al.).
//
// Entries are (vertex, distance-at-insertion) pairs. When a vertex's
// distance later improves, the improved copy re-enters the pipeline via
// the frontier, so any older copy is *stale*; staleness is detected at
// scan time by comparing the stored distance with the current one. The
// partitioned variant used by the self-tuning algorithm lives in
// core/partitioned_far_queue.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace sssp::frontier {

struct FarEntry {
  graph::VertexId vertex;
  graph::Distance distance;  // tentative distance when enqueued

  friend bool operator==(const FarEntry&, const FarEntry&) = default;
};

class FarQueue {
 public:
  void push(graph::VertexId v, graph::Distance d) { entries_.push_back({v, d}); }

  // Bulk append of an engine spill: entry i is (vertices[i],
  // current_distances[vertices[i]]), in input order. One reserve instead
  // of per-push growth.
  void push_bulk(std::span<const graph::VertexId> vertices,
                 std::span<const graph::Distance> current_distances) {
    entries_.reserve(entries_.size() + vertices.size());
    for (const graph::VertexId v : vertices)
      entries_.push_back({v, current_distances[v]});
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  // Scans every entry once: entries whose stored distance no longer
  // matches `current_distances` are dropped (stale); live entries below
  // `threshold` are appended to `frontier`; the rest are retained.
  // Returns the number of entries scanned (stage-4 work).
  std::uint64_t drain_below(graph::Distance threshold,
                            std::span<const graph::Distance> current_distances,
                            std::vector<graph::VertexId>& frontier);

  // Smallest live distance in the queue, or kInfiniteDistance if none.
  // Used by the baseline to skip empty phases in O(queue) time.
  graph::Distance min_live_distance(
      std::span<const graph::Distance> current_distances) const;

  std::span<const FarEntry> entries() const noexcept { return entries_; }

 private:
  std::vector<FarEntry> entries_;
};

}  // namespace sssp::frontier
