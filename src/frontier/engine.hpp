// The near-far operator pipeline (Gunrock-style), re-implemented on the
// host with explicit stages so a controller can observe and steer it.
//
// The engine owns the tentative-distance array and the frontier, and
// exposes the paper's four stages as methods:
//
//   advance_and_filter()  — stages 1+2: relax all out-edges of the
//                           frontier (atomic-min semantics), then
//                           deduplicate the updated frontier with an
//                           epoch-stamped mark array (Gunrock's bitmap).
//   bisect(threshold)     — stage 3: keep vertices with distance below
//                           the threshold as the next frontier; spill
//                           the rest for the caller's far queue.
//   demote(threshold)     — rebalancer helper: move frontier vertices at
//                           or above a *lowered* threshold to the spill
//                           (used when the controller shrinks delta).
//   inject(vertices)      — stage 4 completion: append vertices pulled
//                           from a far queue into the frontier.
//
// Correctness invariant: a vertex re-enters the updated frontier
// whenever its tentative distance improves, so *any* threshold policy
// yields exact shortest distances on termination (at worst extra work).
// This is what makes the dynamic-delta controller safe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sssp::frontier {

class NearFarEngine {
 public:
  struct Options {
    // Relax frontiers on the host thread pool with atomic-min distance
    // updates (std::atomic_ref) once the frontier exceeds the threshold.
    // Final distances are exact regardless of schedule. Per-iteration
    // statistics, however, are only deterministic at one thread: when
    // the frontier contains an edge u->v with v also in the frontier,
    // whether v observes u's same-iteration improvement depends on
    // scheduling (serial execution fixes it by frontier order), so X3
    // and the subsequent trajectory may differ run-to-run. X2 of a
    // given frontier (its neighbor-list cardinality) is always a set
    // property. Parent recording is skipped — derive the tree from
    // distances with algo::derive_parents instead.
    bool parallel = false;
    std::size_t parallel_threshold = 4096;
  };

  // The graph must outlive the engine. source must be a valid vertex.
  NearFarEngine(const graph::CsrGraph& graph, graph::VertexId source);
  NearFarEngine(const graph::CsrGraph& graph, graph::VertexId source,
                const Options& options);

  struct AdvanceResult {
    std::uint64_t x1 = 0;  // input frontier size
    std::uint64_t x2 = 0;  // edge work items (neighbor-list cardinality)
    std::uint64_t improving_relaxations = 0;
    std::uint64_t x3 = 0;  // deduplicated updated frontier size
  };

  // Runs stages 1+2 over the current frontier. Afterwards the frontier
  // is *consumed*; the deduplicated updated frontier awaits bisect().
  AdvanceResult advance_and_filter();

  // Stage 3: moves updated-frontier vertices with distance < threshold
  // into the (now empty) frontier; the rest are appended to the spill
  // buffer. Returns the new frontier size (the paper's X4).
  std::uint64_t bisect(graph::Distance threshold);

  // Rebalance-down: removes frontier vertices with distance >= threshold
  // into the spill buffer. Returns the number of vertices scanned.
  std::uint64_t demote(graph::Distance threshold);

  // Count-limited rebalance-down for distance ties: keeps the first
  // `keep` frontier vertices and spills the rest regardless of distance
  // (they re-enter via the far queue later — correctness is unaffected,
  // only scheduling). Returns the number of vertices spilled.
  std::uint64_t demote_excess(std::size_t keep);

  // Appends far-queue vertices into the frontier. The caller must pass
  // only live (non-stale) vertices below the current threshold.
  void inject(std::span<const graph::VertexId> vertices);

  // Vertices spilled by the last bisect()/demote() calls, with their
  // distances current at spill time. Cleared by take_spill().
  std::span<const graph::VertexId> spill() const noexcept { return spill_; }
  void clear_spill() noexcept { spill_.clear(); }

  bool frontier_empty() const noexcept { return frontier_.empty(); }
  std::size_t frontier_size() const noexcept { return frontier_.size(); }
  std::span<const graph::VertexId> frontier() const noexcept {
    return frontier_;
  }

  const std::vector<graph::Distance>& distances() const noexcept {
    return dist_;
  }
  // Shortest-path-tree parents: parent_[v] is the predecessor on the
  // best known path to v (kInvalidVertex if unreached; source for the
  // source). Maintained by every improving relaxation in serial mode;
  // NOT maintained by parallel advances (see Options::parallel).
  const std::vector<graph::VertexId>& parents() const noexcept {
    return parent_;
  }
  bool parents_valid() const noexcept { return !used_parallel_advance_; }
  graph::Distance distance(graph::VertexId v) const { return dist_[v]; }
  const graph::CsrGraph& graph() const noexcept { return *graph_; }
  graph::VertexId source() const noexcept { return source_; }

  // Maximum tentative distance across the current frontier, maintained
  // for free inside bisect/demote/inject (each already touches every
  // vertex involved). Used by the controller to re-anchor delta without
  // an extra device pass. 0 for an empty frontier.
  graph::Distance frontier_max_distance() const noexcept {
    return frontier_max_distance_;
  }

  // Total successful relaxations across the whole run (work-efficiency
  // metric: equals n-1 for Dijkstra-like behaviour, grows with redundant
  // re-relaxation when thresholds are too aggressive).
  std::uint64_t total_improving_relaxations() const noexcept {
    return total_improving_;
  }

 private:
  AdvanceResult advance_serial();
  AdvanceResult advance_parallel();

  const graph::CsrGraph* graph_;
  graph::VertexId source_;
  Options options_;
  bool used_parallel_advance_ = false;
  std::vector<graph::Distance> dist_;
  std::vector<graph::VertexId> parent_;
  std::vector<graph::VertexId> frontier_;
  std::vector<graph::VertexId> updated_frontier_;
  std::vector<graph::VertexId> spill_;
  // Epoch-stamped dedup marks (Gunrock's filter bitmap, reset-free).
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
  std::uint64_t total_improving_ = 0;
  graph::Distance frontier_max_distance_ = 0;
};

}  // namespace sssp::frontier
