// The near-far operator pipeline (Gunrock-style), re-implemented on the
// host with explicit stages so a controller can observe and steer it.
//
// The engine owns the tentative-distance array and the frontier, and
// exposes the paper's four stages as methods:
//
//   advance_and_filter()  — stages 1+2: relax all out-edges of the
//                           frontier (atomic-min semantics), then
//                           deduplicate the updated frontier with an
//                           epoch-stamped mark array (Gunrock's bitmap).
//   bisect(threshold)     — stage 3: keep vertices with distance below
//                           the threshold as the next frontier; spill
//                           the rest for the caller's far queue.
//   demote(threshold)     — rebalancer helper: move frontier vertices at
//                           or above a *lowered* threshold to the spill
//                           (used when the controller shrinks delta).
//   inject(vertices)      — stage 4 completion: append vertices pulled
//                           from a far queue into the frontier.
//
// Correctness invariant: a vertex re-enters the updated frontier
// whenever its tentative distance improves, so *any* threshold policy
// yields exact shortest distances on termination (at worst extra work).
// This is what makes the dynamic-delta controller safe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "frontier/plan.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "util/run_control.hpp"

namespace sssp::frontier {

class NearFarEngine {
 public:
  struct Options {
    // Relax frontiers above the threshold on the host thread pool.
    // Parallel advances use synchronous (Bellman-Ford-style) relaxation
    // from an iteration-start snapshot of the frontier's distances and
    // a count → exclusive-prefix-sum → write merge, so the updated
    // frontier's *ordering*, the per-iteration X1/X2/X3 statistics, the
    // parent tree, and the final distances are all bit-identical at any
    // thread count, any chunking, and any schedule (docs/PERFORMANCE.md
    // has the argument). Parallel results differ from serial only in
    // iteration dynamics — serial relaxation is chained in frontier
    // order, so intra-frontier improvements propagate within one
    // iteration — never in final distances or parents.
    bool parallel = false;
    std::size_t parallel_threshold = 4096;

    // Work partitioning for parallel phases (frontier/plan.hpp — the
    // planner is shared with the batched multi-source engine).
    // Edge-balanced chunks are cut by binary-searching the frontier's
    // degree prefix sums so each chunk owns ~equal *edges* — on
    // skewed-degree (scale-free) graphs vertex-balanced chunks leave
    // whole hubs in one chunk and serialize the iteration on it.
    // Results are identical either way; only wall-clock differs
    // (bench/micro_primitives.cpp measures).
    using Partition = frontier::Partition;
    Partition partition = Partition::kEdgeBalanced;

    // Minimum edges per chunk (grain): below this, chunk-claiming
    // overhead dominates the work.
    std::size_t min_chunk_edges = 2048;

    // Cooperative cancellation (docs/ROBUSTNESS.md): when set, advance
    // and bisect poll should_abort() at stage boundaries (and every few
    // thousand serial vertices) and throw util::StopRequested. A
    // mid-stage abort leaves the engine state torn — the run must be
    // abandoned and resumed from its last boundary checkpoint. Not
    // owned; must outlive the engine.
    util::RunControl* control = nullptr;
  };

  // The graph must outlive the engine. source must be a valid vertex.
  NearFarEngine(const graph::CsrGraph& graph, graph::VertexId source);
  NearFarEngine(const graph::CsrGraph& graph, graph::VertexId source,
                const Options& options);

  struct AdvanceResult {
    std::uint64_t x1 = 0;  // input frontier size
    std::uint64_t x2 = 0;  // edge work items (neighbor-list cardinality)
    std::uint64_t improving_relaxations = 0;
    std::uint64_t x3 = 0;  // deduplicated updated frontier size
  };

  // Runs stages 1+2 over the current frontier. Afterwards the frontier
  // is *consumed*; the deduplicated updated frontier awaits bisect().
  AdvanceResult advance_and_filter();

  // Stage 3: moves updated-frontier vertices with distance < threshold
  // into the (now empty) frontier; the rest are appended to the spill
  // buffer. Returns the new frontier size (the paper's X4).
  std::uint64_t bisect(graph::Distance threshold);

  // Rebalance-down: removes frontier vertices with distance >= threshold
  // into the spill buffer. Returns the number of vertices scanned.
  std::uint64_t demote(graph::Distance threshold);

  // Count-limited rebalance-down for distance ties: keeps the first
  // `keep` frontier vertices and spills the rest regardless of distance
  // (they re-enter via the far queue later — correctness is unaffected,
  // only scheduling). Returns the number of vertices spilled.
  std::uint64_t demote_excess(std::size_t keep);

  // Appends far-queue vertices into the frontier. The caller must pass
  // only live (non-stale) vertices below the current threshold.
  void inject(std::span<const graph::VertexId> vertices);

  // Vertices spilled by the last bisect()/demote() calls, with their
  // distances current at spill time. Cleared by take_spill().
  std::span<const graph::VertexId> spill() const noexcept { return spill_; }
  void clear_spill() noexcept { spill_.clear(); }

  bool frontier_empty() const noexcept { return frontier_.empty(); }
  std::size_t frontier_size() const noexcept { return frontier_.size(); }
  std::span<const graph::VertexId> frontier() const noexcept {
    return frontier_;
  }

  const std::vector<graph::Distance>& distances() const noexcept {
    return dist_;
  }
  // Shortest-path-tree parents: parent_[v] is the predecessor on the
  // best known path to v (kInvalidVertex if unreached; source for the
  // source). Maintained by both serial and parallel advances: a
  // parallel advance records the canonically-first relaxation that
  // achieved each vertex's new distance, so the tree is deterministic
  // and exact on termination at any thread count.
  const std::vector<graph::VertexId>& parents() const noexcept {
    return parent_;
  }
  // Historical API: parallel advances once invalidated parents (they
  // had to be re-derived from distances). The deterministic pipeline
  // maintains them in every mode, so this is now always true.
  bool parents_valid() const noexcept { return true; }
  graph::Distance distance(graph::VertexId v) const { return dist_[v]; }
  const graph::CsrGraph& graph() const noexcept { return *graph_; }
  graph::VertexId source() const noexcept { return source_; }

  // Maximum tentative distance across the current frontier, maintained
  // for free inside bisect/demote/inject (each already touches every
  // vertex involved). Used by the controller to re-anchor delta without
  // an extra device pass. 0 for an empty frontier.
  graph::Distance frontier_max_distance() const noexcept {
    return frontier_max_distance_;
  }

  // Total successful relaxations across the whole run (work-efficiency
  // metric: equals n-1 for Dijkstra-like behaviour, grows with redundant
  // re-relaxation when thresholds are too aggressive). In parallel
  // advances a "successful relaxation" is one that achieved the
  // iteration's final distance for its target (ties included) — the
  // schedule-independent analogue of the serial count.
  std::uint64_t total_improving_relaxations() const noexcept {
    return total_improving_;
  }

  // Complete resumable engine state at an iteration boundary (frontier
  // consumed or refilled, no advance in flight). The dedup marks and
  // epoch are *not* part of the state: they are per-advance scratch —
  // every advance opens a fresh epoch — so restore() resets them.
  struct State {
    std::vector<graph::Distance> dist;
    std::vector<graph::VertexId> parent;
    std::vector<graph::VertexId> frontier;
    std::uint64_t total_improving = 0;
    graph::Distance frontier_max_distance = 0;

    friend bool operator==(const State&, const State&) = default;
  };
  State state() const;
  // Validated restore onto this engine's graph: array sizes must match
  // num_vertices() and every frontier id must be in range, else
  // std::invalid_argument. Scratch (marks, epoch, spill, updated
  // frontier) is reset; the next advance behaves exactly as it would
  // have in the original run.
  void restore(State&& state);

 private:
  AdvanceResult advance_serial();
  AdvanceResult advance_parallel();

  // Estimates the incremental scratch a parallel advance of the current
  // frontier would allocate (winner array on first use, plan arrays,
  // candidate buffers at average degree) and checks it against the
  // process memory budget ("res.engine.alloc"). False → the caller
  // degrades this iteration to the serial advance, which needs no
  // parallel scratch, instead of risking std::bad_alloc mid-relax.
  bool parallel_scratch_fits() noexcept;

  // Computes edge_prefix_ / frontier_dist_ over the current frontier
  // and cuts chunk_begin_ according to options_.partition, via the
  // shared planner (frontier/plan.hpp). Returns X2 (total edges).
  std::uint64_t plan_chunks();

  // Stable-partitions `input` by distance < threshold: vertices below
  // overwrite `below` (cleared first) in input order, the rest are
  // appended to spill_, and frontier_max_distance_ is set to the max
  // distance of the below side. Runs on the pool above the parallel
  // threshold; serial otherwise. `input` must not alias `below`.
  void partition_by_distance(const std::vector<graph::VertexId>& input,
                             graph::Distance threshold,
                             std::vector<graph::VertexId>& below);

  const graph::CsrGraph* graph_;
  graph::VertexId source_;
  Options options_;
  std::vector<graph::Distance> dist_;
  std::vector<graph::VertexId> parent_;
  std::vector<graph::VertexId> frontier_;
  std::vector<graph::VertexId> updated_frontier_;
  std::vector<graph::VertexId> spill_;
  // Epoch-stamped dedup marks (Gunrock's filter bitmap, reset-free).
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
  std::uint64_t total_improving_ = 0;
  graph::Distance frontier_max_distance_ = 0;

  // --- persistent parallel scratch (allocated on first parallel use,
  // reused every iteration to avoid per-call allocation churn) ---
  struct Candidate {
    std::uint64_t rank;   // canonical edge rank (frontier order)
    graph::VertexId v;    // relaxation target
    graph::VertexId u;    // relaxation source (parent if this edge wins)
  };
  std::vector<std::uint64_t> edge_prefix_;      // frontier degree prefix sums
  std::vector<graph::Distance> frontier_dist_;  // iteration-start du snapshot
  std::vector<std::size_t> chunk_begin_;        // frontier-index chunk bounds
  std::vector<std::uint64_t> winner_;  // per-vertex min winning edge rank
  std::vector<std::vector<Candidate>> chunk_candidates_;
  std::vector<std::uint64_t> chunk_counts_;   // per-chunk count scratch
  std::vector<std::uint64_t> chunk_counts2_;  // second counter (partitions)
  std::vector<std::uint64_t> chunk_offsets_;
  std::vector<std::uint64_t> chunk_offsets2_;
  std::vector<graph::Distance> chunk_max_;    // per-chunk distance maxima
  std::vector<std::uint64_t> range_base_;     // prefix-sum pass scratch
  std::vector<graph::VertexId> partition_scratch_;  // demote output buffer
  std::vector<std::uint64_t> thread_edges_;   // per-thread edge tallies
  // High-water marks from previous iterations, used to reserve output
  // buffers up front instead of growing them from empty every time.
  std::size_t updated_high_water_ = 0;
  std::size_t spill_high_water_ = 0;
};

}  // namespace sssp::frontier
