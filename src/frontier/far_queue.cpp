#include "frontier/far_queue.hpp"

#include <algorithm>

namespace sssp::frontier {

std::uint64_t FarQueue::drain_below(
    graph::Distance threshold,
    std::span<const graph::Distance> current_distances,
    std::vector<graph::VertexId>& frontier) {
  const std::uint64_t scanned = entries_.size();
  std::size_t keep = 0;
  for (const FarEntry& entry : entries_) {
    if (current_distances[entry.vertex] != entry.distance) continue;  // stale
    if (entry.distance < threshold) {
      frontier.push_back(entry.vertex);
    } else {
      entries_[keep++] = entry;
    }
  }
  entries_.resize(keep);
  return scanned;
}

graph::Distance FarQueue::min_live_distance(
    std::span<const graph::Distance> current_distances) const {
  graph::Distance best = graph::kInfiniteDistance;
  for (const FarEntry& entry : entries_) {
    if (current_distances[entry.vertex] != entry.distance) continue;
    best = std::min(best, entry.distance);
  }
  return best;
}

}  // namespace sssp::frontier
