// Shared frontier work-plan builder: the edge-balanced prefix-sum
// planner extracted from the deterministic advance pipeline so every
// engine that sweeps a frontier — the single-source near-far engine and
// the batched multi-source engine — cuts chunks the same way.
//
// The plan is two artifacts over one frontier:
//
//   edge_prefix[i]  exclusive prefix sum of the frontier's out-degrees
//                   (edge_prefix[|F|] == X2, the edge work volume);
//   chunk_begin[c]  frontier-index chunk boundaries. Edge-balanced cuts
//                   binary-search the degree prefix for multiples of a
//                   per-chunk edge budget, so each chunk owns ~equal
//                   *edges* — on skewed-degree graphs vertex-balanced
//                   chunks leave whole hubs in one chunk and serialize
//                   the iteration on it. Vertex-balanced cuts (equal
//                   index ranges) are kept for comparison benches.
//
// Chunking only affects scheduling: the deterministic pipelines built
// on top (count → exclusive-prefix-sum → write merges) produce results
// independent of the cuts, the thread count, and the claim order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "util/thread_pool.hpp"

namespace sssp::frontier {

enum class Partition { kEdgeBalanced, kVertexBalanced };

struct PlanParams {
  Partition partition = Partition::kEdgeBalanced;
  // Minimum edges per chunk (grain): below this, chunk-claiming
  // overhead dominates the work.
  std::size_t min_chunk_edges = 2048;
  // Oversubscription factors (chunks for dynamic claiming, ranges for
  // the uniform-cost prefix-sum passes).
  std::size_t chunks_per_thread = 8;
  std::size_t ranges_per_thread = 4;
};

// Builds the plan over `frontier` on the global pool: a parallel
// two-pass degree prefix sum, then chunk cuts per params.partition.
// `snapshot(i, u)` is invoked exactly once per frontier index inside
// the first pass — callers use it to snapshot iteration-start state
// (e.g. distance rows) in the same sweep instead of paying a second
// pass. `range_scratch` is caller-owned scratch reused across calls.
// Returns X2 (total edge work).
template <typename Snapshot>
std::uint64_t build_frontier_plan(const graph::CsrGraph& graph,
                                  std::span<const graph::VertexId> frontier,
                                  const PlanParams& params,
                                  std::vector<std::uint64_t>& edge_prefix,
                                  std::vector<std::size_t>& chunk_begin,
                                  std::vector<std::uint64_t>& range_scratch,
                                  Snapshot&& snapshot) {
  const std::size_t x1 = frontier.size();
  util::ThreadPool& pool = util::ThreadPool::global();
  edge_prefix.resize(x1 + 1);

  const std::size_t ranges = std::max<std::size_t>(
      1, std::min(x1, pool.size() * params.ranges_per_thread));
  const std::size_t per = (x1 + ranges - 1) / ranges;
  range_scratch.assign(ranges, 0);
  edge_prefix[0] = 0;
  pool.for_each_chunk(ranges, [&](std::size_t r, std::size_t) {
    const std::size_t begin = r * per;
    const std::size_t end = std::min(x1, begin + per);
    std::uint64_t running = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const graph::VertexId u = frontier[i];
      snapshot(i, u);
      running += graph.out_degree(u);
      edge_prefix[i + 1] = running;  // range-relative; globalized below
    }
    range_scratch[r] = running;
  });
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < ranges; ++r) {
    const std::uint64_t t = range_scratch[r];
    range_scratch[r] = total;
    total += t;
  }
  pool.for_each_chunk(ranges, [&](std::size_t r, std::size_t) {
    if (range_scratch[r] == 0) return;
    const std::size_t begin = r * per;
    const std::size_t end = std::min(x1, begin + per);
    for (std::size_t i = begin; i < end; ++i)
      edge_prefix[i + 1] += range_scratch[r];
  });
  const std::uint64_t x2 = edge_prefix[x1];

  chunk_begin.clear();
  chunk_begin.push_back(0);
  if (params.partition == Partition::kVertexBalanced) {
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min(x1, pool.size() * params.chunks_per_thread));
    const std::size_t cper = (x1 + chunks - 1) / chunks;
    for (std::size_t b = cper; b < x1; b += cper) chunk_begin.push_back(b);
  } else {
    const std::uint64_t budget = std::max<std::uint64_t>(
        params.min_chunk_edges,
        x2 / std::max<std::size_t>(1, pool.size() * params.chunks_per_thread) +
            1);
    while (chunk_begin.back() < x1) {
      const std::uint64_t target = edge_prefix[chunk_begin.back()] + budget;
      if (target >= x2) break;
      const auto it = std::lower_bound(
          edge_prefix.begin() +
              static_cast<std::ptrdiff_t>(chunk_begin.back() + 1),
          edge_prefix.begin() + static_cast<std::ptrdiff_t>(x1), target);
      const auto idx = static_cast<std::size_t>(it - edge_prefix.begin());
      if (idx >= x1) break;
      chunk_begin.push_back(idx);
    }
  }
  chunk_begin.push_back(x1);
  return x2;
}

}  // namespace sssp::frontier
