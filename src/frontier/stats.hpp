// Per-iteration frontier statistics in the paper's notation (Section
// 3.1), recorded by the engine and consumed by (a) the controller and
// (b) the device simulator.
#pragma once

#include <cstdint>

#include "sim/workload.hpp"

namespace sssp::frontier {

struct IterationStats {
  std::uint64_t x1 = 0;  // frontier size entering advance
  // "Available parallelism": the neighbor-list cardinality of the input
  // frontier — the number of edge work items advance spawns. This is
  // the quantity the controller regulates toward the set-point P.
  std::uint64_t x2 = 0;
  std::uint64_t x3 = 0;  // deduplicated updated frontier (after filter)
  std::uint64_t x4 = 0;  // near-side frontier after bisect-frontier
  // Distance-improving relaxations during advance (work the filter sees).
  std::uint64_t improving_relaxations = 0;
  std::uint64_t far_queue_size = 0;   // after the iteration completed
  std::uint64_t rebalance_items = 0;  // vertices scanned by stage 4
  double controller_seconds = 0.0;    // host-side controller time
  double delta = 0.0;                 // threshold in effect this iteration
  // Controller-internal estimates at the end of the iteration (0 when
  // no controller ran): the ADVANCE-MODEL's frontier-degree estimate d
  // and the BISECT-MODEL's vertices-per-distance alpha. Exposed for
  // convergence analysis and the controller-diagnostics tooling.
  double degree_estimate = 0.0;
  double alpha_estimate = 0.0;
  // True while the controller's self-healing monitor has the adaptive
  // models quarantined and the static fallback delta policy is in
  // effect (docs/ROBUSTNESS.md). Always false for baselines.
  bool controller_degraded = false;

  friend bool operator==(const IterationStats&,
                         const IterationStats&) = default;

  sim::IterationWork to_work() const {
    sim::IterationWork w;
    w.x1 = x1;
    w.x2 = x2;
    w.x3 = x3;
    w.x4 = x4;
    w.edges_relaxed = x2;
    w.rebalance_items = rebalance_items;
    w.far_queue_size = far_queue_size;
    w.controller_seconds = controller_seconds;
    return w;
  }
};

}  // namespace sssp::frontier
