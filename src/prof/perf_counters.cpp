#include "prof/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace sssp::prof {

#ifdef __linux__
namespace {

// Index order matches PerfCounterGroup::fds_. The first three are the
// required core trio; the tail is best-effort.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
  const char* name;
};
constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, "task-clock"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "llc-misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES, "context-switches"},
};

int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  attr.disabled = 0;
  attr.inherit = 1;        // count threads spawned after open()
  attr.exclude_kernel = 1; // allowed at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL));
}

std::uint64_t read_counter(int fd) {
  if (fd < 0) return 0;
  std::uint64_t value = 0;
  if (::read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

}  // namespace

bool PerfCounterGroup::open() {
  close();
  int first_errno = 0;
  for (int i = 0; i < kNumEvents; ++i) {
    fds_[i] = open_event(kEvents[i]);
    if (fds_[i] < 0 && first_errno == 0) first_errno = errno;
  }
  // Core trio required; the rest may legitimately be missing (VMs
  // often lack cache/branch PMU events).
  if (fds_[0] < 0 || fds_[1] < 0 || fds_[2] < 0) {
    status_ = std::string("perf_event_open: ") + std::strerror(first_errno) +
              (first_errno == EACCES || first_errno == EPERM
                   ? " (kernel.perf_event_paranoid?)"
                   : "");
    close();
    return false;
  }
  open_ = true;
  status_ = "ok";
  for (int i = 3; i < kNumEvents; ++i)
    if (fds_[i] < 0)
      status_ += std::string(" (no ") + kEvents[i].name + ")";
  return true;
}

CounterValues PerfCounterGroup::read() const {
  CounterValues v;
  if (!open_) return v;
  v.cycles = read_counter(fds_[0]);
  v.instructions = read_counter(fds_[1]);
  v.task_seconds = static_cast<double>(read_counter(fds_[2])) * 1e-9;
  v.llc_misses = read_counter(fds_[3]);
  v.branch_misses = read_counter(fds_[4]);
  v.context_switches = read_counter(fds_[5]);
  return v;
}

void PerfCounterGroup::close() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  open_ = false;
}

#else  // !__linux__

bool PerfCounterGroup::open() {
  status_ = "unsupported platform (perf_event_open is Linux-only)";
  return false;
}
CounterValues PerfCounterGroup::read() const { return {}; }
void PerfCounterGroup::close() { open_ = false; }

#endif

PerfCounterGroup::~PerfCounterGroup() { close(); }

}  // namespace sssp::prof
