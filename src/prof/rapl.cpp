#include "prof/rapl.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#ifdef __linux__
#include <dirent.h>
#endif

namespace sssp::prof {

namespace {

// First line of a sysfs attribute, stripped of trailing whitespace.
bool read_line(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in || !std::getline(in, out)) return false;
  while (!out.empty() &&
         std::isspace(static_cast<unsigned char>(out.back())))
    out.pop_back();
  return true;
}

bool read_u64(const std::string& path, std::uint64_t& out) {
  std::string line;
  if (!read_line(path, line) || line.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(line.c_str(), &end, 10);
  return end != line.c_str();
}

// intel-rapl:N (package) or intel-rapl:N:M (subdomain), not -mmio.
bool parse_rapl_entry(const std::string& entry, bool& is_subdomain) {
  const std::string prefix = "intel-rapl:";
  if (entry.compare(0, prefix.size(), prefix) != 0) return false;
  is_subdomain =
      std::count(entry.begin(), entry.end(), ':') >= 2;
  return true;
}

}  // namespace

bool RaplReader::open() {
  domains_.clear();
  open_ = false;
#ifndef __linux__
  status_ = "unsupported platform (powercap is Linux-only)";
  return false;
#else
  DIR* dir = ::opendir(root_.c_str());
  if (!dir) {
    status_ = "no powercap tree at " + root_;
    return false;
  }
  bool any_unreadable = false;
  while (const dirent* ent = ::readdir(dir)) {
    const std::string entry = ent->d_name;
    bool is_subdomain = false;
    if (!parse_rapl_entry(entry, is_subdomain)) continue;
    const std::string dir_path = root_ + "/" + entry;
    Domain d;
    if (!read_line(dir_path + "/name", d.name)) continue;
    const bool is_package = d.name.compare(0, 8, "package-") == 0;
    d.is_dram = d.name == "dram";
    // Subdomains other than dram (core, uncore, psys) are already
    // included in their package counter.
    if (!is_package && !d.is_dram) continue;
    if (is_package && is_subdomain) continue;  // psys quirk guard
    d.energy_path = dir_path + "/energy_uj";
    if (!read_u64(d.energy_path, d.last_uj)) {
      any_unreadable = true;  // present but root-only readable
      continue;
    }
    read_u64(dir_path + "/max_energy_range_uj", d.max_range_uj);
    domains_.push_back(std::move(d));
  }
  ::closedir(dir);
  // Sort for deterministic domain ordering regardless of readdir order.
  std::sort(domains_.begin(), domains_.end(),
            [](const Domain& a, const Domain& b) { return a.name < b.name; });
  const bool has_package = std::any_of(
      domains_.begin(), domains_.end(),
      [](const Domain& d) { return !d.is_dram; });
  if (!has_package) {
    domains_.clear();
    status_ = any_unreadable ? "energy_uj unreadable (permissions?)"
                             : "no RAPL domains under " + root_;
    return false;
  }
  open_ = true;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ok (%zu domains)", domains_.size());
  status_ = buf;
  return true;
#endif
}

RaplEnergy RaplReader::read() {
  RaplEnergy e;
  if (!open_) return e;
  for (Domain& d : domains_) {
    std::uint64_t now_uj = 0;
    if (read_u64(d.energy_path, now_uj)) {
      std::uint64_t delta_uj = 0;
      if (now_uj >= d.last_uj) {
        delta_uj = now_uj - d.last_uj;
      } else if (d.max_range_uj > 0) {
        // Counter wrapped: distance to the wrap point plus the restart.
        delta_uj = (d.max_range_uj - d.last_uj) + now_uj;
      }  // unknown range: drop this one interval rather than guess
      d.last_uj = now_uj;
      d.accumulated_j += static_cast<double>(delta_uj) * 1e-6;
    }
    (d.is_dram ? e.dram_joules : e.package_joules) += d.accumulated_j;
  }
  return e;
}

std::vector<std::string> RaplReader::domain_names() const {
  std::vector<std::string> names;
  names.reserve(domains_.size());
  for (const Domain& d : domains_) names.push_back(d.name);
  return names;
}

}  // namespace sssp::prof
