#include "prof/profiler.hpp"

#include <cstdio>
#include <utility>

namespace sssp::prof {

namespace detail {
std::atomic<bool> g_profiling_enabled{false};
}

namespace {
// Generic package-power guess used only when the caller supplied no
// calibration (tools derive a real value from sim::board_power).
constexpr double kDefaultModelWatts = 15.0;
// Retained iteration samples are decimated (adjacent pairs merged,
// stride doubled) past this cap so unbounded runs stay bounded.
constexpr std::size_t kMaxIterationSamples = 4096;
constexpr const char* kUntracked = "(untracked)";
}  // namespace

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

void Profiler::start(const Options& options) {
  stop();
  options_ = options;
  owner_ = std::this_thread::get_id();

  counter_backend_ = CounterBackend::kWallClock;
  if (options_.use_perf && perf_.open())
    counter_backend_ = CounterBackend::kPerfEvent;

  energy_backend_ = EnergyBackend::kModel;
  rapl_ = RaplReader(options_.rapl_root.empty() ? "/sys/class/powercap"
                                                : options_.rapl_root);
  if (options_.use_rapl && rapl_.open())
    energy_backend_ = EnergyBackend::kRapl;
  rapl_status_ = rapl_.status();
  model_watts_ =
      options_.model_watts > 0.0 ? options_.model_watts : kDefaultModelWatts;

  phases_.clear();
  phase_stack_.clear();
  iterations_.clear();
  iteration_stride_ = 1;
  iteration_calls_ = 0;
  series_.clear();
  total_joules_ = 0.0;
  rapl_last_ = RaplEnergy{};

  start_seconds_ = monotonic_seconds();
  start_counters_ = perf_.read();
  stop_seconds_ = start_seconds_;
  stop_counters_ = start_counters_;
  last_transition_ = {start_seconds_, 0.0, start_counters_};
  last_iteration_mark_ = last_transition_;

  running_ = true;
  detail::g_profiling_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::stop() {
  if (!running_) return;
  detail::g_profiling_enabled.store(false, std::memory_order_relaxed);
  const Transition now = read_now();
  charge_interval(now);
  last_transition_ = now;
  stop_seconds_ = now.seconds;
  stop_counters_ = now.counters;
  total_joules_ = now.joules;
  // A run with no iteration samples still gets a usable (flat) power
  // timeline covering the whole span.
  if (series_.empty() && stop_seconds_ > start_seconds_) {
    const double w = total_joules_ / (stop_seconds_ - start_seconds_);
    series_.add(start_seconds_, w);
    series_.add(stop_seconds_, w);
  }
  phase_stack_.clear();
  perf_.close();
  running_ = false;
}

double Profiler::cumulative_joules() {
  if (energy_backend_ == EnergyBackend::kRapl) {
    rapl_last_ = rapl_.read();
    return rapl_last_.total_joules();
  }
  return (monotonic_seconds() - start_seconds_) * model_watts_;
}

Profiler::Transition Profiler::read_now() {
  Transition t;
  t.joules = cumulative_joules();
  t.counters = perf_.read();
  t.seconds = monotonic_seconds();
  return t;
}

void Profiler::charge_interval(const Transition& now) {
  const char* name = phase_stack_.empty() ? kUntracked : phase_stack_.back();
  PhaseProfile& p = phases_[name];
  p.seconds += now.seconds - last_transition_.seconds;
  p.joules += now.joules - last_transition_.joules;
  p.counters += now.counters - last_transition_.counters;
}

bool Profiler::enter_phase(const char* name) {
  if (!running_ || std::this_thread::get_id() != owner_) return false;
  const Transition now = read_now();
  charge_interval(now);
  last_transition_ = now;
  phase_stack_.push_back(name);
  ++phases_[name].entries;
  return true;
}

void Profiler::exit_phase() {
  if (!running_ || phase_stack_.empty()) return;
  const Transition now = read_now();
  charge_interval(now);
  last_transition_ = now;
  phase_stack_.pop_back();
}

void Profiler::sample_iteration(std::uint64_t iteration) {
  if (!running_ || std::this_thread::get_id() != owner_) return;
  ++iteration_calls_;
  if (iteration_calls_ % iteration_stride_ != 0) return;
  const Transition now = read_now();
  IterationSample s;
  s.iteration = iteration;
  s.seconds = now.seconds - last_iteration_mark_.seconds;
  s.joules = now.joules - last_iteration_mark_.joules;
  s.counters = now.counters - last_iteration_mark_.counters;
  if (s.seconds > 0.0 && s.joules >= 0.0) {
    const double w = s.joules / s.seconds;
    series_.add(last_iteration_mark_.seconds, w);
    series_.add(now.seconds, w);
  }
  iterations_.push_back(s);
  last_iteration_mark_ = now;
  if (iterations_.size() >= kMaxIterationSamples) {
    // Merge adjacent pairs: deltas stay additive, the history halves,
    // and future samples arrive at twice the stride.
    std::vector<IterationSample> merged;
    merged.reserve(iterations_.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < iterations_.size(); i += 2) {
      IterationSample m = iterations_[i + 1];
      m.seconds += iterations_[i].seconds;
      m.joules += iterations_[i].joules;
      m.counters += iterations_[i].counters;
      merged.push_back(m);
    }
    if (iterations_.size() % 2 != 0) merged.push_back(iterations_.back());
    iterations_ = std::move(merged);
    iteration_stride_ *= 2;
  }
}

RunProfile Profiler::report() const {
  RunProfile rp;
  rp.counter_backend = counter_backend_;
  rp.counter_backend_detail = perf_.status();
  rp.wall_seconds =
      (running_ ? monotonic_seconds() : stop_seconds_) - start_seconds_;
  rp.totals = (running_ ? perf_.read() : stop_counters_) - start_counters_;
  rp.phases = phases_;
  rp.iterations = iterations_;

  EnergyReport& e = rp.energy;
  e.backend = energy_backend_;
  e.seconds = rp.wall_seconds;
  if (energy_backend_ == EnergyBackend::kRapl) {
    e.backend_detail = rapl_status_;
    e.package_joules = rapl_last_.package_joules;
    e.dram_joules = rapl_last_.dram_joules;
    e.joules = running_ ? rapl_last_.total_joules() : total_joules_;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "model %.2f W (%s)", model_watts_,
                  rapl_status_.c_str());
    e.backend_detail = buf;
    e.joules = running_ ? e.seconds * model_watts_ : total_joules_;
    e.package_joules = e.joules;
  }
  e.average_watts = e.seconds > 0.0 ? e.joules / e.seconds : 0.0;
  e.energy_delay_product = e.joules * e.seconds;
  return rp;
}

}  // namespace sssp::prof
