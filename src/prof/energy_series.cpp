#include "prof/energy_series.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

namespace sssp::prof {

void EnergySeries::add(double seconds, double watts) {
  if (!std::isfinite(seconds) || !std::isfinite(watts))
    throw std::invalid_argument("EnergySeries: non-finite sample");
  if (watts < 0.0)
    throw std::invalid_argument("EnergySeries: negative power");
  if (!samples_.empty()) {
    const EnergySample& prev = samples_.back();
    if (seconds < prev.seconds)
      throw std::invalid_argument("EnergySeries: time went backwards");
    energy_j_ += (seconds - prev.seconds) * 0.5 * (watts + prev.watts);
  }
  if (watts > peak_w_) peak_w_ = watts;
  samples_.push_back({seconds, watts});
}

double EnergySeries::duration_seconds() const noexcept {
  if (samples_.size() < 2) return 0.0;
  return samples_.back().seconds - samples_.front().seconds;
}

double EnergySeries::average_power_w() const noexcept {
  const double dt = duration_seconds();
  return dt > 0.0 ? energy_j_ / dt : 0.0;
}

void EnergySeries::clear() noexcept {
  samples_.clear();
  energy_j_ = 0.0;
  peak_w_ = 0.0;
}

double monotonic_seconds() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

}  // namespace sssp::prof
