// Intel RAPL energy counters via the powercap sysfs interface.
// Scans `<root>/intel-rapl:N` for package domains and
// `<root>/intel-rapl:N:M` for their DRAM subdomains (the powercap
// directory is flat — subdomains appear as top-level symlinks too, so
// one readdir pass sees everything). `intel-rapl-mmio:*` duplicates
// the MSR-backed package counters and is skipped to avoid counting
// energy twice.
//
// energy_uj is a wrapping cumulative microjoule counter;
// max_energy_range_uj gives the wrap modulus. read() accumulates
// wraparound-safe deltas per domain, so callers see monotone joules
// even across counter wraps (sampling faster than one wrap period —
// hours at desktop power — is the caller's job; the profiler samples
// every phase transition and iteration).
//
// The sysfs root is injectable so tests drive the full wraparound path
// against a fake directory tree without hardware access. open()
// returns false (never throws) when the tree is missing or unreadable
// (typical in containers); callers fall back to the model estimate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sssp::prof {

// Cumulative joules since open(), per domain class.
struct RaplEnergy {
  double package_joules = 0.0;
  double dram_joules = 0.0;
  double total_joules() const noexcept {
    return package_joules + dram_joules;
  }
};

class RaplReader {
 public:
  explicit RaplReader(std::string root = "/sys/class/powercap")
      : root_(std::move(root)) {}

  // Scans the powercap tree and primes per-domain last-read values.
  // Returns true when at least one package domain is readable.
  bool open();

  bool is_open() const noexcept { return open_; }

  // Reads every domain and returns cumulative wrap-corrected joules.
  RaplEnergy read();

  // Probe outcome for the run report ("ok (2 domains)", "no powercap
  // tree", "energy_uj unreadable", ...).
  const std::string& status() const noexcept { return status_; }

  // Domain names found, e.g. {"package-0", "dram"} (for tests/report).
  std::vector<std::string> domain_names() const;

 private:
  struct Domain {
    std::string energy_path;
    bool is_dram = false;
    std::uint64_t max_range_uj = 0;  // 0 = unknown; wrap deltas dropped
    std::uint64_t last_uj = 0;
    double accumulated_j = 0.0;
    std::string name;
  };

  std::string root_;
  std::vector<Domain> domains_;
  bool open_ = false;
  std::string status_ = "not probed";
};

}  // namespace sssp::prof
