// Plain structs describing one profiled run — the bridge between the
// profiler (src/prof/profiler.hpp fills them) and the run report
// writer (src/obs/run_report.cpp serializes them). Header-only with
// std-only includes so obs can consume a `const RunProfile*` without a
// link dependency on tunesssp_prof, mirroring how it reads
// frontier::IterationStats and sim::RunReport.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "prof/perf_counters.hpp"

namespace sssp::prof {

// Which mechanism actually produced the numbers — the fallback ladder
// position is part of the data, so reports from different machines are
// comparable only when their backends match.
enum class EnergyBackend : std::uint8_t {
  kRapl,   // hardware /sys/class/powercap counters
  kModel,  // calibrated sim/power_model estimate (watts × wall time)
  kNone,   // energy disabled entirely
};
enum class CounterBackend : std::uint8_t {
  kPerfEvent,  // hardware perf_event_open counters
  kWallClock,  // timers only; counter fields are zero
};

inline const char* to_string(EnergyBackend b) {
  switch (b) {
    case EnergyBackend::kRapl: return "rapl";
    case EnergyBackend::kModel: return "model";
    case EnergyBackend::kNone: return "none";
  }
  return "none";
}
inline const char* to_string(CounterBackend b) {
  switch (b) {
    case CounterBackend::kPerfEvent: return "perf_event";
    case CounterBackend::kWallClock: return "wall_clock";
  }
  return "wall_clock";
}

// Run-report `energy` block.
struct EnergyReport {
  EnergyBackend backend = EnergyBackend::kNone;
  std::string backend_detail;  // probe status line (e.g. RAPL reason)
  double joules = 0.0;         // package + dram (or model estimate)
  double package_joules = 0.0;
  double dram_joules = 0.0;
  double seconds = 0.0;  // profiled wall-clock span
  double average_watts = 0.0;
  // joules / improving relaxations; 0 when the relaxation count is
  // unknown (filled by the report writer from run metadata).
  double joules_per_relaxation = 0.0;
  double energy_delay_product = 0.0;  // joules × seconds (J·s)
};

// One phase's exclusive totals: time (and counters) accrued while the
// phase was the innermost active scope, so values across phases sum to
// the profiled span without double counting nested scopes.
struct PhaseProfile {
  double seconds = 0.0;
  double joules = 0.0;
  std::uint64_t entries = 0;
  CounterValues counters;
};

// One controller iteration, sampled at the end of each step.
struct IterationSample {
  std::uint64_t iteration = 0;
  double seconds = 0.0;  // step duration
  double joules = 0.0;   // energy over the step (backend-dependent)
  CounterValues counters;
};

struct RunProfile {
  CounterBackend counter_backend = CounterBackend::kWallClock;
  std::string counter_backend_detail;
  EnergyReport energy;
  double wall_seconds = 0.0;  // start() → stop()
  CounterValues totals;       // whole-run counter deltas
  // Keyed by phase name; "(untracked)" absorbs time outside any scope.
  std::map<std::string, PhaseProfile> phases;
  std::vector<IterationSample> iterations;
};

}  // namespace sssp::prof
