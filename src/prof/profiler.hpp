// The host profiling front end: owns the capability probes
// (perf_event counters, RAPL energy), attributes counter/energy deltas
// to the pipeline phases marked by SSSP_PROF_PHASE, samples per
// controller iteration, and assembles the RunProfile that the run
// report serializes as its `energy` and `profile` blocks.
//
// Fallback ladder (recorded in the report, never fatal):
//   energy:   RAPL sysfs → calibrated model watts × wall time
//   counters: perf_event_open → wall-clock only
//
// Gating mirrors the obs layer (docs/OBSERVABILITY.md): when no
// --profile flag armed the profiler, every probe site reduces to one
// relaxed atomic load and a predictable branch, so instrumented code
// pays ~nothing (bench_tool --overhead-check asserts ≤1% on the
// advance sweep).
//
// Phase attribution is *exclusive*: counters and the clock are read at
// every scope enter/exit, and each interval is charged to the
// innermost phase active during it (gaps go to "(untracked)"). That
// makes per-phase values sum to the whole profiled span — the property
// the attribution tests check — even though the trace spans these
// scopes shadow are nested (advance contains advance.relax etc.).
//
// Threading: phases and iteration samples are recorded only on the
// thread that called start() — the orchestrating thread, which is
// where the engine's phase spans already live; scopes entered on other
// threads disengage silently. Hardware counters still cover worker
// threads via perf_event inherit (threads spawned after start();
// docs/OBSERVABILITY.md notes the pre-existing-pool caveat).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "prof/energy_series.hpp"
#include "prof/perf_counters.hpp"
#include "prof/rapl.hpp"
#include "prof/report.hpp"

namespace sssp::prof {

namespace detail {
extern std::atomic<bool> g_profiling_enabled;
}

// The global arm/disarm gate, mirroring obs::metrics_enabled().
inline bool profiling_enabled() noexcept {
  return detail::g_profiling_enabled.load(std::memory_order_relaxed);
}

class Profiler {
 public:
  struct Options {
    bool use_perf = true;  // probe perf_event counters
    bool use_rapl = true;  // probe RAPL before falling back to model
    // Watts for the model fallback; <= 0 picks a generic default.
    // Tools calibrate this from sim::board_power (tool_common.hpp).
    double model_watts = 0.0;
    // Injectable for tests; "" = /sys/class/powercap.
    std::string rapl_root;
  };

  static Profiler& global();

  // Probes capabilities, resets all state, marks the calling thread as
  // the attribution owner, and flips profiling_enabled() on.
  void start(const Options& options);
  void start() { start(Options()); }

  // Finalizes totals (closing any still-open phases into their
  // accumulators) and flips profiling_enabled() off. Idempotent.
  void stop();

  bool running() const noexcept { return running_; }

  // Phase scoping — called via SSSP_PROF_PHASE, not directly.
  // `name` must outlive the scope (string literals at the call sites).
  // Returns false (no-op) off the owner thread or when not running;
  // callers must skip the matching exit_phase() then.
  bool enter_phase(const char* name);
  void exit_phase();

  // Records one controller-iteration sample (owner thread only):
  // counter and energy deltas since the previous sample. The retained
  // history is decimated (stride doubling) past a size cap so long
  // runs stay bounded.
  void sample_iteration(std::uint64_t iteration);

  // Snapshot of the profile; complete after stop(), best-effort while
  // running. Safe only on the owner thread (like everything above).
  RunProfile report() const;

  // The live energy timeline (step-function watts per sampled
  // interval) for sim/energy_metrics interop and tests.
  const EnergySeries& energy_series() const noexcept { return series_; }

 private:
  Profiler() = default;

  struct Transition {  // everything read at a phase boundary
    double seconds;
    double joules;
    CounterValues counters;
  };
  Transition read_now();
  // Charges [last_transition_, now] to the innermost open phase.
  void charge_interval(const Transition& now);
  double cumulative_joules();

  Options options_;
  bool running_ = false;
  std::thread::id owner_;

  PerfCounterGroup perf_;
  RaplReader rapl_{""};
  RaplEnergy rapl_last_;
  EnergyBackend energy_backend_ = EnergyBackend::kNone;
  CounterBackend counter_backend_ = CounterBackend::kWallClock;
  std::string rapl_status_;
  double model_watts_ = 0.0;

  double start_seconds_ = 0.0;
  double stop_seconds_ = 0.0;
  CounterValues start_counters_;
  CounterValues stop_counters_;
  double total_joules_ = 0.0;  // cumulative since start()

  Transition last_transition_{};
  std::vector<const char*> phase_stack_;
  std::map<std::string, PhaseProfile> phases_;

  Transition last_iteration_mark_{};
  std::vector<IterationSample> iterations_;
  std::uint64_t iteration_stride_ = 1;
  std::uint64_t iteration_calls_ = 0;

  EnergySeries series_;
};

// RAII phase scope; engages only when profiling is armed and we are on
// the profiler's owner thread.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name) {
    if (profiling_enabled())
      engaged_ = Profiler::global().enter_phase(name);
  }
  ~PhaseScope() {
    if (engaged_) Profiler::global().exit_phase();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  bool engaged_ = false;
};

#define SSSP_PROF_CONCAT_IMPL(a, b) a##b
#define SSSP_PROF_CONCAT(a, b) SSSP_PROF_CONCAT_IMPL(a, b)

// Attributes the enclosing scope's counters/energy to `name`. Place
// alongside the matching SSSP_TRACE_SPAN; near-zero cost when
// profiling is disarmed.
#define SSSP_PROF_PHASE(name) \
  ::sssp::prof::PhaseScope SSSP_PROF_CONCAT(sssp_prof_phase_, __LINE__)(name)

}  // namespace sssp::prof
