// Shared energy-sample timeline: one (monotonic seconds, watts) sample
// stream with trapezoidal integration, used by every energy source in
// the stack — the RAPL hardware reader (src/prof/rapl.hpp), the model
// fallback estimate, and the simulator's PowerMon trace
// (sim/powermon.hpp exposes a bridge) — so joules/average-watts math
// lives in exactly one place (sim/energy_metrics consumes either
// source).
//
// Step functions are exactly representable: add the same timestamp
// twice with different watts (the zero-width trapezoid contributes no
// energy), or bracket an interval with equal-watts samples at both
// ends (the trapezoid degenerates to watts × dt). The RAPL reader uses
// the bracket form so the integral reproduces the hardware counter
// delta exactly.
#pragma once

#include <cstddef>
#include <vector>

namespace sssp::prof {

struct EnergySample {
  double seconds;  // monotonic time of the sample
  double watts;    // instantaneous power at that time
};

class EnergySeries {
 public:
  // Appends a sample. Time must be non-decreasing; non-finite values
  // and negative watts throw std::invalid_argument (a poisoned sample
  // would silently corrupt every integral downstream).
  void add(double seconds, double watts);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  // Time span covered ([first, last] sample); 0 with < 2 samples.
  double duration_seconds() const noexcept;

  // Trapezoidal integral of power over time.
  double energy_joules() const noexcept { return energy_j_; }

  // energy / duration; 0 for a span of zero length.
  double average_power_w() const noexcept;

  double peak_power_w() const noexcept { return peak_w_; }

  const std::vector<EnergySample>& samples() const noexcept {
    return samples_;
  }

  void clear() noexcept;

 private:
  std::vector<EnergySample> samples_;
  double energy_j_ = 0.0;
  double peak_w_ = 0.0;
};

// Seconds on the process-wide monotonic (steady) clock, relative to an
// arbitrary fixed epoch. Every profiling timestamp uses this one clock
// so series from different sources are directly comparable.
double monotonic_seconds() noexcept;

}  // namespace sssp::prof
