// Hardware counter access via perf_event_open(2). Six independent
// per-thread events (cycles, instructions, task-clock, LLC misses,
// branch misses, context switches) with inherit=1 so threads spawned
// *after* open() are counted too. Events are opened individually, not
// as a group: grouped reads with inherit are unsupported on older
// kernels, and a partially-available PMU (e.g. no LLC-miss event in a
// VM) should degrade that one counter to zero rather than kill the
// whole group.
//
// open() is a capability probe: it returns false — never throws — when
// the syscall is unavailable (non-Linux), forbidden
// (perf_event_paranoid, seccomp → EACCES/EPERM), or the PMU is absent
// (ENOENT). Callers fall back to wall-clock-only profiling; status()
// carries a one-line reason for the run report.
#pragma once

#include <cstdint>
#include <string>

namespace sssp::prof {

// Cumulative counter values since open(). A counter whose event could
// not be opened reads as zero; `valid` mirrors which ones are live.
struct CounterValues {
  double task_seconds = 0.0;  // TASK_CLOCK, ns → seconds
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t context_switches = 0;

  CounterValues operator-(const CounterValues& rhs) const noexcept {
    CounterValues d;
    d.task_seconds = task_seconds - rhs.task_seconds;
    d.cycles = cycles - rhs.cycles;
    d.instructions = instructions - rhs.instructions;
    d.llc_misses = llc_misses - rhs.llc_misses;
    d.branch_misses = branch_misses - rhs.branch_misses;
    d.context_switches = context_switches - rhs.context_switches;
    return d;
  }
  CounterValues& operator+=(const CounterValues& rhs) noexcept {
    task_seconds += rhs.task_seconds;
    cycles += rhs.cycles;
    instructions += rhs.instructions;
    llc_misses += rhs.llc_misses;
    branch_misses += rhs.branch_misses;
    context_switches += rhs.context_switches;
    return *this;
  }
};

class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // Probes and opens the events on the calling thread (inherited by
  // its future children). Returns true when the core trio — cycles,
  // instructions, task-clock — all opened; otherwise closes everything
  // and returns false with the reason in status().
  bool open();

  bool is_open() const noexcept { return open_; }

  // Reads the cumulative values. Missing events contribute zero.
  CounterValues read() const;

  void close();

  // Human-readable probe outcome ("ok", "perf_event_open: EACCES
  // (perf_event_paranoid?)", "unsupported platform", ...).
  const std::string& status() const noexcept { return status_; }

 private:
  static constexpr int kNumEvents = 6;
  int fds_[kNumEvents] = {-1, -1, -1, -1, -1, -1};
  bool open_ = false;
  std::string status_ = "not probed";
};

}  // namespace sssp::prof
