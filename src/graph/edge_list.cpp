#include "graph/edge_list.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sssp::graph {

CsrGraph load_edge_list(std::istream& in, const EdgeListOptions& options) {
  if (options.default_min_weight > options.default_max_weight)
    throw std::invalid_argument("EdgeListOptions: min_weight > max_weight");

  util::Xoshiro256 rng(options.weight_seed);
  std::vector<Edge> edges;
  std::uint64_t max_vertex = 0;
  bool saw_vertex = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t src, dst;
    if (!(ls >> src >> dst))
      throw std::runtime_error("edge list: malformed line " +
                               std::to_string(line_no));
    if (src > 0xFFFFFFFEull || dst > 0xFFFFFFFEull)
      throw std::runtime_error("edge list: vertex id exceeds 32 bits at line " +
                               std::to_string(line_no));
    std::uint64_t weight;
    if (!(ls >> weight)) {
      weight = rng.next_range(options.default_min_weight,
                              options.default_max_weight);
    }
    edges.push_back({static_cast<VertexId>(src), static_cast<VertexId>(dst),
                     static_cast<Weight>(std::min<std::uint64_t>(
                         weight, 0xFFFFFFFFull))});
    max_vertex = std::max({max_vertex, src, dst});
    saw_vertex = true;
  }

  BuildOptions build;
  build.make_undirected = options.make_undirected;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  const std::size_t n = saw_vertex ? static_cast<std::size_t>(max_vertex) + 1 : 0;
  return build_csr(n, std::move(edges), build);
}

CsrGraph load_edge_list_file(const std::string& path,
                             const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  return load_edge_list(in, options);
}

}  // namespace sssp::graph
