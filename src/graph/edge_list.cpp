#include "graph/edge_list.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/builder.hpp"
#include "graph/io_error.hpp"
#include "util/rng.hpp"

namespace sssp::graph {

CsrGraph load_edge_list(std::istream& in, const EdgeListOptions& options) {
  if (options.default_min_weight > options.default_max_weight)
    throw std::invalid_argument("EdgeListOptions: min_weight > max_weight");

  util::Xoshiro256 rng(options.weight_seed);
  std::vector<Edge> edges;
  std::uint64_t max_vertex = 0;
  bool saw_vertex = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    // Injected parse fault: blank the separators so the numeric parse
    // below fails through the structured-error path.
    if (SSSP_FAILPOINT("graph.edge_list.corrupt_line")) line = "not numbers";
    std::istringstream ls(line);
    std::uint64_t src, dst;
    if (!(ls >> src >> dst))
      throw GraphIoError(IoErrorClass::kParse, "edge list", "malformed line",
                         line_no);
    if (src > 0xFFFFFFFEull || dst > 0xFFFFFFFEull)
      throw GraphIoError(IoErrorClass::kLimit, "edge list",
                         "vertex id exceeds 32 bits", line_no);
    // The weight column is optional, but when present it must be a
    // non-negative integer. istream's unsigned extraction silently
    // wraps "-5" modulo 2^64 and a stray "nan"/garbage token would fall
    // through to a random weight — both produce a plausible-looking
    // graph with corrupted weights, so parse the token explicitly.
    std::uint64_t weight;
    std::string weight_token;
    if (!(ls >> weight_token)) {
      weight = rng.next_range(options.default_min_weight,
                              options.default_max_weight);
    } else if (weight_token[0] == '-') {
      throw GraphIoError(IoErrorClass::kParse, "edge list",
                         "negative weight '" + weight_token + "'", line_no);
    } else {
      std::istringstream ws(weight_token);
      if (!(ws >> weight) || ws.peek() != std::istringstream::traits_type::eof())
        throw GraphIoError(IoErrorClass::kParse, "edge list",
                           "malformed weight '" + weight_token + "'", line_no);
    }
    edges.push_back({static_cast<VertexId>(src), static_cast<VertexId>(dst),
                     static_cast<Weight>(std::min<std::uint64_t>(
                         weight, 0xFFFFFFFFull))});
    max_vertex = std::max({max_vertex, src, dst});
    saw_vertex = true;
  }

  BuildOptions build;
  build.make_undirected = options.make_undirected;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  const std::size_t n = saw_vertex ? static_cast<std::size_t>(max_vertex) + 1 : 0;
  return build_csr(n, std::move(edges), build);
}

CsrGraph load_edge_list_file(const std::string& path,
                             const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in)
    throw GraphIoError(IoErrorClass::kOpen, "edge list",
                       "cannot open: " + path);
  return load_edge_list(in, options);
}

}  // namespace sssp::graph
