#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/degree_stats.hpp"
#include "graph/rmat.hpp"
#include "graph/road.hpp"

namespace sssp::graph {
namespace {

// Paper Table 1 values.
constexpr std::uint64_t kCalNodes = 1'890'815;
constexpr std::uint64_t kCalEdges = 4'630'444;
constexpr std::uint64_t kWikiNodes = 1'634'989;
constexpr std::uint64_t kWikiEdges = 19'735'890;
constexpr std::uint64_t kWikiMaxDegree = 4'970;

}  // namespace

std::string dataset_name(Dataset dataset) {
  switch (dataset) {
    case Dataset::kCal: return "Cal";
    case Dataset::kWiki: return "Wiki";
  }
  return "?";
}

Dataset parse_dataset(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "cal" || lower == "road") return Dataset::kCal;
  if (lower == "wiki" || lower == "rmat") return Dataset::kWiki;
  throw std::invalid_argument("unknown dataset '" + name +
                              "' (expected cal|wiki)");
}

CsrGraph make_dataset(Dataset dataset, const DatasetOptions& options) {
  if (options.scale <= 0.0 || options.scale > 1.0)
    throw std::invalid_argument("DatasetOptions: scale must be in (0, 1]");

  switch (dataset) {
    case Dataset::kCal: {
      // Square-ish grid with node count ~ scale * kCalNodes. Density and
      // ramp rate tuned so edges/node ~ 2.45 matches Cal.
      const double target_nodes =
          options.scale * static_cast<double>(kCalNodes);
      const auto side = static_cast<std::uint32_t>(
          std::max(4.0, std::round(std::sqrt(target_nodes))));
      RoadOptions road;
      road.rows = side;
      road.cols = side;
      road.street_density = 0.60;  // ~2.4 directed edges per node
      road.ramps_per_1000_vertices = 12.0;
      road.max_ramp_span = 24;
      road.weight_spread = 3.0;
      road.seed = options.seed;
      return generate_road(road);
    }
    case Dataset::kWiki: {
      const double target_nodes =
          options.scale * static_cast<double>(kWikiNodes);
      const auto scale_bits = static_cast<unsigned>(
          std::max(4.0, std::ceil(std::log2(std::max(16.0, target_nodes)))));
      RmatOptions rmat;
      rmat.scale = scale_bits;
      rmat.num_edges = static_cast<std::uint64_t>(
          options.scale * static_cast<double>(kWikiEdges));
      rmat.min_weight = 1;
      rmat.max_weight = 99;
      rmat.seed = options.seed;
      return generate_rmat(rmat);
    }
  }
  throw std::invalid_argument("make_dataset: bad dataset enum");
}

VertexId default_source(Dataset dataset, const CsrGraph& graph) {
  if (graph.num_vertices() == 0)
    throw std::invalid_argument("default_source: empty graph");
  switch (dataset) {
    case Dataset::kCal: {
      // Prefer the geometric center (vertices are laid out row-major
      // over a square), but the street grid percolates: at small scales
      // the center can sit in a disconnected pocket. Probe a few spread
      // candidates and keep the one reaching the most of the graph.
      const auto n = graph.num_vertices();
      const VertexId candidates[] = {
          static_cast<VertexId>(n / 2), static_cast<VertexId>(n / 2 + n / 7),
          static_cast<VertexId>(n / 3), static_cast<VertexId>(2 * n / 3),
          max_degree_vertex(graph)};
      VertexId best = candidates[0];
      std::size_t best_reach = 0;
      for (const VertexId candidate : candidates) {
        const std::size_t reach = count_reachable(graph, candidate);
        if (reach > best_reach) {
          best_reach = reach;
          best = candidate;
        }
        if (best_reach > n / 2) break;  // good enough; stop probing
      }
      return best;
    }
    case Dataset::kWiki:
      return max_degree_vertex(graph);
  }
  return 0;
}

PaperDatasetRow paper_table1_row(Dataset dataset) {
  switch (dataset) {
    case Dataset::kCal:
      return {"Cal", kCalNodes, kCalEdges, 0};
    case Dataset::kWiki:
      return {"Wiki", kWikiNodes, kWikiEdges, kWikiMaxDegree};
  }
  throw std::invalid_argument("paper_table1_row: bad dataset enum");
}

}  // namespace sssp::graph
