#include "graph/mmap_cache.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "fault/failpoint.hpp"
#include "graph/binary_io.hpp"
#include "graph/io_error.hpp"
#include "graph/sigbus_guard.hpp"
#include "obs/metrics.hpp"

namespace sssp::graph {
namespace {

constexpr char kMagicV2[8] = {'T', 'S', 'S', 'S', 'P', 'G', 'R', '2'};
constexpr const char* kFormat = "mmap graph cache";

[[noreturn]] void fail(IoErrorClass error_class, const std::string& what,
                       std::uint64_t byte_offset) {
  throw GraphIoError(error_class, kFormat, what, GraphIoError::kNoPosition,
                     byte_offset);
}

// Mirrors the save_binary layout (binary_io.cpp).
struct HeaderBody {
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
};

// The u64 checksum trailers land on 4-byte alignment whenever the
// preceding u32 section has an odd element count, so they must be
// memcpy'd, never dereferenced as u64*.
std::uint64_t read_u64_unaligned(const unsigned char* p) noexcept {
  std::uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

// Walks one "payload + u64 checksum" section, verifying bounds against
// the file size and the FNV-1a checksum against the mapped bytes.
struct SectionWalker {
  const unsigned char* base;
  std::uint64_t file_size;
  std::uint64_t offset;

  const unsigned char* take(std::uint64_t payload_bytes, const char* what) {
    const std::uint64_t section_start = offset;
    if (payload_bytes + sizeof(std::uint64_t) > file_size - offset)
      fail(IoErrorClass::kTruncated,
           std::string("unexpected end of file in ") + what,
           file_size);
    const unsigned char* payload = base + offset;
    offset += payload_bytes;
    const std::uint64_t expected = read_u64_unaligned(base + offset);
    offset += sizeof(std::uint64_t);
    if (fnv1a64(payload, payload_bytes) != expected)
      fail(IoErrorClass::kChecksum,
           std::string(what) + " section checksum mismatch", section_start);
    return payload;
  }
};

// RAII close for the interval between open() and mmap().
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

void bump(const char* name) {
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter(name).add(1);
}

constexpr const char* kSigbusWhat =
    "SIGBUS reading mapped cache (file truncated or storage failing)";

}  // namespace

bool is_mappable_cache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  FdGuard guard{fd};
  char magic[sizeof(kMagicV2)];
  std::size_t got = 0;
  while (got < sizeof(magic)) {
    const ssize_t n = ::read(fd, magic + got, sizeof(magic) - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
}

MmapGraph::~MmapGraph() { reset(); }

void MmapGraph::reset() noexcept {
  // The view into the mapping must die before the mapping does.
  graph_ = CsrGraph();
  if (base_ != nullptr) ::munmap(base_, size_);
  base_ = nullptr;
  size_ = 0;
  path_.clear();
}

MmapGraph::MmapGraph(MmapGraph&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)),
      graph_(std::move(other.graph_)) {}

MmapGraph& MmapGraph::operator=(MmapGraph&& other) noexcept {
  if (this == &other) return *this;
  reset();
  base_ = std::exchange(other.base_, nullptr);
  size_ = std::exchange(other.size_, 0);
  path_ = std::move(other.path_);
  graph_ = std::move(other.graph_);
  return *this;
}

MmapGraph MmapGraph::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "cannot open: " + path + " (" + std::strerror(errno) +
                           ")");
  FdGuard guard{fd};

  struct stat st{};
  if (::fstat(fd, &st) != 0)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "fstat failed: " + path + " (" + std::strerror(errno) +
                           ")");
  const auto file_size = static_cast<std::uint64_t>(st.st_size);

  // magic + header body + header checksum.
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kMagicV2) + sizeof(HeaderBody) + sizeof(std::uint64_t);
  static_assert(kHeaderBytes == 40, "v2 header layout drifted");
  if (file_size < kHeaderBytes)
    fail(IoErrorClass::kTruncated, "unexpected end of file in header",
         file_size);

  // MAP_SHARED of a read-only file: every process mapping this path
  // shares the same page-cache pages — the whole point of the cache.
  void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "mmap failed: " + path + " (" + std::strerror(errno) +
                           ")");
  MmapGraph result;
  result.base_ = base;
  result.size_ = static_cast<std::size_t>(file_size);
  result.path_ = path;

  // Every touch of the mapped bytes below runs under the SIGBUS
  // trampoline: a file truncated between fstat and here (or storage
  // already failing) becomes a structured kTruncated error the caller
  // handles with the heap-loader fallback, not process death.
  SigbusGuard sigbus;
  if (!SSSP_SIGBUS_TRY(sigbus))
    fail(IoErrorClass::kTruncated, kSigbusWhat, 0);
  if (SSSP_FAILPOINT("io.mmap.sigbus")) ::raise(SIGBUS);

  const auto* bytes = static_cast<const unsigned char*>(base);
  if (std::memcmp(bytes, kMagicV2, sizeof(kMagicV2)) != 0)
    // v1 and foreign files both land here: only v2 carries the
    // checksums that make a long-lived shared mapping safe, so callers
    // fall back to the heap loader.
    fail(IoErrorClass::kVersion, "not a v2 graph cache (bad magic)", 0);

  HeaderBody body;
  std::memcpy(&body, bytes + sizeof(kMagicV2), sizeof(body));
  const std::uint64_t header_start = sizeof(kMagicV2);
  const std::uint64_t header_sum =
      read_u64_unaligned(bytes + sizeof(kMagicV2) + sizeof(body));
  if (fnv1a64(&body, sizeof(body)) != header_sum)
    fail(IoErrorClass::kChecksum, "header checksum mismatch", header_start);
  if (body.version != kBinaryFormatVersion)
    fail(IoErrorClass::kVersion,
         "unsupported format version " + std::to_string(body.version),
         header_start);
  // Same plausibility bounds as the heap loader; also guarantees the
  // byte counts below cannot overflow u64.
  if (body.num_vertices > (std::uint64_t{1} << 33) ||
      body.num_edges > (std::uint64_t{1} << 36))
    fail(IoErrorClass::kLimit, "implausible header sizes", header_start);

  // Section layout keeps every array naturally aligned: offsets start
  // at byte 40 (u64-aligned), and the u32 sections only need 4-byte
  // alignment, which every preceding section size preserves.
  SectionWalker walker{bytes, file_size, kHeaderBytes};
  const std::uint64_t num_offsets = body.num_vertices + 1;
  const auto* offsets_bytes =
      walker.take(num_offsets * sizeof(EdgeIndex), "offsets");
  const auto* targets_bytes =
      walker.take(body.num_edges * sizeof(VertexId), "targets");
  const auto* weights_bytes =
      walker.take(body.num_edges * sizeof(Weight), "weights");

  try {
    result.graph_ = CsrGraph::view(
        {reinterpret_cast<const EdgeIndex*>(offsets_bytes),
         static_cast<std::size_t>(num_offsets)},
        {reinterpret_cast<const VertexId*>(targets_bytes),
         static_cast<std::size_t>(body.num_edges)},
        {reinterpret_cast<const Weight*>(weights_bytes),
         static_cast<std::size_t>(body.num_edges)});
    result.graph_.validate();
  } catch (const std::invalid_argument& e) {
    fail(IoErrorClass::kParse,
         std::string("inconsistent CSR structure: ") + e.what(), kHeaderBytes);
  }
  return result;
}

MmapGraph::ScrubResult MmapGraph::scrub() const noexcept {
  ScrubResult out;
  if (!valid()) {
    out.ok = false;
    out.reason = "no mapping";
    return out;
  }
  SigbusGuard sigbus;
  if (!SSSP_SIGBUS_TRY(sigbus)) {
    out.ok = false;
    out.reason = kSigbusWhat;
    bump("graph.mmap.scrub.sigbus");
    return out;
  }
  if (SSSP_FAILPOINT("io.mmap.sigbus")) ::raise(SIGBUS);

  const auto* bytes = static_cast<const unsigned char*>(base_);
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kMagicV2) + sizeof(HeaderBody) + sizeof(std::uint64_t);
  HeaderBody body;
  std::memcpy(&body, bytes + sizeof(kMagicV2), sizeof(body));
  const auto check = [&](std::uint64_t offset, std::uint64_t payload_bytes,
                         const char* what) {
    const std::uint64_t expected =
        read_u64_unaligned(bytes + offset + payload_bytes);
    if (fnv1a64(bytes + offset, payload_bytes) == expected) return true;
    out.ok = false;
    out.reason = std::string(what) + " section checksum mismatch";
    return false;
  };
  // Layout mirrors open(); sizes were bounds-checked there and the
  // mapping length has not changed, so offsets stay in range.
  const std::uint64_t offsets_bytes =
      (body.num_vertices + 1) * sizeof(EdgeIndex);
  const std::uint64_t targets_bytes = body.num_edges * sizeof(VertexId);
  const std::uint64_t weights_bytes = body.num_edges * sizeof(Weight);
  std::uint64_t offset = sizeof(kMagicV2);
  if (fnv1a64(&body, sizeof(body)) !=
      read_u64_unaligned(bytes + offset + sizeof(body))) {
    out.ok = false;
    out.reason = "header checksum mismatch";
  }
  offset = kHeaderBytes;
  if (out.ok && check(offset, offsets_bytes, "offsets"))
    offset += offsets_bytes + sizeof(std::uint64_t);
  if (out.ok && check(offset, targets_bytes, "targets"))
    offset += targets_bytes + sizeof(std::uint64_t);
  if (out.ok) check(offset, weights_bytes, "weights");
  bump(out.ok ? "graph.mmap.scrub.pass" : "graph.mmap.scrub.fail");
  return out;
}

bool quarantine_cache(const std::string& path) noexcept {
  const std::string quarantined = path + ".quarantined";
  if (::rename(path.c_str(), quarantined.c_str()) != 0) return false;
  bump("graph.mmap.quarantined");
  return true;
}

CacheScrubber::CacheScrubber(const MmapGraph& mapped,
                             std::uint64_t interval_ms,
                             std::function<void(const std::string&)> on_failure)
    : mapped_(mapped), on_failure_(std::move(on_failure)) {
  thread_ = std::thread([this, interval_ms] { run(interval_ms); });
}

CacheScrubber::~CacheScrubber() { stop(); }

void CacheScrubber::stop() noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void CacheScrubber::run(std::uint64_t interval_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                 [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    const MmapGraph::ScrubResult result = mapped_.scrub();
    passes_.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok) {
      failed_.store(true, std::memory_order_relaxed);
      // Move the rotted file aside first so a racing open() in another
      // worker regenerates instead of re-mapping the same rot.
      quarantine_cache(mapped_.path());
      if (on_failure_) on_failure_(result.reason);
      return;
    }
    lock.lock();
  }
}

}  // namespace sssp::graph
