#include "graph/mmap_cache.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "graph/binary_io.hpp"
#include "graph/io_error.hpp"

namespace sssp::graph {
namespace {

constexpr char kMagicV2[8] = {'T', 'S', 'S', 'S', 'P', 'G', 'R', '2'};
constexpr const char* kFormat = "mmap graph cache";

[[noreturn]] void fail(IoErrorClass error_class, const std::string& what,
                       std::uint64_t byte_offset) {
  throw GraphIoError(error_class, kFormat, what, GraphIoError::kNoPosition,
                     byte_offset);
}

// Mirrors the save_binary layout (binary_io.cpp).
struct HeaderBody {
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
};

// The u64 checksum trailers land on 4-byte alignment whenever the
// preceding u32 section has an odd element count, so they must be
// memcpy'd, never dereferenced as u64*.
std::uint64_t read_u64_unaligned(const unsigned char* p) noexcept {
  std::uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

// Walks one "payload + u64 checksum" section, verifying bounds against
// the file size and the FNV-1a checksum against the mapped bytes.
struct SectionWalker {
  const unsigned char* base;
  std::uint64_t file_size;
  std::uint64_t offset;

  const unsigned char* take(std::uint64_t payload_bytes, const char* what) {
    const std::uint64_t section_start = offset;
    if (payload_bytes + sizeof(std::uint64_t) > file_size - offset)
      fail(IoErrorClass::kTruncated,
           std::string("unexpected end of file in ") + what,
           file_size);
    const unsigned char* payload = base + offset;
    offset += payload_bytes;
    const std::uint64_t expected = read_u64_unaligned(base + offset);
    offset += sizeof(std::uint64_t);
    if (fnv1a64(payload, payload_bytes) != expected)
      fail(IoErrorClass::kChecksum,
           std::string(what) + " section checksum mismatch", section_start);
    return payload;
  }
};

// RAII close for the interval between open() and mmap().
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

bool is_mappable_cache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  FdGuard guard{fd};
  char magic[sizeof(kMagicV2)];
  std::size_t got = 0;
  while (got < sizeof(magic)) {
    const ssize_t n = ::read(fd, magic + got, sizeof(magic) - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
}

MmapGraph::~MmapGraph() { reset(); }

void MmapGraph::reset() noexcept {
  // The view into the mapping must die before the mapping does.
  graph_ = CsrGraph();
  if (base_ != nullptr) ::munmap(base_, size_);
  base_ = nullptr;
  size_ = 0;
}

MmapGraph::MmapGraph(MmapGraph&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      graph_(std::move(other.graph_)) {}

MmapGraph& MmapGraph::operator=(MmapGraph&& other) noexcept {
  if (this == &other) return *this;
  reset();
  base_ = std::exchange(other.base_, nullptr);
  size_ = std::exchange(other.size_, 0);
  graph_ = std::move(other.graph_);
  return *this;
}

MmapGraph MmapGraph::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "cannot open: " + path + " (" + std::strerror(errno) +
                           ")");
  FdGuard guard{fd};

  struct stat st{};
  if (::fstat(fd, &st) != 0)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "fstat failed: " + path + " (" + std::strerror(errno) +
                           ")");
  const auto file_size = static_cast<std::uint64_t>(st.st_size);

  // magic + header body + header checksum.
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kMagicV2) + sizeof(HeaderBody) + sizeof(std::uint64_t);
  static_assert(kHeaderBytes == 40, "v2 header layout drifted");
  if (file_size < kHeaderBytes)
    fail(IoErrorClass::kTruncated, "unexpected end of file in header",
         file_size);

  // MAP_SHARED of a read-only file: every process mapping this path
  // shares the same page-cache pages — the whole point of the cache.
  void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "mmap failed: " + path + " (" + std::strerror(errno) +
                           ")");
  MmapGraph result;
  result.base_ = base;
  result.size_ = static_cast<std::size_t>(file_size);

  const auto* bytes = static_cast<const unsigned char*>(base);
  if (std::memcmp(bytes, kMagicV2, sizeof(kMagicV2)) != 0)
    // v1 and foreign files both land here: only v2 carries the
    // checksums that make a long-lived shared mapping safe, so callers
    // fall back to the heap loader.
    fail(IoErrorClass::kVersion, "not a v2 graph cache (bad magic)", 0);

  HeaderBody body;
  std::memcpy(&body, bytes + sizeof(kMagicV2), sizeof(body));
  const std::uint64_t header_start = sizeof(kMagicV2);
  const std::uint64_t header_sum =
      read_u64_unaligned(bytes + sizeof(kMagicV2) + sizeof(body));
  if (fnv1a64(&body, sizeof(body)) != header_sum)
    fail(IoErrorClass::kChecksum, "header checksum mismatch", header_start);
  if (body.version != kBinaryFormatVersion)
    fail(IoErrorClass::kVersion,
         "unsupported format version " + std::to_string(body.version),
         header_start);
  // Same plausibility bounds as the heap loader; also guarantees the
  // byte counts below cannot overflow u64.
  if (body.num_vertices > (std::uint64_t{1} << 33) ||
      body.num_edges > (std::uint64_t{1} << 36))
    fail(IoErrorClass::kLimit, "implausible header sizes", header_start);

  // Section layout keeps every array naturally aligned: offsets start
  // at byte 40 (u64-aligned), and the u32 sections only need 4-byte
  // alignment, which every preceding section size preserves.
  SectionWalker walker{bytes, file_size, kHeaderBytes};
  const std::uint64_t num_offsets = body.num_vertices + 1;
  const auto* offsets_bytes =
      walker.take(num_offsets * sizeof(EdgeIndex), "offsets");
  const auto* targets_bytes =
      walker.take(body.num_edges * sizeof(VertexId), "targets");
  const auto* weights_bytes =
      walker.take(body.num_edges * sizeof(Weight), "weights");

  try {
    result.graph_ = CsrGraph::view(
        {reinterpret_cast<const EdgeIndex*>(offsets_bytes),
         static_cast<std::size_t>(num_offsets)},
        {reinterpret_cast<const VertexId*>(targets_bytes),
         static_cast<std::size_t>(body.num_edges)},
        {reinterpret_cast<const Weight*>(weights_bytes),
         static_cast<std::size_t>(body.num_edges)});
    result.graph_.validate();
  } catch (const std::invalid_argument& e) {
    fail(IoErrorClass::kParse,
         std::string("inconsistent CSR structure: ") + e.what(), kHeaderBytes);
  }
  return result;
}

}  // namespace sssp::graph
