#include "graph/csr.hpp"

#include <numeric>
#include <stdexcept>
#include <string>

namespace sssp::graph {

CsrGraph::CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets,
                   std::vector<Weight> weights)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)) {
  if (offsets_.empty())
    throw std::invalid_argument("CsrGraph: offsets must have >= 1 entry");
  if (offsets_.back() != targets_.size())
    throw std::invalid_argument(
        "CsrGraph: offsets.back() != targets.size() (" +
        std::to_string(offsets_.back()) + " vs " +
        std::to_string(targets_.size()) + ")");
  if (targets_.size() != weights_.size())
    throw std::invalid_argument("CsrGraph: targets/weights size mismatch");
}

double CsrGraph::mean_edge_weight() const noexcept {
  if (weights_.empty()) return 0.0;
  const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  return total / static_cast<double>(weights_.size());
}

void CsrGraph::validate() const {
  const std::size_t n = num_vertices();
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1])
      throw std::invalid_argument("CsrGraph: offsets not monotone at vertex " +
                                  std::to_string(v));
  }
  for (std::size_t e = 0; e < targets_.size(); ++e) {
    if (targets_[e] >= n)
      throw std::invalid_argument("CsrGraph: edge " + std::to_string(e) +
                                  " targets out-of-range vertex " +
                                  std::to_string(targets_[e]));
  }
}

std::size_t CsrGraph::memory_bytes() const noexcept {
  return offsets_.capacity() * sizeof(EdgeIndex) +
         targets_.capacity() * sizeof(VertexId) +
         weights_.capacity() * sizeof(Weight);
}

}  // namespace sssp::graph
