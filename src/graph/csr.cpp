#include "graph/csr.hpp"

#include <numeric>
#include <stdexcept>
#include <string>

namespace sssp::graph {

CsrGraph::CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets,
                   std::vector<Weight> weights)
    : owns_(true),
      offsets_store_(std::move(offsets)),
      targets_store_(std::move(targets)),
      weights_store_(std::move(weights)) {
  rebind();
  check_shape();
}

CsrGraph::CsrGraph(std::span<const EdgeIndex> offsets,
                   std::span<const VertexId> targets,
                   std::span<const Weight> weights, bool check)
    : offsets_(offsets), targets_(targets), weights_(weights), owns_(false) {
  if (check) check_shape();
}

CsrGraph CsrGraph::view(std::span<const EdgeIndex> offsets,
                        std::span<const VertexId> targets,
                        std::span<const Weight> weights) {
  return CsrGraph(offsets, targets, weights, /*check=*/true);
}

CsrGraph::CsrGraph(const CsrGraph& other)
    : owns_(other.owns_),
      offsets_store_(other.offsets_store_),
      targets_store_(other.targets_store_),
      weights_store_(other.weights_store_) {
  if (owns_) {
    rebind();
  } else {
    offsets_ = other.offsets_;
    targets_ = other.targets_;
    weights_ = other.weights_;
  }
}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  if (this == &other) return *this;
  owns_ = other.owns_;
  offsets_store_ = other.offsets_store_;
  targets_store_ = other.targets_store_;
  weights_store_ = other.weights_store_;
  if (owns_) {
    rebind();
  } else {
    offsets_ = other.offsets_;
    targets_ = other.targets_;
    weights_ = other.weights_;
  }
  return *this;
}

CsrGraph::CsrGraph(CsrGraph&& other) noexcept
    : owns_(other.owns_),
      offsets_store_(std::move(other.offsets_store_)),
      targets_store_(std::move(other.targets_store_)),
      weights_store_(std::move(other.weights_store_)) {
  // Moving a vector transfers its buffer, so rebinding after the move
  // (owning) or copying the spans (view) both stay valid.
  if (owns_) {
    rebind();
  } else {
    offsets_ = other.offsets_;
    targets_ = other.targets_;
    weights_ = other.weights_;
  }
  other.offsets_ = {};
  other.targets_ = {};
  other.weights_ = {};
  other.owns_ = true;
}

CsrGraph& CsrGraph::operator=(CsrGraph&& other) noexcept {
  if (this == &other) return *this;
  owns_ = other.owns_;
  offsets_store_ = std::move(other.offsets_store_);
  targets_store_ = std::move(other.targets_store_);
  weights_store_ = std::move(other.weights_store_);
  if (owns_) {
    rebind();
  } else {
    offsets_ = other.offsets_;
    targets_ = other.targets_;
    weights_ = other.weights_;
  }
  other.offsets_ = {};
  other.targets_ = {};
  other.weights_ = {};
  other.owns_ = true;
  return *this;
}

void CsrGraph::rebind() noexcept {
  offsets_ = offsets_store_;
  targets_ = targets_store_;
  weights_ = weights_store_;
}

void CsrGraph::check_shape() const {
  if (offsets_.empty())
    throw std::invalid_argument("CsrGraph: offsets must have >= 1 entry");
  if (offsets_.back() != targets_.size())
    throw std::invalid_argument(
        "CsrGraph: offsets.back() != targets.size() (" +
        std::to_string(offsets_.back()) + " vs " +
        std::to_string(targets_.size()) + ")");
  if (targets_.size() != weights_.size())
    throw std::invalid_argument("CsrGraph: targets/weights size mismatch");
}

double CsrGraph::mean_edge_weight() const noexcept {
  if (weights_.empty()) return 0.0;
  const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  return total / static_cast<double>(weights_.size());
}

void CsrGraph::validate() const {
  const std::size_t n = num_vertices();
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1])
      throw std::invalid_argument("CsrGraph: offsets not monotone at vertex " +
                                  std::to_string(v));
  }
  for (std::size_t e = 0; e < targets_.size(); ++e) {
    if (targets_[e] >= n)
      throw std::invalid_argument("CsrGraph: edge " + std::to_string(e) +
                                  " targets out-of-range vertex " +
                                  std::to_string(targets_[e]));
  }
}

std::size_t CsrGraph::memory_bytes() const noexcept {
  return offsets_store_.capacity() * sizeof(EdgeIndex) +
         targets_store_.capacity() * sizeof(VertexId) +
         weights_store_.capacity() * sizeof(Weight);
}

}  // namespace sssp::graph
