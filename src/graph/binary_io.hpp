// Fast binary graph cache. Parsing multi-gigabyte DIMACS/MatrixMarket
// text dominates experiment startup; this format memcpy's the three CSR
// arrays with a small validated header instead.
//
// Layout (little-endian, 64-bit sizes):
//   magic "TSSSPGR1" | num_vertices u64 | num_edges u64
//   offsets  (num_vertices + 1) x u64
//   targets  num_edges x u32
//   weights  num_edges x u32
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace sssp::graph {

void save_binary(const CsrGraph& graph, std::ostream& out);
void save_binary_file(const CsrGraph& graph, const std::string& path);

// Throws std::runtime_error on bad magic, truncation, or inconsistent
// sizes; the loaded graph is validated structurally.
CsrGraph load_binary(std::istream& in);
CsrGraph load_binary_file(const std::string& path);

}  // namespace sssp::graph
