// Fast binary graph cache. Parsing multi-gigabyte DIMACS/MatrixMarket
// text dominates experiment startup; this format memcpy's the three CSR
// arrays with a small validated header instead.
//
// Format v2 ("TSSSPGR2", little-endian, 64-bit sizes) — written by
// save_binary; adds a format version and end-to-end corruption
// detection:
//   magic "TSSSPGR2" | version u32 | reserved u32
//   num_vertices u64 | num_edges u64 | header_checksum u64
//   offsets  (num_vertices + 1) x u64 | offsets_checksum u64
//   targets  num_edges x u32          | targets_checksum u64
//   weights  num_edges x u32          | weights_checksum u64
// Checksums are FNV-1a 64 over the raw section bytes (the header
// checksum covers version..num_edges). A flipped bit anywhere in the
// file surfaces as a structured GraphIoError instead of a corrupt
// graph.
//
// Format v1 ("TSSSPGR1": header + raw sections, no checksums) is still
// readable so existing caches keep working.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace sssp::graph {

// The version save_binary writes into v2 headers.
inline constexpr std::uint32_t kBinaryFormatVersion = 2;

// FNV-1a 64-bit over a byte range (exposed for tests and tools).
std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept;

void save_binary(const CsrGraph& graph, std::ostream& out);
void save_binary_file(const CsrGraph& graph, const std::string& path);

// Throws GraphIoError (see io_error.hpp) with a byte offset and error
// class on bad magic (kVersion), truncation (kTruncated), checksum
// mismatch (kChecksum), or implausible header sizes (kLimit); the
// loaded graph is additionally validated structurally.
CsrGraph load_binary(std::istream& in);
CsrGraph load_binary_file(const std::string& path);

}  // namespace sssp::graph
