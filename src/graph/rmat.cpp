#include "graph/rmat.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sssp::graph {

std::vector<Edge> generate_rmat_edges(const RmatOptions& options) {
  if (options.scale == 0 || options.scale > 31)
    throw std::invalid_argument("RmatOptions: scale must be in [1, 31]");
  const double sum = options.a + options.b + options.c + options.d;
  if (options.a <= 0 || options.b <= 0 || options.c <= 0 || options.d <= 0 ||
      std::abs(sum - 1.0) > 1e-6)
    throw std::invalid_argument(
        "RmatOptions: quadrant probabilities must be positive and sum to 1");
  if (options.min_weight > options.max_weight)
    throw std::invalid_argument("RmatOptions: min_weight > max_weight");

  util::Xoshiro256 rng(options.seed);
  std::vector<Edge> edges;
  edges.reserve(options.num_edges);

  const double ab = options.a + options.b;
  const double a_frac = options.a / ab;              // P(left | top)
  const double c_frac = options.c / (options.c + options.d);  // P(left | bottom)

  for (std::uint64_t i = 0; i < options.num_edges; ++i) {
    VertexId src = 0, dst = 0;
    for (unsigned bit = 0; bit < options.scale; ++bit) {
      // Jitter quadrant probabilities per level (standard R-MAT noise to
      // avoid exactly self-similar artifacts).
      const double noise = 0.9 + 0.2 * rng.next_double();
      const double top = ab * noise > 1.0 ? 1.0 : ab * noise;
      const bool go_bottom = rng.next_double() >= top;
      const double left_p = go_bottom ? c_frac : a_frac;
      const bool go_right = rng.next_double() >= left_p;
      src = static_cast<VertexId>((src << 1) | (go_bottom ? 1u : 0u));
      dst = static_cast<VertexId>((dst << 1) | (go_right ? 1u : 0u));
    }
    if (options.scramble && (rng.next() & 1u)) std::swap(src, dst);
    const Weight w = static_cast<Weight>(
        rng.next_range(options.min_weight, options.max_weight));
    edges.push_back({src, dst, w});
  }
  return edges;
}

CsrGraph generate_rmat(const RmatOptions& options) {
  auto edges = generate_rmat_edges(options);
  BuildOptions build;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  return build_csr(std::size_t{1} << options.scale, std::move(edges), build);
}

}  // namespace sssp::graph
