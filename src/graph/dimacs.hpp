// DIMACS shortest-path challenge ".gr" format reader/writer.
//
// This is the format of the paper's Cal input (9th DIMACS Implementation
// Challenge). Grammar (1-indexed vertices):
//   c <comment>
//   p sp <num_vertices> <num_edges>
//   a <src> <dst> <weight>
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace sssp::graph {

// Parses a .gr stream/file into CSR. Throws GraphIoError (io_error.hpp)
// with an error class and line number on malformed or truncated input.
CsrGraph load_dimacs(std::istream& in);
CsrGraph load_dimacs_file(const std::string& path);

// Writes `graph` in .gr format (each directed CSR edge as one 'a' line).
void save_dimacs(const CsrGraph& graph, std::ostream& out,
                 const std::string& comment = "");
void save_dimacs_file(const CsrGraph& graph, const std::string& path,
                      const std::string& comment = "");

}  // namespace sssp::graph
