#include "graph/sigbus_guard.hpp"

#include <signal.h>

#include <atomic>
#include <mutex>

namespace sssp::graph {
namespace {

thread_local SigbusGuard* t_active_guard = nullptr;
std::atomic<bool> g_handler_installed{false};

// Async-signal-safe by construction: one thread_local load, a flag
// store on the guard, and siglongjmp. When no guard is active on the
// faulting thread, restore SIG_DFL and re-raise so the crash keeps its
// true signal (the serve supervisor keys restart policy off it).
void sigbus_handler(int signo) {
  SigbusGuard* guard = t_active_guard;
  if (guard != nullptr) {
    guard->mark_tripped();
    siglongjmp(guard->env(), 1);
  }
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(signo, &dfl, nullptr);
  ::raise(signo);
}

void install_handler_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action{};
    action.sa_handler = &sigbus_handler;
    ::sigemptyset(&action.sa_mask);
    // No SA_RESTART: a read stuck in a faulting page cannot restart
    // anyway; no SA_NODEFER needed because siglongjmp(…, 1) restores
    // the pre-sigsetjmp mask, unblocking SIGBUS for the next guard.
    action.sa_flags = 0;
    ::sigaction(SIGBUS, &action, nullptr);
    g_handler_installed.store(true, std::memory_order_release);
  });
}

}  // namespace

SigbusGuard::SigbusGuard() noexcept {
  install_handler_once();
  previous_ = t_active_guard;
  t_active_guard = this;
}

SigbusGuard::~SigbusGuard() noexcept { t_active_guard = previous_; }

bool sigbus_handler_installed() noexcept {
  return g_handler_installed.load(std::memory_order_acquire);
}

}  // namespace sssp::graph
