#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sssp::graph {

CsrGraph build_csr(std::size_t num_vertices, std::vector<Edge> edges,
                   const BuildOptions& options) {
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices)
      throw std::invalid_argument(
          "build_csr: edge (" + std::to_string(e.src) + "," +
          std::to_string(e.dst) + ") out of range for n=" +
          std::to_string(num_vertices));
  }

  if (options.make_undirected) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      const Edge& e = edges[i];
      if (e.src != e.dst) edges.push_back({e.dst, e.src, e.weight});
    }
  }

  if (options.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }

  if (options.sort_neighbors || options.dedupe_parallel_edges) {
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.src != b.src) return a.src < b.src;
      if (a.dst != b.dst) return a.dst < b.dst;
      return a.weight < b.weight;
    });
  }

  if (options.dedupe_parallel_edges) {
    // After sorting, the lightest parallel edge comes first; keep it.
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<EdgeIndex> offsets(num_vertices + 1, 0);
  for (const Edge& e : edges) ++offsets[e.src + 1];
  for (std::size_t v = 0; v < num_vertices; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> targets(edges.size());
  std::vector<Weight> weights(edges.size());
  if (options.sort_neighbors || options.dedupe_parallel_edges) {
    // Edges already sorted by (src, dst): place sequentially.
    for (std::size_t i = 0; i < edges.size(); ++i) {
      targets[i] = edges[i].dst;
      weights[i] = edges[i].weight;
    }
  } else {
    std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) {
      const EdgeIndex slot = cursor[e.src]++;
      targets[slot] = e.dst;
      weights[slot] = e.weight;
    }
  }

  return CsrGraph(std::move(offsets), std::move(targets), std::move(weights));
}

CsrGraph reverse(const CsrGraph& graph) {
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  const std::size_t n = graph.num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = graph.neighbors(u);
    const auto ws = graph.weights_of(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      edges.push_back({nbrs[i], u, ws[i]});
    }
  }
  BuildOptions opts;
  opts.remove_self_loops = false;
  return build_csr(n, std::move(edges), opts);
}

}  // namespace sssp::graph
