#include "graph/road.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sssp::graph {
namespace {

constexpr double kGridUnitLength = 100.0;

Weight travel_time_weight(double dx, double dy, double spread,
                          util::Xoshiro256& rng) {
  const double length = std::sqrt(dx * dx + dy * dy) * kGridUnitLength;
  const double speed_factor = 1.0 + (spread - 1.0) * rng.next_double();
  const double w = std::max(1.0, std::round(length * speed_factor));
  return static_cast<Weight>(w);
}

}  // namespace

std::vector<Edge> generate_road_edges(const RoadOptions& options) {
  if (options.rows == 0 || options.cols == 0)
    throw std::invalid_argument("RoadOptions: rows/cols must be positive");
  if (options.street_density < 0.0 || options.street_density > 1.0)
    throw std::invalid_argument("RoadOptions: street_density out of [0,1]");
  if (options.weight_spread < 1.0)
    throw std::invalid_argument("RoadOptions: weight_spread must be >= 1");
  const std::uint64_t n =
      static_cast<std::uint64_t>(options.rows) * options.cols;
  if (n > (std::uint64_t{1} << 32))
    throw std::invalid_argument("RoadOptions: grid too large for 32-bit ids");

  util::Xoshiro256 rng(options.seed);
  std::vector<Edge> edges;
  // ~2 undirected grid segments per vertex at density 1 -> 4 directed.
  edges.reserve(static_cast<std::size_t>(static_cast<double>(n) *
                                         (4.0 * options.street_density + 0.1)));

  auto id = [&options](std::uint32_t r, std::uint32_t c) {
    return static_cast<VertexId>(r * options.cols + c);
  };
  auto add_bidirectional = [&edges](VertexId u, VertexId v, Weight w) {
    edges.push_back({u, v, w});
    edges.push_back({v, u, w});
  };

  // Street grid.
  for (std::uint32_t r = 0; r < options.rows; ++r) {
    for (std::uint32_t c = 0; c < options.cols; ++c) {
      if (c + 1 < options.cols && rng.next_double() < options.street_density) {
        add_bidirectional(id(r, c), id(r, c + 1),
                          travel_time_weight(1.0, 0.0, options.weight_spread, rng));
      }
      if (r + 1 < options.rows && rng.next_double() < options.street_density) {
        add_bidirectional(id(r, c), id(r + 1, c),
                          travel_time_weight(0.0, 1.0, options.weight_spread, rng));
      }
    }
  }

  // Highway ramps: longer-span shortcuts between nearby grid points.
  const auto num_ramps = static_cast<std::uint64_t>(
      options.ramps_per_1000_vertices * static_cast<double>(n) / 1000.0);
  for (std::uint64_t i = 0; i < num_ramps; ++i) {
    const auto r0 = static_cast<std::uint32_t>(rng.next_below(options.rows));
    const auto c0 = static_cast<std::uint32_t>(rng.next_below(options.cols));
    const std::uint32_t span = options.max_ramp_span ? options.max_ramp_span : 1;
    const auto dr = static_cast<std::int64_t>(rng.next_range(0, 2 * span)) -
                    static_cast<std::int64_t>(span);
    const auto dc = static_cast<std::int64_t>(rng.next_range(0, 2 * span)) -
                    static_cast<std::int64_t>(span);
    const std::int64_t r1 = static_cast<std::int64_t>(r0) + dr;
    const std::int64_t c1 = static_cast<std::int64_t>(c0) + dc;
    if (r1 < 0 || c1 < 0 || r1 >= static_cast<std::int64_t>(options.rows) ||
        c1 >= static_cast<std::int64_t>(options.cols))
      continue;
    if (dr == 0 && dc == 0) continue;
    // Ramps are fast roads: weight from length with minimal perturbation.
    util::Xoshiro256 ramp_rng(rng.next());
    const Weight w = travel_time_weight(static_cast<double>(dr),
                                        static_cast<double>(dc), 1.2, ramp_rng);
    add_bidirectional(id(r0, c0),
                      id(static_cast<std::uint32_t>(r1),
                         static_cast<std::uint32_t>(c1)),
                      w);
  }
  return edges;
}

CsrGraph generate_road(const RoadOptions& options) {
  auto edges = generate_road_edges(options);
  const std::size_t n =
      static_cast<std::size_t>(options.rows) * options.cols;
  BuildOptions build;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  build.dedupe_parallel_edges = true;
  return build_csr(n, std::move(edges), build);
}

}  // namespace sssp::graph
