#include "graph/degree_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace sssp::graph {

DegreeStats compute_degree_stats(const CsrGraph& graph) {
  DegreeStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  if (stats.num_vertices == 0) return stats;

  std::vector<std::size_t> degrees(stats.num_vertices);
  double sum = 0.0, sum_sq = 0.0;
  stats.max_degree = 0;
  stats.min_degree = graph.out_degree(0);
  for (std::size_t v = 0; v < stats.num_vertices; ++v) {
    const std::size_t d = graph.out_degree(static_cast<VertexId>(v));
    degrees[v] = d;
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
    stats.max_degree = std::max(stats.max_degree, d);
    stats.min_degree = std::min(stats.min_degree, d);
    if (d == 0) ++stats.isolated_vertices;
  }
  const double n = static_cast<double>(stats.num_vertices);
  stats.mean_degree = sum / n;
  stats.degree_stddev =
      std::sqrt(std::max(0.0, sum_sq / n - stats.mean_degree * stats.mean_degree));

  std::sort(degrees.begin(), degrees.end());
  auto at_quantile = [&degrees](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(degrees.size() - 1));
    return degrees[idx];
  };
  stats.median_degree = at_quantile(0.5);
  stats.p90_degree = at_quantile(0.9);
  stats.p99_degree = at_quantile(0.99);
  stats.p999_degree = at_quantile(0.999);
  return stats;
}

std::string to_string(const DegreeStats& s) {
  std::ostringstream os;
  os << "n=" << s.num_vertices << " m=" << s.num_edges
     << " deg[min/mean/median/max]=" << s.min_degree << "/" << s.mean_degree
     << "/" << s.median_degree << "/" << s.max_degree
     << " p99=" << s.p99_degree << " isolated=" << s.isolated_vertices;
  return os.str();
}

bool looks_scale_free(const DegreeStats& stats) {
  if (stats.mean_degree <= 0.0) return false;
  // Heavy tail: the 99.9th-percentile degree dwarfs the mean, and the
  // median sits at or below the mean.
  return static_cast<double>(stats.p999_degree) > 8.0 * stats.mean_degree &&
         static_cast<double>(stats.median_degree) <= stats.mean_degree + 1.0;
}

std::size_t count_reachable(const CsrGraph& graph, VertexId source) {
  const std::size_t n = graph.num_vertices();
  if (source >= n) return 0;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack{source};
  seen[source] = true;
  std::size_t count = 0;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    ++count;
    for (const VertexId v : graph.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return count;
}

VertexId max_degree_vertex(const CsrGraph& graph) {
  VertexId best = 0;
  std::size_t best_degree = 0;
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    const std::size_t d = graph.out_degree(static_cast<VertexId>(v));
    if (d > best_degree) {
      best_degree = d;
      best = static_cast<VertexId>(v);
    }
  }
  return best;
}

}  // namespace sssp::graph
