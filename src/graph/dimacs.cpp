#include "graph/dimacs.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/builder.hpp"
#include "graph/io_error.hpp"
#include "graph/types.hpp"

namespace sssp::graph {
namespace {

constexpr const char* kFormat = "DIMACS";

[[noreturn]] void fail(IoErrorClass error_class, std::size_t line,
                       const std::string& what) {
  throw GraphIoError(error_class, kFormat, what, line);
}

}  // namespace

CsrGraph load_dimacs(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t declared_vertices = 0;
  std::size_t declared_edges = 0;
  bool saw_problem = false;
  std::vector<Edge> edges;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Injected parse fault: corrupt the record tag so the structured
    // error path (not an abort) must handle it.
    if (SSSP_FAILPOINT("graph.dimacs.corrupt_line")) line[0] = '?';
    switch (line[0]) {
      case 'c':
        break;  // comment
      case 'p': {
        std::istringstream ls(line);
        char tag;
        std::string kind;
        if (!(ls >> tag >> kind >> declared_vertices >> declared_edges))
          fail(IoErrorClass::kParse, line_no, "malformed problem line");
        if (kind != "sp")
          fail(IoErrorClass::kParse, line_no, "expected problem kind 'sp'");
        saw_problem = true;
        edges.reserve(declared_edges);
        break;
      }
      case 'a': {
        if (!saw_problem)
          fail(IoErrorClass::kParse, line_no, "arc before problem line");
        std::istringstream ls(line);
        char tag;
        std::uint64_t src, dst, weight;
        std::string weight_token;
        if (!(ls >> tag >> src >> dst >> weight_token))
          fail(IoErrorClass::kParse, line_no, "malformed arc line");
        if (src == 0 || dst == 0 || src > declared_vertices ||
            dst > declared_vertices)
          fail(IoErrorClass::kParse, line_no, "vertex id out of range");
        // Parse the weight from its raw token: istream's unsigned
        // extraction accepts "-5" and wraps it modulo 2^64, turning a
        // negative-weight arc into a huge positive one instead of a
        // load error.
        if (weight_token[0] == '-')
          fail(IoErrorClass::kParse, line_no,
               "negative weight '" + weight_token + "'");
        std::istringstream ws(weight_token);
        if (!(ws >> weight) ||
            ws.peek() != std::istringstream::traits_type::eof())
          fail(IoErrorClass::kParse, line_no,
               "malformed weight '" + weight_token + "'");
        if (weight > 0xFFFFFFFFull)
          fail(IoErrorClass::kLimit, line_no, "weight exceeds 32 bits");
        edges.push_back({static_cast<VertexId>(src - 1),
                         static_cast<VertexId>(dst - 1),
                         static_cast<Weight>(weight)});
        break;
      }
      default:
        fail(IoErrorClass::kParse, line_no,
             std::string("unknown record type '") + line[0] + "'");
    }
  }
  if (!saw_problem)
    fail(IoErrorClass::kTruncated, line_no, "missing problem line");
  // A file that ends before delivering the declared arcs is truncated;
  // extra arcs mean a corrupt header or writer.
  if (edges.size() != declared_edges)
    fail(edges.size() < declared_edges ? IoErrorClass::kTruncated
                                       : IoErrorClass::kParse,
         line_no,
         "arc count " + std::to_string(edges.size()) +
             " does not match declared " + std::to_string(declared_edges));

  BuildOptions build;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  return build_csr(declared_vertices, std::move(edges), build);
}

CsrGraph load_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw GraphIoError(IoErrorClass::kOpen, kFormat, "cannot open: " + path);
  return load_dimacs(in);
}

void save_dimacs(const CsrGraph& graph, std::ostream& out,
                 const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << "\n";
  out << "p sp " << graph.num_vertices() << " " << graph.num_edges() << "\n";
  for (std::size_t u = 0; u < graph.num_vertices(); ++u) {
    const auto nbrs = graph.neighbors(static_cast<VertexId>(u));
    const auto ws = graph.weights_of(static_cast<VertexId>(u));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      out << "a " << (u + 1) << " " << (nbrs[i] + 1) << " " << ws[i] << "\n";
    }
  }
}

void save_dimacs_file(const CsrGraph& graph, const std::string& path,
                      const std::string& comment) {
  std::ofstream out(path);
  if (!out)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "cannot open for write: " + path);
  save_dimacs(graph, out, comment);
}

}  // namespace sssp::graph
