#include "graph/dimacs.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/types.hpp"

namespace sssp::graph {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("DIMACS parse error at line " +
                           std::to_string(line) + ": " + what);
}

}  // namespace

CsrGraph load_dimacs(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t declared_vertices = 0;
  std::size_t declared_edges = 0;
  bool saw_problem = false;
  std::vector<Edge> edges;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    switch (line[0]) {
      case 'c':
        break;  // comment
      case 'p': {
        std::istringstream ls(line);
        char tag;
        std::string kind;
        if (!(ls >> tag >> kind >> declared_vertices >> declared_edges))
          fail(line_no, "malformed problem line");
        if (kind != "sp") fail(line_no, "expected problem kind 'sp'");
        saw_problem = true;
        edges.reserve(declared_edges);
        break;
      }
      case 'a': {
        if (!saw_problem) fail(line_no, "arc before problem line");
        std::istringstream ls(line);
        char tag;
        std::uint64_t src, dst, weight;
        if (!(ls >> tag >> src >> dst >> weight))
          fail(line_no, "malformed arc line");
        if (src == 0 || dst == 0 || src > declared_vertices ||
            dst > declared_vertices)
          fail(line_no, "vertex id out of range");
        edges.push_back({static_cast<VertexId>(src - 1),
                         static_cast<VertexId>(dst - 1),
                         static_cast<Weight>(weight)});
        break;
      }
      default:
        fail(line_no, std::string("unknown record type '") + line[0] + "'");
    }
  }
  if (!saw_problem) throw std::runtime_error("DIMACS: missing problem line");

  BuildOptions build;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  return build_csr(declared_vertices, std::move(edges), build);
}

CsrGraph load_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open DIMACS file: " + path);
  return load_dimacs(in);
}

void save_dimacs(const CsrGraph& graph, std::ostream& out,
                 const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << "\n";
  out << "p sp " << graph.num_vertices() << " " << graph.num_edges() << "\n";
  for (std::size_t u = 0; u < graph.num_vertices(); ++u) {
    const auto nbrs = graph.neighbors(static_cast<VertexId>(u));
    const auto ws = graph.weights_of(static_cast<VertexId>(u));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      out << "a " << (u + 1) << " " << (nbrs[i] + 1) << " " << ws[i] << "\n";
    }
  }
}

void save_dimacs_file(const CsrGraph& graph, const std::string& path,
                      const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_dimacs(graph, out, comment);
}

}  // namespace sssp::graph
