#include "graph/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace sssp::graph {
namespace {

constexpr char kMagic[8] = {'T', 'S', 'S', 'S', 'P', 'G', 'R', '1'};

template <typename T>
void write_raw(std::ostream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
void read_raw(std::istream& in, T* data, std::size_t count,
              const char* what) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (static_cast<std::size_t>(in.gcount()) != count * sizeof(T))
    throw std::runtime_error(std::string("binary graph: truncated ") + what);
}

}  // namespace

void save_binary(const CsrGraph& graph, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t m = graph.num_edges();
  write_raw(out, &n, 1);
  write_raw(out, &m, 1);
  write_raw(out, graph.offsets().data(), graph.offsets().size());
  write_raw(out, graph.targets().data(), graph.targets().size());
  write_raw(out, graph.weights().data(), graph.weights().size());
  if (!out) throw std::runtime_error("binary graph: write failed");
}

void save_binary_file(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_binary(graph, out);
}

CsrGraph load_binary(std::istream& in) {
  char magic[sizeof(kMagic)];
  read_raw(in, magic, sizeof(kMagic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("binary graph: bad magic");

  std::uint64_t n = 0, m = 0;
  read_raw(in, &n, 1, "header");
  read_raw(in, &m, 1, "header");
  // Sanity bound: refuse absurd sizes before allocating.
  if (n > (std::uint64_t{1} << 33) || m > (std::uint64_t{1} << 36))
    throw std::runtime_error("binary graph: implausible header sizes");

  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> targets(m);
  std::vector<Weight> weights(m);
  read_raw(in, offsets.data(), offsets.size(), "offsets");
  read_raw(in, targets.data(), targets.size(), "targets");
  read_raw(in, weights.data(), weights.size(), "weights");

  CsrGraph graph(std::move(offsets), std::move(targets), std::move(weights));
  graph.validate();
  return graph;
}

CsrGraph load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open binary graph: " + path);
  return load_binary(in);
}

}  // namespace sssp::graph
