#include "graph/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/io_error.hpp"
#include "res/budget.hpp"

namespace sssp::graph {
namespace {

constexpr char kMagicV1[8] = {'T', 'S', 'S', 'S', 'P', 'G', 'R', '1'};
constexpr char kMagicV2[8] = {'T', 'S', 'S', 'S', 'P', 'G', 'R', '2'};
constexpr const char* kFormat = "binary graph";

[[noreturn]] void fail(IoErrorClass error_class, const std::string& what,
                       std::uint64_t byte_offset) {
  throw GraphIoError(error_class, kFormat, what, GraphIoError::kNoPosition,
                     byte_offset);
}

std::uint64_t checksum(const void* data, std::size_t size) noexcept {
  return fnv1a64(data, size);
}

// Tracks the stream position so every failure reports where the file
// went bad (tellg() is unreliable after a failed read).
struct Reader {
  std::istream& in;
  std::uint64_t offset = 0;

  template <typename T>
  void read(T* data, std::size_t count, const char* what) {
    const std::size_t bytes = count * sizeof(T);
    in.read(reinterpret_cast<char*>(data),
            static_cast<std::streamsize>(bytes));
    const auto got = static_cast<std::size_t>(in.gcount());
    // Injected short read: pretend the stream ended mid-section.
    if (got != bytes || SSSP_FAILPOINT("graph.binary.short_read"))
      fail(IoErrorClass::kTruncated,
           std::string("unexpected end of stream in ") + what,
           offset + got);
    // Injected single-bit corruption: must be caught by the section
    // checksum (v2) or structural validation (v1), never crash.
    if (bytes > 0 && SSSP_FAILPOINT("graph.binary.bit_flip"))
      reinterpret_cast<char*>(data)[bytes / 2] ^= 0x10;
    offset += bytes;
  }

  // Reads a section followed by its v2 checksum trailer and verifies.
  template <typename T>
  void read_checksummed(T* data, std::size_t count, const char* what) {
    const std::uint64_t section_start = offset;
    read(data, count, what);
    std::uint64_t expected = 0;
    read(&expected, 1, what);
    if (checksum(data, count * sizeof(T)) != expected)
      fail(IoErrorClass::kChecksum,
           std::string(what) + " section checksum mismatch", section_start);
  }
};

struct Writer {
  std::ostream& out;

  template <typename T>
  void write(const T* data, std::size_t count) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(count * sizeof(T)));
  }

  template <typename T>
  void write_checksummed(const T* data, std::size_t count) {
    write(data, count);
    const std::uint64_t sum = checksum(data, count * sizeof(T));
    write(&sum, 1);
  }
};

struct Header {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};

// Refuse absurd sizes before allocating, and preflight the three CSR
// arrays against the process memory budget so an oversize graph is a
// structured ResourceError (tool exit kExitResourceBudget) instead of
// an OOM kill mid-load. Check-only: the graph is a process-lifetime
// object, so nothing is held that would need releasing.
void check_header_bounds(const Header& header, std::uint64_t offset) {
  if (header.num_vertices > (std::uint64_t{1} << 33) ||
      header.num_edges > (std::uint64_t{1} << 36))
    fail(IoErrorClass::kLimit, "implausible header sizes", offset);
  const std::uint64_t bytes =
      (header.num_vertices + 1) * sizeof(EdgeIndex) +
      header.num_edges * (sizeof(VertexId) + sizeof(Weight));
  res::ResourceBudget::global().require_memory(bytes, "res.graph.alloc");
}

CsrGraph load_sections_v1(Reader& reader, const Header& header) {
  std::vector<EdgeIndex> offsets(header.num_vertices + 1);
  std::vector<VertexId> targets(header.num_edges);
  std::vector<Weight> weights(header.num_edges);
  reader.read(offsets.data(), offsets.size(), "offsets");
  reader.read(targets.data(), targets.size(), "targets");
  reader.read(weights.data(), weights.size(), "weights");
  return CsrGraph(std::move(offsets), std::move(targets), std::move(weights));
}

CsrGraph load_sections_v2(Reader& reader, const Header& header) {
  std::vector<EdgeIndex> offsets(header.num_vertices + 1);
  std::vector<VertexId> targets(header.num_edges);
  std::vector<Weight> weights(header.num_edges);
  reader.read_checksummed(offsets.data(), offsets.size(), "offsets");
  reader.read_checksummed(targets.data(), targets.size(), "targets");
  reader.read_checksummed(weights.data(), weights.size(), "weights");
  return CsrGraph(std::move(offsets), std::move(targets), std::move(weights));
}

// Structural CSR validation (non-monotone offsets, out-of-range edge
// targets, offset/edge-count mismatch) raises std::invalid_argument
// from the graph layer; a *loader* must report it as a structured
// parse error so tools exit with the corrupt-input code instead of the
// generic failure code.
template <typename Load>
CsrGraph checked_structure(Load&& load, std::uint64_t payload_offset) {
  try {
    CsrGraph graph = load();
    graph.validate();
    return graph;
  } catch (const std::invalid_argument& e) {
    fail(IoErrorClass::kParse,
         std::string("inconsistent CSR structure: ") + e.what(),
         payload_offset);
  }
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void save_binary(const CsrGraph& graph, std::ostream& out) {
  Writer writer{out};
  writer.write(kMagicV2, sizeof(kMagicV2));

  // Header body: covered by its own checksum so a bit flip in the sizes
  // is distinguished from truncation.
  struct HeaderBody {
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t num_vertices;
    std::uint64_t num_edges;
  } body{kBinaryFormatVersion, 0, graph.num_vertices(), graph.num_edges()};
  writer.write(&body, 1);
  const std::uint64_t header_sum = checksum(&body, sizeof(body));
  writer.write(&header_sum, 1);

  writer.write_checksummed(graph.offsets().data(), graph.offsets().size());
  writer.write_checksummed(graph.targets().data(), graph.targets().size());
  writer.write_checksummed(graph.weights().data(), graph.weights().size());
  if (!out) fail(IoErrorClass::kOpen, "write failed",
                 GraphIoError::kNoPosition);
}

void save_binary_file(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "cannot open for write: " + path);
  save_binary(graph, out);
}

CsrGraph load_binary(std::istream& in) {
  Reader reader{in};
  char magic[sizeof(kMagicV2)];
  reader.read(magic, sizeof(magic), "magic");

  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    // v1: plain header, no checksums (legacy caches).
    Header header;
    reader.read(&header.num_vertices, 1, "header");
    reader.read(&header.num_edges, 1, "header");
    check_header_bounds(header, 16);
    const std::uint64_t payload_offset = reader.offset;
    return checked_structure(
        [&] { return load_sections_v1(reader, header); }, payload_offset);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0)
    fail(IoErrorClass::kVersion, "bad magic (not a tunesssp graph cache)", 0);

  struct HeaderBody {
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t num_vertices;
    std::uint64_t num_edges;
  } body{};
  const std::uint64_t header_start = reader.offset;
  reader.read(&body, 1, "header");
  std::uint64_t expected_sum = 0;
  reader.read(&expected_sum, 1, "header");
  if (checksum(&body, sizeof(body)) != expected_sum)
    fail(IoErrorClass::kChecksum, "header checksum mismatch", header_start);
  if (body.version != kBinaryFormatVersion)
    fail(IoErrorClass::kVersion,
         "unsupported format version " + std::to_string(body.version),
         header_start);

  const Header header{body.num_vertices, body.num_edges};
  check_header_bounds(header, header_start);
  const std::uint64_t payload_offset = reader.offset;
  return checked_structure(
      [&] { return load_sections_v2(reader, header); }, payload_offset);
}

CsrGraph load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "cannot open: " + path);
  return load_binary(in);
}

}  // namespace sssp::graph
