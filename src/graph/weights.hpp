// Edge-weight assignment policies.
//
// The paper assigns Wiki uniform random integer weights in [1, 99]; road
// networks carry distance-derived weights. Generators call these after
// producing topology so weight policy is orthogonal to structure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace sssp::graph {

// Overwrites every weight with a uniform integer in [lo, hi] drawn from
// a deterministic stream seeded by `seed`.
void assign_uniform_weights(std::span<Edge> edges, Weight lo, Weight hi,
                            std::uint64_t seed);

// Same, operating on a bare weight array (e.g. from a pattern-only
// MatrixMarket file).
void assign_uniform_weights(std::span<Weight> weights, Weight lo, Weight hi,
                            std::uint64_t seed);

}  // namespace sssp::graph
