// R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos).
//
// Used to synthesize a "Wiki-like" scale-free hyperlink network: low
// diameter, heavy-tailed degree distribution, uniform random weights.
// With the default Graph500 parameters (a=0.57 b=0.19 c=0.19 d=0.05)
// the generator produces a pronounced degree tail matching the paper's
// Wiki input (max degree ~5k at 1.6M vertices / 19.7M edges).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sssp::graph {

struct RmatOptions {
  // Vertex count is 2^scale.
  unsigned scale = 16;
  // Total directed edges to generate (before self-loop removal).
  std::uint64_t num_edges = 1u << 20;
  // Quadrant probabilities; must be positive and sum to ~1.
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  // Randomly flip src/dst of each edge to reduce quadrant artifacts.
  bool scramble = true;
  Weight min_weight = 1;
  Weight max_weight = 99;
  std::uint64_t seed = 42;
};

// Generates the COO edge list (weights already assigned).
std::vector<Edge> generate_rmat_edges(const RmatOptions& options);

// Convenience: generate and build CSR (self-loops removed, neighbor
// lists sorted, parallel edges kept — like real hyperlink data).
CsrGraph generate_rmat(const RmatOptions& options);

}  // namespace sssp::graph
