// Compressed sparse row (CSR) graph — the storage format consumed by
// every SSSP algorithm and by the frontier pipeline.
//
// Layout mirrors Gunrock's: row offsets indexed by source vertex, and
// parallel target/weight arrays. Immutable after construction, so it is
// safe to share across threads without synchronization.
//
// Two storage modes behind one interface:
//   - owning: the graph holds the three arrays on the heap (every
//     loader and generator builds these);
//   - view: the graph borrows externally owned, externally immutable
//     storage — e.g. the mmap'd binary cache (mmap_cache.hpp), where N
//     server processes share one physical copy of the arrays. The
//     caller guarantees the storage outlives the view.
// Copying an owning graph deep-copies; copying a view copies the view.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace sssp::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  // Takes ownership of pre-built arrays. offsets.size() must equal
  // num_vertices + 1, offsets.back() must equal targets.size(), and
  // targets.size() must equal weights.size(). Throws std::invalid_argument
  // otherwise.
  CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets,
           std::vector<Weight> weights);

  // Non-owning view over externally owned storage (same structural
  // requirements and std::invalid_argument contract as the owning
  // constructor). The storage must outlive every copy of the view and
  // never change.
  static CsrGraph view(std::span<const EdgeIndex> offsets,
                       std::span<const VertexId> targets,
                       std::span<const Weight> weights);

  CsrGraph(const CsrGraph& other);
  CsrGraph& operator=(const CsrGraph& other);
  CsrGraph(CsrGraph&& other) noexcept;
  CsrGraph& operator=(CsrGraph&& other) noexcept;

  // True when this graph owns its arrays (false for mmap-backed views).
  bool owns_storage() const noexcept { return owns_; }

  std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const noexcept { return targets_.size(); }

  std::size_t out_degree(VertexId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Neighbor/weight views for vertex v; spans remain valid for the
  // lifetime of the graph.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v], out_degree(v)};
  }
  std::span<const Weight> weights_of(VertexId v) const {
    return {weights_.data() + offsets_[v], out_degree(v)};
  }

  EdgeIndex edge_begin(VertexId v) const { return offsets_[v]; }
  EdgeIndex edge_end(VertexId v) const { return offsets_[v + 1]; }
  VertexId edge_target(EdgeIndex e) const { return targets_[e]; }
  Weight edge_weight(EdgeIndex e) const { return weights_[e]; }

  std::span<const EdgeIndex> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> targets() const noexcept { return targets_; }
  std::span<const Weight> weights() const noexcept { return weights_; }

  // Mean weight over all edges (the far-queue partitioner seeds its first
  // boundary with this, per the paper Section 4.6). 0 for edgeless graphs.
  double mean_edge_weight() const noexcept;

  // Structural validation: offsets monotone, targets in range. Throws
  // std::invalid_argument describing the first violation.
  void validate() const;

  // Approximate heap footprint in bytes. 0 for views: the bytes belong
  // to the external storage (e.g. file-backed pages shared across
  // processes), not to this object.
  std::size_t memory_bytes() const noexcept;

 private:
  CsrGraph(std::span<const EdgeIndex> offsets, std::span<const VertexId> targets,
           std::span<const Weight> weights, bool check);

  // Points the access spans at the owned vectors.
  void rebind() noexcept;
  // Shared structural checks of the access spans.
  void check_shape() const;

  // Access path: every accessor reads these spans, which alias either
  // the owned vectors below or external storage.
  std::span<const EdgeIndex> offsets_;
  std::span<const VertexId> targets_;
  std::span<const Weight> weights_;
  bool owns_ = true;

  std::vector<EdgeIndex> offsets_store_;
  std::vector<VertexId> targets_store_;
  std::vector<Weight> weights_store_;
};

}  // namespace sssp::graph
