// Compressed sparse row (CSR) graph — the storage format consumed by
// every SSSP algorithm and by the frontier pipeline.
//
// Layout mirrors Gunrock's: row offsets indexed by source vertex, and
// parallel target/weight arrays. Immutable after construction, so it is
// safe to share across threads without synchronization.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace sssp::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  // Takes ownership of pre-built arrays. offsets.size() must equal
  // num_vertices + 1, offsets.back() must equal targets.size(), and
  // targets.size() must equal weights.size(). Throws std::invalid_argument
  // otherwise.
  CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets,
           std::vector<Weight> weights);

  std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const noexcept { return targets_.size(); }

  std::size_t out_degree(VertexId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Neighbor/weight views for vertex v; spans remain valid for the
  // lifetime of the graph.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v], out_degree(v)};
  }
  std::span<const Weight> weights_of(VertexId v) const {
    return {weights_.data() + offsets_[v], out_degree(v)};
  }

  EdgeIndex edge_begin(VertexId v) const { return offsets_[v]; }
  EdgeIndex edge_end(VertexId v) const { return offsets_[v + 1]; }
  VertexId edge_target(EdgeIndex e) const { return targets_[e]; }
  Weight edge_weight(EdgeIndex e) const { return weights_[e]; }

  std::span<const EdgeIndex> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> targets() const noexcept { return targets_; }
  std::span<const Weight> weights() const noexcept { return weights_; }

  // Mean weight over all edges (the far-queue partitioner seeds its first
  // boundary with this, per the paper Section 4.6). 0 for edgeless graphs.
  double mean_edge_weight() const noexcept;

  // Structural validation: offsets monotone, targets in range. Throws
  // std::invalid_argument describing the first violation.
  void validate() const;

  // Approximate heap footprint in bytes.
  std::size_t memory_bytes() const noexcept;

 private:
  std::vector<EdgeIndex> offsets_;
  std::vector<VertexId> targets_;
  std::vector<Weight> weights_;
};

}  // namespace sssp::graph
