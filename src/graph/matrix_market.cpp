#include "graph/matrix_market.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace sssp::graph {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CsrGraph load_matrix_market(std::istream& in,
                            const MatrixMarketOptions& options) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("MatrixMarket: empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    throw std::runtime_error("MatrixMarket: missing %%MatrixMarket banner");
  object = to_lower(object);
  format = to_lower(format);
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    throw std::runtime_error(
        "MatrixMarket: only 'matrix coordinate' supported");
  const bool pattern = field == "pattern";
  if (!pattern && field != "integer" && field != "real")
    throw std::runtime_error("MatrixMarket: unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    throw std::runtime_error("MatrixMarket: unsupported symmetry '" +
                             symmetry + "'");

  // Skip comments.
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::uint64_t rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries))
    throw std::runtime_error("MatrixMarket: malformed size line " +
                             std::to_string(line_no));
  const std::uint64_t n = std::max(rows, cols);

  std::vector<Edge> edges;
  edges.reserve(symmetric ? entries * 2 : entries);
  util::Xoshiro256 rng(options.weight_seed);

  for (std::uint64_t i = 0; i < entries; ++i) {
    if (!std::getline(in, line))
      throw std::runtime_error("MatrixMarket: truncated at entry " +
                               std::to_string(i));
    ++line_no;
    if (line.empty() || line[0] == '%') {
      --i;
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t r, c;
    if (!(ls >> r >> c))
      throw std::runtime_error("MatrixMarket: malformed entry at line " +
                               std::to_string(line_no));
    if (r == 0 || c == 0 || r > n || c > n)
      throw std::runtime_error("MatrixMarket: index out of range at line " +
                               std::to_string(line_no));
    Weight w;
    if (pattern) {
      w = static_cast<Weight>(rng.next_range(options.pattern_min_weight,
                                             options.pattern_max_weight));
    } else {
      double value = 0.0;
      if (!(ls >> value))
        throw std::runtime_error("MatrixMarket: missing value at line " +
                                 std::to_string(line_no));
      double rounded = std::round(std::abs(value));
      if (rounded < 1.0 && options.clamp_nonpositive_to_one) rounded = 1.0;
      w = static_cast<Weight>(std::min(
          rounded, static_cast<double>(std::numeric_limits<Weight>::max())));
    }
    const auto src = static_cast<VertexId>(r - 1);
    const auto dst = static_cast<VertexId>(c - 1);
    edges.push_back({src, dst, w});
    if (symmetric && src != dst) edges.push_back({dst, src, w});
  }

  BuildOptions build;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  return build_csr(static_cast<std::size_t>(n), std::move(edges), build);
}

CsrGraph load_matrix_market_file(const std::string& path,
                                 const MatrixMarketOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open MatrixMarket file: " + path);
  return load_matrix_market(in, options);
}

}  // namespace sssp::graph
