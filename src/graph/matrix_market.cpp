#include "graph/matrix_market.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/builder.hpp"
#include "graph/io_error.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace sssp::graph {
namespace {

constexpr const char* kFormat = "MatrixMarket";

[[noreturn]] void fail(IoErrorClass error_class, std::size_t line,
                       const std::string& what) {
  throw GraphIoError(error_class, kFormat, what, line);
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CsrGraph load_matrix_market(std::istream& in,
                            const MatrixMarketOptions& options) {
  std::string line;
  if (!std::getline(in, line))
    fail(IoErrorClass::kTruncated, 0, "empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    fail(IoErrorClass::kVersion, 1, "missing %%MatrixMarket banner");
  object = to_lower(object);
  format = to_lower(format);
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    fail(IoErrorClass::kParse, 1, "only 'matrix coordinate' supported");
  const bool pattern = field == "pattern";
  if (!pattern && field != "integer" && field != "real")
    fail(IoErrorClass::kParse, 1, "unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    fail(IoErrorClass::kParse, 1, "unsupported symmetry '" + symmetry + "'");

  // Skip comments.
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::uint64_t rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries))
    fail(IoErrorClass::kParse, line_no, "malformed size line");
  const std::uint64_t n = std::max(rows, cols);

  std::vector<Edge> edges;
  edges.reserve(symmetric ? entries * 2 : entries);
  util::Xoshiro256 rng(options.weight_seed);

  for (std::uint64_t i = 0; i < entries; ++i) {
    if (!std::getline(in, line))
      fail(IoErrorClass::kTruncated, line_no,
           "stream ended at entry " + std::to_string(i) + " of " +
               std::to_string(entries));
    ++line_no;
    if (line.empty() || line[0] == '%') {
      --i;
      continue;
    }
    // Injected parse fault: corrupt the entry so the structured error
    // path must catch it.
    if (SSSP_FAILPOINT("graph.matrix_market.corrupt_entry")) line = "x y z";
    std::istringstream ls(line);
    std::uint64_t r, c;
    if (!(ls >> r >> c))
      fail(IoErrorClass::kParse, line_no, "malformed entry");
    if (r == 0 || c == 0 || r > n || c > n)
      fail(IoErrorClass::kParse, line_no, "index out of range");
    Weight w;
    if (pattern) {
      w = static_cast<Weight>(rng.next_range(options.pattern_min_weight,
                                             options.pattern_max_weight));
    } else {
      double value = 0.0;
      if (!(ls >> value))
        fail(IoErrorClass::kParse, line_no, "missing value");
      if (!std::isfinite(value))
        fail(IoErrorClass::kParse, line_no, "non-finite value");
      double rounded = std::round(std::abs(value));
      if (rounded < 1.0 && options.clamp_nonpositive_to_one) rounded = 1.0;
      w = static_cast<Weight>(std::min(
          rounded, static_cast<double>(std::numeric_limits<Weight>::max())));
    }
    const auto src = static_cast<VertexId>(r - 1);
    const auto dst = static_cast<VertexId>(c - 1);
    edges.push_back({src, dst, w});
    if (symmetric && src != dst) edges.push_back({dst, src, w});
  }

  BuildOptions build;
  build.remove_self_loops = true;
  build.sort_neighbors = true;
  return build_csr(static_cast<std::size_t>(n), std::move(edges), build);
}

CsrGraph load_matrix_market_file(const std::string& path,
                                 const MatrixMarketOptions& options) {
  std::ifstream in(path);
  if (!in)
    throw GraphIoError(IoErrorClass::kOpen, kFormat, "cannot open: " + path);
  return load_matrix_market(in, options);
}

}  // namespace sssp::graph
