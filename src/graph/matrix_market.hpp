// MatrixMarket coordinate format reader — the format of the paper's Wiki
// input (wikipedia-20051105 from the UF/SuiteSparse collection).
//
// Supports: "matrix coordinate {pattern|integer|real} {general|symmetric}".
// Pattern matrices get weights from a supplied policy (the paper uses
// uniform integers in [1, 99] for Wiki).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sssp::graph {

struct MatrixMarketOptions {
  // Weights for pattern (unweighted) matrices, drawn uniformly.
  Weight pattern_min_weight = 1;
  Weight pattern_max_weight = 99;
  std::uint64_t weight_seed = 1;
  // Real-valued entries are rounded and clamped to [1, max(1, value)].
  bool clamp_nonpositive_to_one = true;
};

CsrGraph load_matrix_market(std::istream& in,
                            const MatrixMarketOptions& options = {});
CsrGraph load_matrix_market_file(const std::string& path,
                                 const MatrixMarketOptions& options = {});

}  // namespace sssp::graph
