// Connectivity utilities. SSSP experiments need sources inside a large
// component (an unlucky source on a fragmented R-MAT graph reaches a
// handful of vertices and measures nothing); these helpers label weak
// components and extract the largest one.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"

namespace sssp::graph {

struct ComponentLabeling {
  // Component id per vertex (ids are dense, 0-based, in discovery order).
  std::vector<std::uint32_t> label;
  // Vertex count per component id.
  std::vector<std::size_t> sizes;

  std::size_t num_components() const noexcept { return sizes.size(); }
  std::uint32_t largest_component() const;
};

// Weakly connected components (edge direction ignored). O(V + E) time,
// O(V + E) extra memory for the reversed adjacency.
ComponentLabeling weakly_connected_components(const CsrGraph& graph);

// Induced subgraph of the labeled component: vertices are renumbered
// densely (0..k-1, preserving relative order); returns the subgraph and
// the old->new vertex map (entries for other components are
// kInvalidVertex, from graph/types.hpp).
struct ExtractedComponent {
  CsrGraph graph;
  std::vector<VertexId> old_to_new;  // kInvalidVertex if not in component
  std::vector<VertexId> new_to_old;
};

ExtractedComponent extract_component(const CsrGraph& graph,
                                     const ComponentLabeling& labeling,
                                     std::uint32_t component);

// Convenience: extract the largest weak component.
ExtractedComponent largest_component(const CsrGraph& graph);

}  // namespace sssp::graph
