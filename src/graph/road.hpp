// Synthetic road-network generator — a "Cal-like" substitute for the
// DIMACS California graph (1.89M nodes, 4.63M edges: high diameter, low
// degree, near-planar).
//
// Construction: an rows x cols street grid where each intersection
// connects to its right/down neighbors with probability street_density
// (streets occasionally dead-end, like real road data), plus a sparse
// set of random "highway ramps" connecting nearby grid points with
// longer span. Weights model travel time: Euclidean length of the
// segment scaled by a per-edge speed perturbation. All edges are
// bidirectional. The result reproduces Cal's salient SSSP behaviour —
// a frontier that grows like a wavefront over thousands of iterations
// with low available parallelism per iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sssp::graph {

struct RoadOptions {
  std::uint32_t rows = 512;
  std::uint32_t cols = 512;
  // Probability that a grid segment exists (1.0 = full lattice).
  double street_density = 0.92;
  // Expected number of long-span ramp edges per 1000 vertices.
  double ramps_per_1000_vertices = 8.0;
  // Max Chebyshev span of a ramp, in grid cells.
  std::uint32_t max_ramp_span = 24;
  // Weight = round(length * speed_factor), speed_factor uniform in
  // [1, weight_spread]; grid unit length is 100.
  double weight_spread = 3.0;
  std::uint64_t seed = 7;
};

// Generates the COO edge list (undirected; both directions emitted).
std::vector<Edge> generate_road_edges(const RoadOptions& options);

// Generate and build CSR.
CsrGraph generate_road(const RoadOptions& options);

}  // namespace sssp::graph
