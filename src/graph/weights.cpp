#include "graph/weights.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace sssp::graph {

void assign_uniform_weights(std::span<Edge> edges, Weight lo, Weight hi,
                            std::uint64_t seed) {
  if (lo > hi) throw std::invalid_argument("assign_uniform_weights: lo > hi");
  util::Xoshiro256 rng(seed);
  for (Edge& e : edges)
    e.weight = static_cast<Weight>(rng.next_range(lo, hi));
}

void assign_uniform_weights(std::span<Weight> weights, Weight lo, Weight hi,
                            std::uint64_t seed) {
  if (lo > hi) throw std::invalid_argument("assign_uniform_weights: lo > hi");
  util::Xoshiro256 rng(seed);
  for (Weight& w : weights)
    w = static_cast<Weight>(rng.next_range(lo, hi));
}

}  // namespace sssp::graph
