// Shared read-only mmap backend for the v2 binary graph cache
// (binary_io.hpp, "TSSSPGR2").
//
// load_binary_file copies the three CSR arrays onto the heap — a
// per-process cost. MmapGraph instead maps the cache file with
// mmap(PROT_READ, MAP_SHARED), verifies every section checksum once
// against the mapped bytes, and exposes a zero-copy CsrGraph *view*
// straight into the mapping. Because the pages are file-backed and
// read-only, N processes (the crash-isolated serve worker fleet,
// docs/SERVING.md "Process model & crash isolation") share one physical
// copy of the graph through the page cache: worker RSS grows by the
// file pages once machine-wide, not once per worker.
//
// The section layout puts every array on its natural alignment (the
// header is 40 bytes, offsets are u64 at a multiple of 8, targets and
// weights are u32 at multiples of 4), so the view spans alias the
// mapping directly; the u64 checksum trailers are read via memcpy
// because an odd edge count leaves them 4-aligned only.
//
// Corruption surfaces exactly like the heap loader: a structured
// GraphIoError (kChecksum / kTruncated / kVersion / kLimit / kParse)
// with a byte offset, never a crash. Only v2 files are mappable — v1
// has no checksums to pin the bytes down, so callers fall back to the
// heap loader (is_mappable_cache distinguishes the two).
// Exhaustion hardening (docs/ROBUSTNESS.md): every read of mapped
// bytes — the open()-time verification and the background scrubber's
// re-checksum passes — runs under a scoped SIGBUS trampoline
// (sigbus_guard.hpp). A mapping yanked out from under us (file
// truncated, storage dying) therefore surfaces as GraphIoError
// (kTruncated) and the caller falls back to the heap loader instead of
// the process dying. The CacheScrubber periodically re-checksums the
// mapped sections and quarantines the cache file on mismatch so no
// later query ever reads rotted bytes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "graph/csr.hpp"

namespace sssp::graph {

// True when `path` exists and starts with the v2 magic — i.e. open()
// can map it (full checksum verification still happens at open()).
bool is_mappable_cache(const std::string& path);

class MmapGraph {
 public:
  MmapGraph() = default;
  ~MmapGraph();

  MmapGraph(const MmapGraph&) = delete;
  MmapGraph& operator=(const MmapGraph&) = delete;
  MmapGraph(MmapGraph&& other) noexcept;
  MmapGraph& operator=(MmapGraph&& other) noexcept;

  // Maps `path` (a TSSSPGR2 file) read-only and shared, verifies the
  // header and every section checksum once, and validates the CSR
  // structure. Throws GraphIoError on any failure.
  static MmapGraph open(const std::string& path);

  bool valid() const noexcept { return base_ != nullptr; }
  // The zero-copy view; valid for the lifetime of this MmapGraph.
  const CsrGraph& graph() const noexcept { return graph_; }
  // Bytes of the file mapping backing the view.
  std::size_t mapped_bytes() const noexcept { return size_; }
  // The file backing the mapping (what quarantine renames).
  const std::string& path() const noexcept { return path_; }

  // Re-verifies every section checksum against the mapped bytes, under
  // the SIGBUS guard. Returns true when the mapping is still sound;
  // false (with `reason` filled) on checksum mismatch or a SIGBUS from
  // the mapping. Hosts the `io.mmap.sigbus` failpoint, which raises a
  // real SIGBUS inside the guarded read to drill the trampoline.
  struct ScrubResult {
    bool ok = true;
    std::string reason;
  };
  ScrubResult scrub() const noexcept;

 private:
  void reset() noexcept;

  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
  CsrGraph graph_;
};

// Moves a failed cache aside (path -> path + ".quarantined",
// clobbering any previous quarantine) so the next open() regenerates
// it instead of re-mapping rot. Returns false if the rename failed.
bool quarantine_cache(const std::string& path) noexcept;

// Background scrubber: every `interval_ms`, re-checksums `mapped`'s
// sections and, on the first failure, quarantines the backing file and
// invokes `on_failure(reason)` once, then stops scrubbing. The caller
// owns `mapped` and must keep it alive until stop() returns; the
// mapping itself stays valid after a failed scrub (pages already
// resident are unaffected) — on_failure decides whether to drain.
class CacheScrubber {
 public:
  CacheScrubber(const MmapGraph& mapped, std::uint64_t interval_ms,
                std::function<void(const std::string&)> on_failure);
  ~CacheScrubber();
  CacheScrubber(const CacheScrubber&) = delete;
  CacheScrubber& operator=(const CacheScrubber&) = delete;

  void stop() noexcept;
  std::uint64_t passes() const noexcept {
    return passes_.load(std::memory_order_relaxed);
  }
  bool failed() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  void run(std::uint64_t interval_ms);

  const MmapGraph& mapped_;
  std::function<void(const std::string&)> on_failure_;
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<bool> failed_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace sssp::graph
