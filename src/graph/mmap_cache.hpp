// Shared read-only mmap backend for the v2 binary graph cache
// (binary_io.hpp, "TSSSPGR2").
//
// load_binary_file copies the three CSR arrays onto the heap — a
// per-process cost. MmapGraph instead maps the cache file with
// mmap(PROT_READ, MAP_SHARED), verifies every section checksum once
// against the mapped bytes, and exposes a zero-copy CsrGraph *view*
// straight into the mapping. Because the pages are file-backed and
// read-only, N processes (the crash-isolated serve worker fleet,
// docs/SERVING.md "Process model & crash isolation") share one physical
// copy of the graph through the page cache: worker RSS grows by the
// file pages once machine-wide, not once per worker.
//
// The section layout puts every array on its natural alignment (the
// header is 40 bytes, offsets are u64 at a multiple of 8, targets and
// weights are u32 at multiples of 4), so the view spans alias the
// mapping directly; the u64 checksum trailers are read via memcpy
// because an odd edge count leaves them 4-aligned only.
//
// Corruption surfaces exactly like the heap loader: a structured
// GraphIoError (kChecksum / kTruncated / kVersion / kLimit / kParse)
// with a byte offset, never a crash. Only v2 files are mappable — v1
// has no checksums to pin the bytes down, so callers fall back to the
// heap loader (is_mappable_cache distinguishes the two).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace sssp::graph {

// True when `path` exists and starts with the v2 magic — i.e. open()
// can map it (full checksum verification still happens at open()).
bool is_mappable_cache(const std::string& path);

class MmapGraph {
 public:
  MmapGraph() = default;
  ~MmapGraph();

  MmapGraph(const MmapGraph&) = delete;
  MmapGraph& operator=(const MmapGraph&) = delete;
  MmapGraph(MmapGraph&& other) noexcept;
  MmapGraph& operator=(MmapGraph&& other) noexcept;

  // Maps `path` (a TSSSPGR2 file) read-only and shared, verifies the
  // header and every section checksum once, and validates the CSR
  // structure. Throws GraphIoError on any failure.
  static MmapGraph open(const std::string& path);

  bool valid() const noexcept { return base_ != nullptr; }
  // The zero-copy view; valid for the lifetime of this MmapGraph.
  const CsrGraph& graph() const noexcept { return graph_; }
  // Bytes of the file mapping backing the view.
  std::size_t mapped_bytes() const noexcept { return size_; }

 private:
  void reset() noexcept;

  void* base_ = nullptr;
  std::size_t size_ = 0;
  CsrGraph graph_;
};

}  // namespace sssp::graph
