// Scoped SIGBUS trampoline for mmap'd graph reads (docs/ROBUSTNESS.md,
// "Resource budgets & exhaustion").
//
// A MAP_SHARED read-only mapping of the TSSSPGR2 cache can SIGBUS long
// after open(): the file gets truncated under us, or the backing
// storage starts returning I/O errors and the kernel cannot fault the
// page in. Without a handler that is instant process death — no
// destructor, no drain, no structured error. The guard converts it to
// control flow:
//
//   SigbusGuard guard;
//   if (SSSP_SIGBUS_TRY(guard)) {
//     ... touch mapped bytes ...
//   } else {
//     // a SIGBUS landed inside the block; the mapping is bad
//   }
//
// One process-wide SIGBUS handler is installed lazily on first guard
// construction; it siglongjmps to the innermost guard on the *current
// thread* and re-raises with the default disposition when no guard is
// active (a SIGBUS outside a guarded read is still a real crash, and
// must look like one to the supervisor). Guards nest per-thread.
#pragma once

#include <csetjmp>

namespace sssp::graph {

class SigbusGuard {
 public:
  SigbusGuard() noexcept;
  ~SigbusGuard() noexcept;
  SigbusGuard(const SigbusGuard&) = delete;
  SigbusGuard& operator=(const SigbusGuard&) = delete;

  // The jump target; use via SSSP_SIGBUS_TRY, never directly.
  sigjmp_buf& env() noexcept { return env_; }

  // True once a SIGBUS has bounced off this guard.
  bool tripped() const noexcept { return tripped_; }
  void mark_tripped() noexcept { tripped_ = true; }

 private:
  sigjmp_buf env_;
  SigbusGuard* previous_ = nullptr;  // per-thread nesting
  bool tripped_ = false;
};

// True when SIGBUS handling is active for this process (a guard has
// been constructed at least once). Test hook.
bool sigbus_handler_installed() noexcept;

}  // namespace sssp::graph

// sigsetjmp must run in the frame that wants to resume, so the entry
// point is a macro: true on the first pass, false when a SIGBUS inside
// the block jumped back out (savemask=1 restores the signal mask the
// handler ran with).
#define SSSP_SIGBUS_TRY(guard) (sigsetjmp((guard).env(), 1) == 0)
