// Degree statistics for dataset characterization (Table 1) and for the
// generators' self-checks (scale-free vs road-network shape).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace sssp::graph {

struct DegreeStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t max_degree = 0;
  std::size_t min_degree = 0;
  double mean_degree = 0.0;
  double degree_stddev = 0.0;
  std::size_t isolated_vertices = 0;  // out-degree 0
  // Degrees at selected quantiles {0.5, 0.9, 0.99, 0.999}.
  std::size_t median_degree = 0;
  std::size_t p90_degree = 0;
  std::size_t p99_degree = 0;
  std::size_t p999_degree = 0;
};

DegreeStats compute_degree_stats(const CsrGraph& graph);

// Human-readable one-line summary, e.g. for Table 1 rows.
std::string to_string(const DegreeStats& stats);

// Heuristic classification used by generator self-tests: a heavy degree
// tail (p999 >> mean) indicates a scale-free-like graph.
bool looks_scale_free(const DegreeStats& stats);

// Number of vertices reachable from `source` (BFS, ignores weights).
std::size_t count_reachable(const CsrGraph& graph, VertexId source);

// Picks the vertex of maximum out-degree — a robust "interesting" SSSP
// source for scale-free inputs where random vertices may be isolated.
VertexId max_degree_vertex(const CsrGraph& graph);

}  // namespace sssp::graph
