// Structured errors for the graph input layer (docs/ROBUSTNESS.md).
//
// Every loader failure carries a machine-readable class plus byte/line
// diagnostics, so tools can map error families to distinct exit codes
// and tests can assert on the failure mode instead of grepping message
// text. GraphIoError still derives from std::runtime_error: existing
// catch sites keep working unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sssp::graph {

enum class IoErrorClass : std::uint8_t {
  kOpen = 0,       // file missing / unreadable / unwritable
  kParse = 1,      // malformed record in a text format
  kTruncated = 2,  // stream ended before the declared content
  kChecksum = 3,   // binary section checksum mismatch (corruption)
  kVersion = 4,    // unknown magic / unsupported format version
  kLimit = 5,      // structurally valid but over a sanity bound
};

constexpr const char* to_string(IoErrorClass c) noexcept {
  switch (c) {
    case IoErrorClass::kOpen: return "open";
    case IoErrorClass::kParse: return "parse";
    case IoErrorClass::kTruncated: return "truncated";
    case IoErrorClass::kChecksum: return "checksum";
    case IoErrorClass::kVersion: return "version";
    case IoErrorClass::kLimit: return "limit";
  }
  return "unknown";
}

class GraphIoError : public std::runtime_error {
 public:
  // kNoPosition marks "line/byte not applicable" (e.g. open failures).
  static constexpr std::uint64_t kNoPosition = ~std::uint64_t{0};

  GraphIoError(IoErrorClass error_class, const std::string& format,
               const std::string& what, std::uint64_t line = kNoPosition,
               std::uint64_t byte_offset = kNoPosition)
      : std::runtime_error(compose(error_class, format, what, line,
                                   byte_offset)),
        class_(error_class),
        format_(format),
        line_(line),
        byte_offset_(byte_offset) {}

  IoErrorClass error_class() const noexcept { return class_; }
  const std::string& format() const noexcept { return format_; }
  bool has_line() const noexcept { return line_ != kNoPosition; }
  bool has_byte_offset() const noexcept {
    return byte_offset_ != kNoPosition;
  }
  std::uint64_t line() const noexcept { return line_; }
  std::uint64_t byte_offset() const noexcept { return byte_offset_; }

 private:
  static std::string compose(IoErrorClass error_class,
                             const std::string& format,
                             const std::string& what, std::uint64_t line,
                             std::uint64_t byte_offset) {
    std::string message = format;
    message += " [";
    message += to_string(error_class);
    message += "]";
    if (line != kNoPosition)
      message += " at line " + std::to_string(line);
    if (byte_offset != kNoPosition)
      message += " at byte " + std::to_string(byte_offset);
    message += ": ";
    message += what;
    return message;
  }

  IoErrorClass class_;
  std::string format_;
  std::uint64_t line_;
  std::uint64_t byte_offset_;
};

}  // namespace sssp::graph
