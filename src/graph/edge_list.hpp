// Plain text edge-list loader: one edge per line as
//   <src> <dst> [weight]
// with '#' or '%' comment lines — the least-common-denominator format of
// SNAP and countless ad-hoc datasets. Vertices are 0-based; missing
// weights draw uniformly from [default_min_weight, default_max_weight].
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sssp::graph {

struct EdgeListOptions {
  Weight default_min_weight = 1;
  Weight default_max_weight = 99;
  std::uint64_t weight_seed = 1;
  bool make_undirected = false;
};

CsrGraph load_edge_list(std::istream& in, const EdgeListOptions& options = {});
CsrGraph load_edge_list_file(const std::string& path,
                             const EdgeListOptions& options = {});

}  // namespace sssp::graph
