#include "graph/components.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"

namespace sssp::graph {

std::uint32_t ComponentLabeling::largest_component() const {
  if (sizes.empty())
    throw std::logic_error("ComponentLabeling: no components");
  return static_cast<std::uint32_t>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));
}

ComponentLabeling weakly_connected_components(const CsrGraph& graph) {
  const std::size_t n = graph.num_vertices();
  ComponentLabeling result;
  result.label.assign(n, 0xFFFFFFFFu);
  if (n == 0) return result;

  const CsrGraph reversed = reverse(graph);
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (result.label[start] != 0xFFFFFFFFu) continue;
    const auto component = static_cast<std::uint32_t>(result.sizes.size());
    result.sizes.push_back(0);
    stack.push_back(start);
    result.label[start] = component;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      ++result.sizes[component];
      for (const VertexId v : graph.neighbors(u)) {
        if (result.label[v] == 0xFFFFFFFFu) {
          result.label[v] = component;
          stack.push_back(v);
        }
      }
      for (const VertexId v : reversed.neighbors(u)) {
        if (result.label[v] == 0xFFFFFFFFu) {
          result.label[v] = component;
          stack.push_back(v);
        }
      }
    }
  }
  return result;
}

ExtractedComponent extract_component(const CsrGraph& graph,
                                     const ComponentLabeling& labeling,
                                     std::uint32_t component) {
  if (labeling.label.size() != graph.num_vertices())
    throw std::invalid_argument("extract_component: labeling size mismatch");
  if (component >= labeling.num_components())
    throw std::invalid_argument("extract_component: no such component");

  ExtractedComponent result;
  result.old_to_new.assign(graph.num_vertices(), kInvalidVertex);
  result.new_to_old.reserve(labeling.sizes[component]);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (labeling.label[v] == component) {
      result.old_to_new[v] = static_cast<VertexId>(result.new_to_old.size());
      result.new_to_old.push_back(v);
    }
  }

  std::vector<Edge> edges;
  for (const VertexId old_u : result.new_to_old) {
    const VertexId new_u = result.old_to_new[old_u];
    const auto neighbors = graph.neighbors(old_u);
    const auto weights = graph.weights_of(old_u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      // Every neighbor of a component vertex is in the same weak
      // component by construction.
      edges.push_back({new_u, result.old_to_new[neighbors[i]], weights[i]});
    }
  }
  BuildOptions build;
  build.remove_self_loops = false;  // preserve the original structure
  result.graph = build_csr(result.new_to_old.size(), std::move(edges), build);
  return result;
}

ExtractedComponent largest_component(const CsrGraph& graph) {
  const ComponentLabeling labeling = weakly_connected_components(graph);
  return extract_component(graph, labeling, labeling.largest_component());
}

}  // namespace sssp::graph
