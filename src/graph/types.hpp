// Fundamental graph value types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace sssp::graph {

// Vertex identifiers and edge weights are 32-bit: the paper's largest
// input (Wiki, 19.7M edges) fits comfortably, and halving the memory
// traffic matters for the cache behaviour of the frontier pipeline.
using VertexId = std::uint32_t;
using Weight = std::uint32_t;
using Distance = std::uint64_t;  // sums of 32-bit weights can exceed 2^32
using EdgeIndex = std::uint64_t;

inline constexpr Distance kInfiniteDistance =
    std::numeric_limits<Distance>::max();

// Sentinel vertex id ("no vertex"): used for absent parents in shortest
// path trees and for unmapped vertices in subgraph extraction.
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// One directed, weighted edge in COO form (generator/loader output).
struct Edge {
  VertexId src;
  VertexId dst;
  Weight weight;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace sssp::graph
