// The paper's two evaluation inputs (Table 1), reconstructed:
//
//   Cal  — DIMACS California road network: 1 890 815 nodes, 4 630 444
//          edges, high diameter, low degree. Substituted with the
//          road-network generator at matching node/edge counts.
//   Wiki — wikipedia-20051105 hyperlink graph: 1 634 989 nodes,
//          19 735 890 edges, max degree 4 970, weights U[1, 99].
//          Substituted with an R-MAT generator at matching counts.
//
// `scale` shrinks both dimensions proportionally (scale = 1.0 is the
// paper-sized graph; tests and quick benches use smaller scales). If a
// real DIMACS/.mtx file is available, callers can instead use the
// loaders in dimacs.hpp / matrix_market.hpp directly.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace sssp::graph {

enum class Dataset { kCal, kWiki };

struct DatasetOptions {
  // Linear scale on vertex count (edges scale along). 1.0 = paper size.
  double scale = 1.0;
  std::uint64_t seed = 42;
};

// Human-readable name ("Cal", "Wiki").
std::string dataset_name(Dataset dataset);

// Parses "cal"/"wiki" (case-insensitive); throws std::invalid_argument.
Dataset parse_dataset(const std::string& name);

// Builds the synthetic stand-in graph.
CsrGraph make_dataset(Dataset dataset, const DatasetOptions& options = {});

// A good SSSP source for the dataset: max-degree vertex for Wiki (well
// connected), center-of-grid vertex for Cal.
VertexId default_source(Dataset dataset, const CsrGraph& graph);

// Paper-reported Table 1 row (for EXPERIMENTS.md comparison).
struct PaperDatasetRow {
  std::string name;
  std::uint64_t nodes;
  std::uint64_t edges;
  std::uint64_t max_degree;  // 0 = not reported in the paper
};
PaperDatasetRow paper_table1_row(Dataset dataset);

}  // namespace sssp::graph
