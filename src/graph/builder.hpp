// COO edge list → CSR conversion with optional cleaning passes.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sssp::graph {

struct BuildOptions {
  // Add the reverse of every edge (same weight) before building.
  bool make_undirected = false;
  // Drop u->u edges (they never improve a shortest path).
  bool remove_self_loops = true;
  // Collapse parallel (u,v) edges, keeping the minimum weight.
  bool dedupe_parallel_edges = false;
  // Sort each adjacency list by target id (deterministic iteration and
  // slightly better locality in advance).
  bool sort_neighbors = true;
};

// Builds a CSR graph over vertices [0, num_vertices) from a COO edge
// list. Edges referencing vertices >= num_vertices throw
// std::invalid_argument. The input vector is consumed (sorted in place).
CsrGraph build_csr(std::size_t num_vertices, std::vector<Edge> edges,
                   const BuildOptions& options = {});

// Returns the reversed graph (every edge u->v becomes v->u).
CsrGraph reverse(const CsrGraph& graph);

}  // namespace sssp::graph
