#include "sim/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace sssp::sim {

void write_power_samples_csv(const PowerTrace& trace, double rate_hz,
                             std::ostream& out) {
  out << "time_s,watts\n";
  const auto samples = trace.sample(rate_hz);
  const double period = 1.0 / rate_hz;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out << (static_cast<double>(i) + 0.5) * period << ',' << samples[i]
        << '\n';
  }
}

void write_power_segments_csv(const PowerTrace& trace, std::ostream& out) {
  out << "start_s,duration_s,watts\n";
  double start = 0.0;
  for (const PowerSegment& segment : trace.segments()) {
    out << start << ',' << segment.seconds << ',' << segment.watts << '\n';
    start += segment.seconds;
  }
}

void write_run_report_csv(const RunReport& report, std::ostream& out) {
  out << "iteration,seconds,avg_power_w,core_util,mem_util,core_mhz,mem_mhz\n";
  for (std::size_t i = 0; i < report.iterations.size(); ++i) {
    const IterationReport& it = report.iterations[i];
    out << i << ',' << it.seconds << ',' << it.average_power_w << ','
        << it.core_utilization << ',' << it.mem_utilization << ','
        << it.frequencies.core_mhz << ',' << it.frequencies.mem_mhz << '\n';
  }
}

void write_power_samples_csv_file(const PowerTrace& trace, double rate_hz,
                                  const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_power_samples_csv(trace, rate_hz, out);
}

void write_run_report_csv_file(const RunReport& report,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_run_report_csv(report, out);
}

}  // namespace sssp::sim
