#include "sim/workload_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sssp::sim {
namespace {

constexpr const char* kHeader =
    "algorithm,dataset,x1,x2,x3,x4,edges_relaxed,rebalance_items,"
    "far_queue_size,controller_seconds";

}  // namespace

void save_workload_csv(const RunWorkload& workload, std::ostream& out) {
  out << kHeader << '\n';
  for (const IterationWork& it : workload.iterations) {
    out << workload.algorithm << ',' << workload.dataset << ',' << it.x1
        << ',' << it.x2 << ',' << it.x3 << ',' << it.x4 << ','
        << it.edges_relaxed << ',' << it.rebalance_items << ','
        << it.far_queue_size << ',' << it.controller_seconds << '\n';
  }
}

void save_workload_csv_file(const RunWorkload& workload,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_workload_csv(workload, out);
}

RunWorkload load_workload_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw std::runtime_error("workload csv: missing or wrong header");

  RunWorkload workload;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ls(line);
    std::string algorithm, dataset, cell;
    if (!std::getline(ls, algorithm, ',') || !std::getline(ls, dataset, ','))
      throw std::runtime_error("workload csv: malformed line " +
                               std::to_string(line_no));
    if (workload.iterations.empty()) {
      workload.algorithm = algorithm;
      workload.dataset = dataset;
    }
    IterationWork it;
    auto next_u64 = [&](std::uint64_t& slot) {
      if (!std::getline(ls, cell, ','))
        throw std::runtime_error("workload csv: short line " +
                                 std::to_string(line_no));
      try {
        slot = std::stoull(cell);
      } catch (const std::exception&) {
        throw std::runtime_error("workload csv: bad integer at line " +
                                 std::to_string(line_no));
      }
    };
    next_u64(it.x1);
    next_u64(it.x2);
    next_u64(it.x3);
    next_u64(it.x4);
    next_u64(it.edges_relaxed);
    next_u64(it.rebalance_items);
    next_u64(it.far_queue_size);
    if (!std::getline(ls, cell, ','))
      throw std::runtime_error("workload csv: short line " +
                               std::to_string(line_no));
    try {
      it.controller_seconds = std::stod(cell);
    } catch (const std::exception&) {
      throw std::runtime_error("workload csv: bad number at line " +
                               std::to_string(line_no));
    }
    workload.iterations.push_back(it);
  }
  return workload;
}

RunWorkload load_workload_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload csv: " + path);
  return load_workload_csv(in);
}

}  // namespace sssp::sim
