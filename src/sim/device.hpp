// Analytic device model of an embedded CPU+GPU board.
//
// Replaces the paper's physical Jetson TK1/TX1 testbeds. Parameters are
// taken from the boards' public specifications (core counts, frequency
// menus) and from typical embedded-GPU power envelopes; see DESIGN.md
// for the substitution argument. The model is deliberately simple — a
// roofline-style throughput model with per-kernel launch overhead and a
// static+dynamic power split — because those are exactly the mechanisms
// that produce the paper's observed delta/parallelism/power behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sssp::sim {

struct FrequencyPair {
  // MHz, matching the paper's "c/m" labels (e.g. 852/924).
  std::uint32_t core_mhz;
  std::uint32_t mem_mhz;

  friend bool operator==(const FrequencyPair&, const FrequencyPair&) = default;
  std::string label() const;  // "852/924"
};

struct DeviceSpec {
  std::string name;

  // --- compute ---
  std::uint32_t cuda_cores = 192;
  // Edge/vertex work items retired per core per cycle at full occupancy.
  // Graph kernels are far from peak FLOP throughput: an irregular
  // gather-scatter with an atomic-min costs a few hundred cycles per
  // edge. 1/256 per core-cycle puts TK1 peak advance throughput at
  // ~640 M edges/s, balanced against its memory roofline, so both DVFS
  // knobs matter (as they do in the paper's Figures 6-7).
  double items_per_core_cycle = 1.0 / 256.0;
  // Fixed host->device kernel dispatch latency per stage launch (s).
  // This is the term that makes tiny frontiers inefficient.
  double kernel_launch_seconds = 8e-6;

  // --- memory ---
  // Bytes/s at the maximum memory frequency; scales linearly with mem_mhz.
  double peak_mem_bandwidth_bytes = 14.0e9;
  // Average bytes moved per edge relaxation / per frontier vertex.
  double bytes_per_edge = 24.0;
  double bytes_per_vertex = 12.0;

  // --- frequency menus (sorted ascending) ---
  std::vector<std::uint32_t> core_freq_menu_mhz;
  std::vector<std::uint32_t> mem_freq_menu_mhz;
  std::uint32_t max_core_mhz() const { return core_freq_menu_mhz.back(); }
  std::uint32_t max_mem_mhz() const { return mem_freq_menu_mhz.back(); }
  std::uint32_t min_core_mhz() const { return core_freq_menu_mhz.front(); }
  std::uint32_t min_mem_mhz() const { return mem_freq_menu_mhz.front(); }

  // --- power (watts) ---
  // Board-level static power: CPU idle + rails + DRAM refresh. PowerMon
  // measures the whole board, so this is included in every report.
  double static_power_w = 3.2;
  // GPU dynamic power at 100% utilization, max core frequency/voltage.
  double gpu_dynamic_power_w = 7.0;
  // Memory-system dynamic power at 100% bandwidth utilization, max freq.
  double mem_dynamic_power_w = 2.6;
  // Idle leakage of powered-on-but-unused cores as a fraction of
  // gpu_dynamic_power_w (the "wasted idle power" of the paper's intro).
  double idle_core_fraction = 0.25;
  // Voltage scaling endpoints for the f·V^2 dynamic-power model: voltage
  // interpolates linearly from v_min (at the lowest menu frequency) to
  // v_max (at the highest).
  double core_v_min = 0.82, core_v_max = 1.05;

  // Validates menus (non-empty, sorted, positive) and physical
  // parameters; throws std::invalid_argument on violation.
  void validate() const;

  // True if the pair picks entries from both menus.
  bool supports(const FrequencyPair& pair) const;

  FrequencyPair max_frequencies() const { return {max_core_mhz(), max_mem_mhz()}; }
  FrequencyPair min_frequencies() const { return {min_core_mhz(), min_mem_mhz()}; }

  // --- factory presets ---
  // NVIDIA Jetson TK1: Kepler GK20A, 192 CUDA cores. Core menu from the
  // board's gbus DVFS table; memory EMC menu abbreviated to the levels
  // the paper sweeps.
  static DeviceSpec jetson_tk1();
  // NVIDIA Jetson TX1: Maxwell GM20B, 256 CUDA cores, faster LPDDR4.
  static DeviceSpec jetson_tx1();
};

}  // namespace sssp::sim
