#include "sim/run.hpp"

#include <stdexcept>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/power_model.hpp"

namespace sssp::sim {

namespace {

struct SimMetrics {
  obs::Counter& runs;
  obs::Counter& iterations;
  obs::Histogram& iteration_seconds;
  obs::Histogram& iteration_power_w;

  static SimMetrics& get() {
    static SimMetrics m{
        obs::MetricsRegistry::global().counter("sim.runs"),
        obs::MetricsRegistry::global().counter("sim.iterations"),
        obs::MetricsRegistry::global().histogram("sim.iteration_seconds"),
        obs::MetricsRegistry::global().histogram("sim.iteration_power_w")};
    return m;
  }
};

}  // namespace

RunReport simulate_run(const DeviceSpec& device, const DvfsPolicy& policy,
                       const RunWorkload& workload,
                       const SimulateOptions& options) {
  SSSP_TRACE_SPAN("simulate_run");
  device.validate();
  RunReport report;
  auto live_policy = policy.clone();
  FrequencyPair freqs = live_policy->initial(device);

  for (const IterationWork& work : workload.iterations) {
    IterationTiming iteration;

    // Stage 1 — advance: edge-mapped over the frontier's neighbor lists.
    const StageTiming advance =
        time_stage(device, freqs, work.edges_relaxed,
                   static_cast<double>(work.edges_relaxed) * device.bytes_per_edge);
    iteration.accumulate(advance);

    // Stage 2 — filter: vertex-mapped over the updated frontier.
    const StageTiming filter =
        time_stage(device, freqs, work.x2,
                   static_cast<double>(work.x2) * device.bytes_per_vertex);
    iteration.accumulate(filter);

    // Stage 3 — bisect-frontier over the filtered frontier.
    const StageTiming bisect =
        time_stage(device, freqs, work.x3,
                   static_cast<double>(work.x3) * device.bytes_per_vertex);
    iteration.accumulate(bisect);

    // Stage 4 — bisect-far-queue / rebalancer: scans the frontier plus
    // whatever far-queue partitions the rebalance touched.
    const std::uint64_t stage4_items = work.x4 + work.rebalance_items;
    const StageTiming rebalance =
        time_stage(device, freqs, stage4_items,
                   static_cast<double>(stage4_items) * device.bytes_per_vertex);
    iteration.accumulate(rebalance);

    iteration.finalize();

    // GPU-busy portion of the iteration.
    double gpu_power = board_power(device, freqs,
                                   iteration.core_utilization,
                                   iteration.mem_utilization);
    // Injected faults: a glitching power meter. A dropout reads 0 W, a
    // spike reads a large (but finite) transient — both are recorded
    // as-is; the trace integrals stay finite and downstream consumers
    // (EMA feedback, energy metrics) must tolerate them.
    if (SSSP_FAILPOINT("sim.power.dropout")) gpu_power = 0.0;
    if (SSSP_FAILPOINT("sim.power.spike")) gpu_power *= 100.0;
    report.trace.add_segment(iteration.seconds, gpu_power);

    // Host-side controller time: GPU idle, board at idle power.
    if (work.controller_seconds > 0.0) {
      report.trace.add_segment(work.controller_seconds,
                               idle_power(device, freqs));
      report.controller_seconds += work.controller_seconds;
    }

    if (options.keep_iteration_reports) {
      report.iterations.push_back({iteration.seconds, gpu_power,
                                   iteration.core_utilization,
                                   iteration.mem_utilization, freqs});
    }

    if (obs::metrics_enabled()) {
      SimMetrics& m = SimMetrics::get();
      m.iterations.add();
      m.iteration_seconds.record(iteration.seconds);
      m.iteration_power_w.record(gpu_power);
    }

    freqs = live_policy->next(device, iteration);
  }
  if (obs::metrics_enabled()) SimMetrics::get().runs.add();

  report.total_seconds = report.trace.duration_seconds();
  report.energy_joules = report.trace.energy_joules();
  report.average_power_w = report.trace.average_power_w();
  report.peak_power_w = report.trace.peak_power_w();
  return report;
}

RelativeMetrics relative_to(const RunReport& run, const RunReport& baseline) {
  if (run.total_seconds <= 0.0 || baseline.total_seconds <= 0.0)
    throw std::invalid_argument("relative_to: runs must have positive time");
  if (run.average_power_w <= 0.0 || baseline.average_power_w <= 0.0)
    throw std::invalid_argument("relative_to: runs must have positive power");
  RelativeMetrics m;
  m.speedup = baseline.total_seconds / run.total_seconds;
  m.relative_power = run.average_power_w / baseline.average_power_w;
  m.relative_energy = run.energy_joules / baseline.energy_joules;
  return m;
}

}  // namespace sssp::sim
