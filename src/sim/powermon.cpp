#include "sim/powermon.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sssp::sim {

void PowerTrace::add_segment(double seconds, double watts) {
  // A NaN/Inf segment would silently poison every integral the trace
  // exposes (energy, averages, peaks) — reject at the boundary instead.
  if (!std::isfinite(seconds) || !std::isfinite(watts))
    throw std::invalid_argument("PowerTrace: non-finite segment");
  if (seconds < 0.0)
    throw std::invalid_argument("PowerTrace: negative segment duration");
  if (seconds == 0.0) return;
  // Merge with the previous segment when power is unchanged, keeping the
  // trace compact over long runs.
  if (!segments_.empty() && segments_.back().watts == watts) {
    segments_.back().seconds += seconds;
  } else {
    segments_.push_back({seconds, watts});
  }
  total_seconds_ += seconds;
  total_joules_ += seconds * watts;
  peak_watts_ = std::max(peak_watts_, watts);
}

double PowerTrace::average_power_w() const noexcept {
  return total_seconds_ > 0.0 ? total_joules_ / total_seconds_ : 0.0;
}

double PowerTrace::peak_power_w() const noexcept { return peak_watts_; }

double PowerTrace::power_at(double t) const {
  if (t < 0.0) return 0.0;
  double elapsed = 0.0;
  for (const PowerSegment& seg : segments_) {
    if (t < elapsed + seg.seconds) return seg.watts;
    elapsed += seg.seconds;
  }
  return 0.0;
}

prof::EnergySeries PowerTrace::to_energy_series(double start_seconds) const {
  prof::EnergySeries series;
  double t = start_seconds;
  for (const PowerSegment& seg : segments_) {
    series.add(t, seg.watts);
    t += seg.seconds;
    series.add(t, seg.watts);
  }
  return series;
}

std::vector<double> PowerTrace::sample(double rate_hz) const {
  if (rate_hz <= 0.0)
    throw std::invalid_argument("PowerTrace: sample rate must be positive");
  std::vector<double> samples;
  const double period = 1.0 / rate_hz;
  const auto count = static_cast<std::size_t>(total_seconds_ / period);
  samples.reserve(count);
  // Walk segments and sample ticks in one pass (O(n + samples)).
  std::size_t seg = 0;
  double seg_start = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * period;
    while (seg < segments_.size() &&
           t >= seg_start + segments_[seg].seconds) {
      seg_start += segments_[seg].seconds;
      ++seg;
    }
    samples.push_back(seg < segments_.size() ? segments_[seg].watts : 0.0);
  }
  return samples;
}

}  // namespace sssp::sim
