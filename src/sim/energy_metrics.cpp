#include "sim/energy_metrics.hpp"

#include <stdexcept>

namespace sssp::sim {

EnergyMetrics compute_energy_metrics(double energy_joules, double seconds) {
  EnergyMetrics metrics;
  metrics.energy_joules = energy_joules;
  metrics.seconds = seconds;
  metrics.average_power_w = seconds > 0.0 ? energy_joules / seconds : 0.0;
  metrics.edp = energy_joules * seconds;
  metrics.ed2p = metrics.edp * seconds;
  return metrics;
}

EnergyMetrics compute_energy_metrics(const RunReport& report) {
  return compute_energy_metrics(report.energy_joules, report.total_seconds);
}

EnergyMetrics compute_energy_metrics(const prof::EnergySeries& series) {
  return compute_energy_metrics(series.energy_joules(),
                                series.duration_seconds());
}

RaceToHalt race_to_halt(const RunReport& report, double idle_power_w,
                        double deadline_seconds) {
  if (idle_power_w < 0.0)
    throw std::invalid_argument("race_to_halt: negative idle power");
  if (deadline_seconds < report.total_seconds)
    throw std::invalid_argument(
        "race_to_halt: deadline before the run finishes");
  if (report.total_seconds <= 0.0)
    throw std::invalid_argument("race_to_halt: empty run");

  RaceToHalt result;
  // Finish fast, then idle to the deadline.
  result.run_energy_j = report.energy_joules +
                        idle_power_w * (deadline_seconds - report.total_seconds);

  // Stretch the work to exactly the deadline: slowdown s >= 1 reduces
  // dynamic power by ~s^-3 (f*V^2 with voltage tracking frequency), but
  // static/idle power burns for the full deadline.
  const double s = deadline_seconds / report.total_seconds;
  const double dynamic_power =
      report.average_power_w > idle_power_w
          ? report.average_power_w - idle_power_w
          : 0.0;
  result.stretched_energy_j =
      idle_power_w * deadline_seconds +
      (dynamic_power / (s * s * s)) * deadline_seconds;

  result.race_wins = result.run_energy_j < result.stretched_energy_j;
  return result;
}

}  // namespace sssp::sim
