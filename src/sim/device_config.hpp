// Text-format device descriptions, so users can model boards beyond the
// built-in TK1/TX1 presets (the paper's "power-portable code is hard
// without self-tuning" point cuts both ways: evaluating portability
// needs more devices than two).
//
// Format: one "key value" pair per line, '#' comments. Frequency menus
// are comma-separated MHz lists. Unknown keys are errors (typo safety).
//
//   name            Jetson Nano (hypothetical)
//   cuda_cores      128
//   items_per_core_cycle  0.00390625
//   kernel_launch_seconds 7e-6
//   peak_mem_bandwidth_bytes 25.6e9
//   bytes_per_edge  24
//   bytes_per_vertex 12
//   core_freq_menu_mhz 76,153,230,307,384,460,537,614,691,768,845,921
//   mem_freq_menu_mhz  408,800,1600
//   static_power_w  2.0
//   gpu_dynamic_power_w 4.5
//   mem_dynamic_power_w 1.8
//   idle_core_fraction 0.10
//   core_v_min 0.80
//   core_v_max 1.05
#pragma once

#include <iosfwd>
#include <string>

#include "sim/device.hpp"

namespace sssp::sim {

// Parses a device description; starts from DeviceSpec defaults, so a
// config may specify only what differs. The result is validate()d.
// Throws std::runtime_error with a line number on malformed input.
DeviceSpec load_device_config(std::istream& in);
DeviceSpec load_device_config_file(const std::string& path);

// Writes a complete config that round-trips through load_device_config.
void save_device_config(const DeviceSpec& spec, std::ostream& out);

}  // namespace sssp::sim
