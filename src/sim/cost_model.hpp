// Roofline-style timing model for one pipeline stage on the device.
//
// A stage processes `items` independent work items (edges for advance,
// frontier vertices for the other stages) and moves `bytes` through the
// memory system. Its duration is a fixed kernel-launch latency plus the
// larger of the compute time and the memory time at the current
// frequency pair. The model also reports average core and memory
// utilization over the stage, which feed the power model and the
// default DVFS governor.
#pragma once

#include <cstdint>

#include "sim/device.hpp"

namespace sssp::sim {

struct StageTiming {
  double seconds = 0.0;       // launch + max(compute, memory)
  double core_utilization = 0.0;  // fraction of core-seconds busy, in [0,1]
  double mem_utilization = 0.0;   // fraction of bandwidth-seconds used
};

// Times a kernel with `items` work items and `bytes` of traffic at the
// given frequencies. items == 0 returns a zero timing (no launch).
StageTiming time_stage(const DeviceSpec& device, const FrequencyPair& freqs,
                       std::uint64_t items, double bytes);

// Aggregate of the stages in one iteration: total time plus
// time-weighted average utilizations (what a sampling governor sees).
struct IterationTiming {
  double seconds = 0.0;
  double core_utilization = 0.0;
  double mem_utilization = 0.0;

  void accumulate(const StageTiming& stage) noexcept;
  void finalize() noexcept;  // converts sums into time-weighted averages

 private:
  double weighted_core_ = 0.0;
  double weighted_mem_ = 0.0;
  bool finalized_ = false;

 public:
  double weighted_core_sum() const noexcept { return weighted_core_; }
  double weighted_mem_sum() const noexcept { return weighted_mem_; }
};

}  // namespace sssp::sim
