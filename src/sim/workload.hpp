// The interface between the SSSP algorithms and the device simulator.
//
// The paper's experimental apparatus runs Gunrock kernels on a physical
// Jetson board and measures wall-clock time and PowerMon power. Our
// substitution (see DESIGN.md) executes the same algorithm on the host
// and *records per-iteration work descriptors*; the simulator then
// replays them through an analytic device model to produce time, power,
// and energy. This file defines those descriptors. They are plain data
// so the algorithm layer does not depend on any device-model details.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sssp::sim {

// Work performed by one iteration of the near-far pipeline. Sizes use
// the paper's notation (Section 3.1):
//   x1 — input frontier size (vertices entering advance)
//   x2 — updated frontier size after advance (== the paper's measure of
//        "available parallelism"; equals the frontier's neighbor-list
//        cardinality)
//   x3 — frontier size after filter (duplicates removed)
//   x4 — frontier size after bisect-frontier (near side)
struct IterationWork {
  std::uint64_t x1 = 0;
  std::uint64_t x2 = 0;
  std::uint64_t x3 = 0;
  std::uint64_t x4 = 0;
  // Edges relaxed by advance (total out-degree of the input frontier).
  std::uint64_t edges_relaxed = 0;
  // Vertices scanned while rebalancing frontier <-> far queue this
  // iteration (0 when delta did not change and the near set was nonempty).
  std::uint64_t rebalance_items = 0;
  // Far-queue size after the iteration (drives bisect-far-queue cost).
  std::uint64_t far_queue_size = 0;
  // Host-side controller compute for this iteration, in seconds
  // (measured wall-clock; 0 for the baseline algorithm).
  double controller_seconds = 0.0;
};

// A whole run: the per-iteration trace plus identifying metadata.
struct RunWorkload {
  std::string algorithm;   // e.g. "near-far", "self-tuning"
  std::string dataset;     // e.g. "Cal", "Wiki"
  std::vector<IterationWork> iterations;

  std::uint64_t total_edges_relaxed() const noexcept {
    std::uint64_t total = 0;
    for (const auto& it : iterations) total += it.edges_relaxed;
    return total;
  }
};

}  // namespace sssp::sim
