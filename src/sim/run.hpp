// Replays a recorded SSSP workload through the device model under a
// DVFS policy, producing the quantities the paper reports: execution
// time, average/peak power, and energy.
#pragma once

#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "sim/powermon.hpp"
#include "sim/workload.hpp"

namespace sssp::sim {

struct IterationReport {
  double seconds = 0.0;
  double average_power_w = 0.0;
  double core_utilization = 0.0;
  double mem_utilization = 0.0;
  FrequencyPair frequencies{0, 0};
};

struct RunReport {
  double total_seconds = 0.0;
  double energy_joules = 0.0;
  double average_power_w = 0.0;
  double peak_power_w = 0.0;
  // Host-side controller time included in total_seconds.
  double controller_seconds = 0.0;
  PowerTrace trace;
  std::vector<IterationReport> iterations;
};

struct SimulateOptions {
  // Record per-iteration reports (large runs may disable to save memory).
  bool keep_iteration_reports = true;
};

// The policy is cloned internally, so the same policy object can be
// reused across runs.
RunReport simulate_run(const DeviceSpec& device, const DvfsPolicy& policy,
                       const RunWorkload& workload,
                       const SimulateOptions& options = {});

// Relative metrics against a baseline run (the paper's Figures 6/7 axes:
// speedup = baseline_time / time, relative power = power / baseline_power).
struct RelativeMetrics {
  double speedup = 1.0;
  double relative_power = 1.0;
  double relative_energy = 1.0;
};
RelativeMetrics relative_to(const RunReport& run, const RunReport& baseline);

}  // namespace sssp::sim
