#include "sim/dvfs.hpp"

#include <stdexcept>

namespace sssp::sim {

FrequencyPair PinnedDvfs::initial(const DeviceSpec& device) {
  if (!device.supports(freqs_))
    throw std::invalid_argument("PinnedDvfs: " + freqs_.label() +
                                " not in " + device.name + " menus");
  return freqs_;
}

FrequencyPair PinnedDvfs::next(const DeviceSpec& /*device*/,
                               const IterationTiming& /*last_iteration*/) {
  return freqs_;
}

FrequencyPair DefaultGovernor::initial(const DeviceSpec& device) {
  if (!initialized_) {
    initialized_ = true;
    core_index_ = tuning_.start_mid_menu ? device.core_freq_menu_mhz.size() / 2
                                         : device.core_freq_menu_mhz.size() - 1;
    mem_index_ = tuning_.start_mid_menu ? device.mem_freq_menu_mhz.size() / 2
                                        : device.mem_freq_menu_mhz.size() - 1;
  }
  return {device.core_freq_menu_mhz[core_index_],
          device.mem_freq_menu_mhz[mem_index_]};
}

FrequencyPair DefaultGovernor::next(const DeviceSpec& device,
                                    const IterationTiming& last_iteration) {
  if (!initialized_) return initial(device);

  const double w = 1.0 / tuning_.ema_tau;
  core_util_ema_ =
      (1.0 - w) * core_util_ema_ + w * last_iteration.core_utilization;
  mem_util_ema_ =
      (1.0 - w) * mem_util_ema_ + w * last_iteration.mem_utilization;

  auto step = [](std::size_t index, std::size_t menu_size, double util_ema,
                 double raw_util, const Tuning& tuning) -> std::size_t {
    // Jump up immediately on a saturated iteration (ondemand's burst
    // response), step up on sustained load, drift down when idle.
    if (raw_util > 0.95) return menu_size - 1;
    if (util_ema > tuning.up_threshold && index + 1 < menu_size)
      return index + 1;
    if (util_ema < tuning.down_threshold && index > 0) return index - 1;
    return index;
  };

  core_index_ = step(core_index_, device.core_freq_menu_mhz.size(),
                     core_util_ema_, last_iteration.core_utilization, tuning_);
  mem_index_ = step(mem_index_, device.mem_freq_menu_mhz.size(), mem_util_ema_,
                    last_iteration.mem_utilization, tuning_);
  return {device.core_freq_menu_mhz[core_index_],
          device.mem_freq_menu_mhz[mem_index_]};
}

}  // namespace sssp::sim
