// CSV export of simulator outputs, for offline plotting: the PowerMon
// power trace (as the 1 kHz sample stream or as exact segments) and the
// per-iteration run report.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/powermon.hpp"
#include "sim/run.hpp"

namespace sssp::sim {

// "time_s,watts" rows; one row per sample at `rate_hz` (PowerMon-style).
void write_power_samples_csv(const PowerTrace& trace, double rate_hz,
                             std::ostream& out);

// "start_s,duration_s,watts" rows; exact piecewise-constant segments.
void write_power_segments_csv(const PowerTrace& trace, std::ostream& out);

// "iteration,seconds,avg_power_w,core_util,mem_util,core_mhz,mem_mhz"
// rows from a RunReport recorded with keep_iteration_reports.
void write_run_report_csv(const RunReport& report, std::ostream& out);

// File variants; throw std::runtime_error when the file cannot be
// opened.
void write_power_samples_csv_file(const PowerTrace& trace, double rate_hz,
                                  const std::string& path);
void write_run_report_csv_file(const RunReport& report,
                               const std::string& path);

}  // namespace sssp::sim
