#include "sim/power_model.hpp"

#include <algorithm>

namespace sssp::sim {

double core_voltage(const DeviceSpec& device, std::uint32_t core_mhz) {
  const double f_min = static_cast<double>(device.min_core_mhz());
  const double f_max = static_cast<double>(device.max_core_mhz());
  const double f = std::clamp(static_cast<double>(core_mhz), f_min, f_max);
  if (f_max == f_min) return device.core_v_max;
  const double t = (f - f_min) / (f_max - f_min);
  return device.core_v_min + t * (device.core_v_max - device.core_v_min);
}

double board_power(const DeviceSpec& device, const FrequencyPair& freqs,
                   double core_utilization, double mem_utilization) {
  const double u = std::clamp(core_utilization, 0.0, 1.0);
  const double m = std::clamp(mem_utilization, 0.0, 1.0);

  const double v = core_voltage(device, freqs.core_mhz);
  const double v_ratio = v / device.core_v_max;
  const double f_ratio = static_cast<double>(freqs.core_mhz) /
                         static_cast<double>(device.max_core_mhz());

  // Active cores: dynamic switching power ~ u * f * V^2.
  const double active = u * f_ratio * v_ratio * v_ratio;
  // Idle cores: leakage ~ V^2 only (no switching), scaled by the
  // configured idle fraction.
  const double idle = device.idle_core_fraction * (1.0 - u) * v_ratio * v_ratio;
  const double gpu_power = device.gpu_dynamic_power_w * (active + idle);

  // Memory: I/O power scales with achieved bandwidth; a small
  // frequency-dependent floor models clocking the interface itself.
  const double mem_f_ratio = static_cast<double>(freqs.mem_mhz) /
                             static_cast<double>(device.max_mem_mhz());
  const double mem_power =
      device.mem_dynamic_power_w * mem_f_ratio * (0.15 + 0.85 * m);

  return device.static_power_w + gpu_power + mem_power;
}

double idle_power(const DeviceSpec& device, const FrequencyPair& freqs) {
  return board_power(device, freqs, 0.0, 0.0);
}

}  // namespace sssp::sim
