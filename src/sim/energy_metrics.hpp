// Derived energy-efficiency metrics over run reports: energy-delay
// products and the race-to-halt comparison ([3]'s framing of "how much
// time and energy does my algorithm cost?").
#pragma once

#include "prof/energy_series.hpp"
#include "sim/device.hpp"
#include "sim/run.hpp"

namespace sssp::sim {

struct EnergyMetrics {
  double energy_joules = 0.0;
  double seconds = 0.0;
  double edp = 0.0;    // energy * delay (J*s)
  double ed2p = 0.0;   // energy * delay^2 (J*s^2)
  double average_power_w = 0.0;
};

// All overloads share one derivation (joules + seconds → EDP/ED²P/avg
// watts); only the energy source differs.
EnergyMetrics compute_energy_metrics(double energy_joules, double seconds);
// From a simulated device replay.
EnergyMetrics compute_energy_metrics(const RunReport& report);
// From a sampled power timeline — the shared prof::EnergySeries type,
// whether it came from the RAPL hardware reader (prof::Profiler), the
// model fallback, or PowerTrace::to_energy_series().
EnergyMetrics compute_energy_metrics(const prof::EnergySeries& series);

// Race-to-halt analysis: energy of the measured run versus an idealized
// alternative that does the same busy work at the same power but then
// idles at `idle_power_w` until `deadline_seconds`. A run "wins the
// race" when finishing fast and idling is cheaper than stretching the
// work out — the rationale for the paper's performance-first points.
struct RaceToHalt {
  double run_energy_j = 0.0;        // energy to the deadline, run + idle
  double stretched_energy_j = 0.0;  // hypothetical: work stretched to the
                                    // deadline at proportionally lower
                                    // dynamic power (frequency-scaled)
  bool race_wins = false;
};

// deadline_seconds must be >= report.total_seconds. The stretched
// alternative scales the dynamic (above-idle) power by the cube of the
// slowdown's inverse (f*V^2 with V linear in f), the standard DVFS
// energy model.
RaceToHalt race_to_halt(const RunReport& report, double idle_power_w,
                        double deadline_seconds);

}  // namespace sssp::sim
