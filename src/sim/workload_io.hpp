// Workload (de)serialization: record an algorithm's per-iteration trace
// once, replay it through any device/DVFS combination later (or on
// another machine) without re-running the algorithm. CSV format, one
// iteration per row, self-describing header.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/workload.hpp"

namespace sssp::sim {

void save_workload_csv(const RunWorkload& workload, std::ostream& out);
void save_workload_csv_file(const RunWorkload& workload,
                            const std::string& path);

// Throws std::runtime_error on a malformed header or row.
RunWorkload load_workload_csv(std::istream& in);
RunWorkload load_workload_csv_file(const std::string& path);

}  // namespace sssp::sim
