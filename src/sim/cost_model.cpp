#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace sssp::sim {

StageTiming time_stage(const DeviceSpec& device, const FrequencyPair& freqs,
                       std::uint64_t items, double bytes) {
  StageTiming timing;
  if (items == 0) return timing;

  const double cores = static_cast<double>(device.cuda_cores);
  const double n = static_cast<double>(items);

  // Compute: each item occupies a core for 1/items_per_core_cycle cycles;
  // up to `cores` items run concurrently, so the kernel needs
  // ceil(n / cores) waves.
  const double cycles_per_item = 1.0 / device.items_per_core_cycle;
  const double waves = std::ceil(n / cores);
  const double core_hz = static_cast<double>(freqs.core_mhz) * 1e6;
  const double compute_seconds = waves * cycles_per_item / core_hz;

  // Memory: bandwidth scales linearly with memory frequency.
  const double bandwidth = device.peak_mem_bandwidth_bytes *
                           static_cast<double>(freqs.mem_mhz) /
                           static_cast<double>(device.max_mem_mhz());
  const double mem_seconds = bytes / bandwidth;

  const double busy_seconds = std::max(compute_seconds, mem_seconds);
  timing.seconds = device.kernel_launch_seconds + busy_seconds;

  // Core utilization: fraction of core-seconds actually occupied. The
  // last (or only) wave may be partially filled, and launch latency and
  // memory stalls leave cores idle.
  const double occupied_core_seconds = n * cycles_per_item / core_hz;
  timing.core_utilization =
      std::clamp(occupied_core_seconds / (cores * timing.seconds), 0.0, 1.0);

  // Memory utilization: fraction of available bandwidth-time consumed.
  timing.mem_utilization =
      std::clamp(mem_seconds / timing.seconds, 0.0, 1.0);
  return timing;
}

void IterationTiming::accumulate(const StageTiming& stage) noexcept {
  seconds += stage.seconds;
  weighted_core_ += stage.core_utilization * stage.seconds;
  weighted_mem_ += stage.mem_utilization * stage.seconds;
}

void IterationTiming::finalize() noexcept {
  if (finalized_) return;
  finalized_ = true;
  if (seconds > 0.0) {
    core_utilization = weighted_core_ / seconds;
    mem_utilization = weighted_mem_ / seconds;
  }
}

}  // namespace sssp::sim
