// PowerMon emulation: a piecewise-constant board-power trace with
// sampling and integration.
//
// The physical PowerMon device [29] samples DC current at up to 1 kHz
// and streams it to a host. The simulator produces exact piecewise-
// constant power over time; sample() reproduces what the 1 kHz stream
// would have reported, and energy()/average_power() integrate the exact
// trace (no sampling error).
#pragma once

#include <cstddef>
#include <vector>

#include "prof/energy_series.hpp"

namespace sssp::sim {

struct PowerSegment {
  double seconds;  // duration of the segment (>= 0)
  double watts;    // constant power during the segment
};

class PowerTrace {
 public:
  // Appends a segment; zero-duration segments are dropped. Negative
  // durations and non-finite (NaN/Inf) seconds or watts throw
  // std::invalid_argument.
  void add_segment(double seconds, double watts);

  double duration_seconds() const noexcept { return total_seconds_; }
  double energy_joules() const noexcept { return total_joules_; }
  // Time-weighted mean power; 0 for an empty trace.
  double average_power_w() const noexcept;
  double peak_power_w() const noexcept;

  // Instantaneous power at time t (seconds from trace start). Returns 0
  // outside [0, duration).
  double power_at(double t) const;

  // Emulates a fixed-rate sampler (e.g. PowerMon's 1 kHz): returns one
  // sample per 1/rate_hz seconds, sampling at the midpoint of each tick.
  std::vector<double> sample(double rate_hz) const;

  std::size_t num_segments() const noexcept { return segments_.size(); }
  const std::vector<PowerSegment>& segments() const noexcept {
    return segments_;
  }

  // Bridge to the shared energy-integration path (prof::EnergySeries,
  // the same type the RAPL hardware reader fills): each constant
  // segment becomes a bracket of equal-watts samples, so the series'
  // trapezoidal integral equals this trace's exact energy_joules().
  prof::EnergySeries to_energy_series(double start_seconds = 0.0) const;

 private:
  std::vector<PowerSegment> segments_;
  double total_seconds_ = 0.0;
  double total_joules_ = 0.0;
  double peak_watts_ = 0.0;
};

}  // namespace sssp::sim
