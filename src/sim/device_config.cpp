#include "sim/device_config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sssp::sim {
namespace {

std::vector<std::uint32_t> parse_menu(const std::string& text,
                                      std::size_t line_no) {
  std::vector<std::uint32_t> menu;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      std::size_t pos = 0;
      const unsigned long v = std::stoul(item, &pos);
      if (pos != item.size()) throw std::invalid_argument(item);
      menu.push_back(static_cast<std::uint32_t>(v));
    } catch (const std::exception&) {
      throw std::runtime_error("device config line " +
                               std::to_string(line_no) +
                               ": bad frequency '" + item + "'");
    }
  }
  if (menu.empty())
    throw std::runtime_error("device config line " + std::to_string(line_no) +
                             ": empty frequency menu");
  return menu;
}

double parse_number(const std::string& text, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("device config line " + std::to_string(line_no) +
                             ": bad number '" + text + "'");
  }
}

}  // namespace

DeviceSpec load_device_config(std::istream& in) {
  DeviceSpec spec;  // defaults; config overrides
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    std::string value;
    std::getline(ls, value);
    // Trim leading whitespace of the value.
    const auto first = value.find_first_not_of(" \t");
    value = first == std::string::npos ? "" : value.substr(first);
    const auto last = value.find_last_not_of(" \t\r");
    if (last != std::string::npos) value.resize(last + 1);
    if (value.empty())
      throw std::runtime_error("device config line " +
                               std::to_string(line_no) + ": missing value");

    if (key == "name") {
      spec.name = value;
    } else if (key == "cuda_cores") {
      spec.cuda_cores =
          static_cast<std::uint32_t>(parse_number(value, line_no));
    } else if (key == "items_per_core_cycle") {
      spec.items_per_core_cycle = parse_number(value, line_no);
    } else if (key == "kernel_launch_seconds") {
      spec.kernel_launch_seconds = parse_number(value, line_no);
    } else if (key == "peak_mem_bandwidth_bytes") {
      spec.peak_mem_bandwidth_bytes = parse_number(value, line_no);
    } else if (key == "bytes_per_edge") {
      spec.bytes_per_edge = parse_number(value, line_no);
    } else if (key == "bytes_per_vertex") {
      spec.bytes_per_vertex = parse_number(value, line_no);
    } else if (key == "core_freq_menu_mhz") {
      spec.core_freq_menu_mhz = parse_menu(value, line_no);
    } else if (key == "mem_freq_menu_mhz") {
      spec.mem_freq_menu_mhz = parse_menu(value, line_no);
    } else if (key == "static_power_w") {
      spec.static_power_w = parse_number(value, line_no);
    } else if (key == "gpu_dynamic_power_w") {
      spec.gpu_dynamic_power_w = parse_number(value, line_no);
    } else if (key == "mem_dynamic_power_w") {
      spec.mem_dynamic_power_w = parse_number(value, line_no);
    } else if (key == "idle_core_fraction") {
      spec.idle_core_fraction = parse_number(value, line_no);
    } else if (key == "core_v_min") {
      spec.core_v_min = parse_number(value, line_no);
    } else if (key == "core_v_max") {
      spec.core_v_max = parse_number(value, line_no);
    } else {
      throw std::runtime_error("device config line " +
                               std::to_string(line_no) + ": unknown key '" +
                               key + "'");
    }
  }
  if (spec.core_freq_menu_mhz.empty() || spec.mem_freq_menu_mhz.empty())
    throw std::runtime_error(
        "device config: core_freq_menu_mhz and mem_freq_menu_mhz are "
        "required");
  spec.validate();
  return spec;
}

DeviceSpec load_device_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open device config: " + path);
  return load_device_config(in);
}

void save_device_config(const DeviceSpec& spec, std::ostream& out) {
  out << "name " << spec.name << "\n";
  out << "cuda_cores " << spec.cuda_cores << "\n";
  out << "items_per_core_cycle " << spec.items_per_core_cycle << "\n";
  out << "kernel_launch_seconds " << spec.kernel_launch_seconds << "\n";
  out << "peak_mem_bandwidth_bytes " << spec.peak_mem_bandwidth_bytes << "\n";
  out << "bytes_per_edge " << spec.bytes_per_edge << "\n";
  out << "bytes_per_vertex " << spec.bytes_per_vertex << "\n";
  auto emit_menu = [&out](const char* key,
                          const std::vector<std::uint32_t>& menu) {
    out << key << " ";
    for (std::size_t i = 0; i < menu.size(); ++i) {
      if (i) out << ',';
      out << menu[i];
    }
    out << "\n";
  };
  emit_menu("core_freq_menu_mhz", spec.core_freq_menu_mhz);
  emit_menu("mem_freq_menu_mhz", spec.mem_freq_menu_mhz);
  out << "static_power_w " << spec.static_power_w << "\n";
  out << "gpu_dynamic_power_w " << spec.gpu_dynamic_power_w << "\n";
  out << "mem_dynamic_power_w " << spec.mem_dynamic_power_w << "\n";
  out << "idle_core_fraction " << spec.idle_core_fraction << "\n";
  out << "core_v_min " << spec.core_v_min << "\n";
  out << "core_v_max " << spec.core_v_max << "\n";
}

}  // namespace sssp::sim
