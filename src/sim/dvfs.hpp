// DVFS policies: a pinned core/memory pair (the paper's explicit "c/m"
// settings) and a utilization-driven default governor emulating the
// board's own automatic policy (Linux ondemand-style).
#pragma once

#include <memory>
#include <string>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"

namespace sssp::sim {

class DvfsPolicy {
 public:
  virtual ~DvfsPolicy() = default;

  // Operating point before the first iteration.
  virtual FrequencyPair initial(const DeviceSpec& device) = 0;
  // Operating point for the next iteration, given what the governor
  // observed during the last one.
  virtual FrequencyPair next(const DeviceSpec& device,
                             const IterationTiming& last_iteration) = 0;
  // Display label: "852/924" for pinned, "default" for the governor.
  virtual std::string label() const = 0;
  // Fresh policy with the same configuration (governors carry state, so
  // each simulated run needs its own instance).
  virtual std::unique_ptr<DvfsPolicy> clone() const = 0;
};

// Fixed frequencies for the whole run. Throws std::invalid_argument at
// initial() if the device does not support the pair.
class PinnedDvfs final : public DvfsPolicy {
 public:
  explicit PinnedDvfs(FrequencyPair freqs) : freqs_(freqs) {}

  FrequencyPair initial(const DeviceSpec& device) override;
  FrequencyPair next(const DeviceSpec& device,
                     const IterationTiming& last_iteration) override;
  std::string label() const override { return freqs_.label(); }
  std::unique_ptr<DvfsPolicy> clone() const override {
    return std::make_unique<PinnedDvfs>(freqs_);
  }

 private:
  FrequencyPair freqs_;
};

// Ondemand-style governor: tracks an EMA of utilization and walks the
// frequency menus one step at a time. Steps up eagerly (low up-delay,
// like real governors that jump on load) and down conservatively.
class DefaultGovernor final : public DvfsPolicy {
 public:
  struct Tuning {
    double up_threshold = 0.75;    // raise freq when EMA util above this
    double down_threshold = 0.30;  // lower freq when EMA util below this
    double ema_tau = 3.0;          // smoothing of the utilization signal
    // Start at the middle of the menu (boards boot mid-range and adapt).
    bool start_mid_menu = true;
  };

  DefaultGovernor() : DefaultGovernor(Tuning{}) {}
  explicit DefaultGovernor(Tuning tuning) : tuning_(tuning) {}

  FrequencyPair initial(const DeviceSpec& device) override;
  FrequencyPair next(const DeviceSpec& device,
                     const IterationTiming& last_iteration) override;
  std::string label() const override { return "default"; }
  std::unique_ptr<DvfsPolicy> clone() const override {
    return std::make_unique<DefaultGovernor>(tuning_);
  }

 private:
  Tuning tuning_;
  std::size_t core_index_ = 0;
  std::size_t mem_index_ = 0;
  double core_util_ema_ = 0.5;
  double mem_util_ema_ = 0.5;
  bool initialized_ = false;
};

}  // namespace sssp::sim
