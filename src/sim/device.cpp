#include "sim/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace sssp::sim {

std::string FrequencyPair::label() const {
  return std::to_string(core_mhz) + "/" + std::to_string(mem_mhz);
}

void DeviceSpec::validate() const {
  auto check_menu = [](const std::vector<std::uint32_t>& menu,
                       const char* which) {
    if (menu.empty())
      throw std::invalid_argument(std::string("DeviceSpec: empty ") + which +
                                  " frequency menu");
    if (!std::is_sorted(menu.begin(), menu.end()))
      throw std::invalid_argument(std::string("DeviceSpec: unsorted ") + which +
                                  " frequency menu");
    if (menu.front() == 0)
      throw std::invalid_argument(std::string("DeviceSpec: zero ") + which +
                                  " frequency");
  };
  check_menu(core_freq_menu_mhz, "core");
  check_menu(mem_freq_menu_mhz, "memory");
  if (cuda_cores == 0)
    throw std::invalid_argument("DeviceSpec: cuda_cores must be positive");
  if (items_per_core_cycle <= 0.0)
    throw std::invalid_argument("DeviceSpec: items_per_core_cycle must be > 0");
  if (kernel_launch_seconds < 0.0)
    throw std::invalid_argument("DeviceSpec: negative kernel_launch_seconds");
  if (peak_mem_bandwidth_bytes <= 0.0)
    throw std::invalid_argument("DeviceSpec: bandwidth must be > 0");
  if (static_power_w < 0.0 || gpu_dynamic_power_w < 0.0 ||
      mem_dynamic_power_w < 0.0)
    throw std::invalid_argument("DeviceSpec: negative power parameter");
  if (idle_core_fraction < 0.0 || idle_core_fraction > 1.0)
    throw std::invalid_argument("DeviceSpec: idle_core_fraction out of [0,1]");
  if (core_v_min <= 0.0 || core_v_max < core_v_min)
    throw std::invalid_argument("DeviceSpec: bad voltage endpoints");
}

bool DeviceSpec::supports(const FrequencyPair& pair) const {
  return std::find(core_freq_menu_mhz.begin(), core_freq_menu_mhz.end(),
                   pair.core_mhz) != core_freq_menu_mhz.end() &&
         std::find(mem_freq_menu_mhz.begin(), mem_freq_menu_mhz.end(),
                   pair.mem_mhz) != mem_freq_menu_mhz.end();
}

DeviceSpec DeviceSpec::jetson_tk1() {
  DeviceSpec spec;
  spec.name = "Jetson TK1";
  spec.cuda_cores = 192;
  spec.items_per_core_cycle = 1.0 / 256.0;
  spec.kernel_launch_seconds = 9e-6;  // Kepler-era dispatch latency
  spec.peak_mem_bandwidth_bytes = 14.9e9;  // DDR3L-1866 on 64-bit bus
  spec.core_freq_menu_mhz = {72, 108, 180, 252, 324, 396, 468, 540,
                             612, 648, 684, 708, 756, 804, 852};
  spec.mem_freq_menu_mhz = {204, 300, 396, 528, 600, 792, 924};
  spec.static_power_w = 3.2;
  spec.gpu_dynamic_power_w = 7.2;
  spec.mem_dynamic_power_w = 2.8;
  spec.idle_core_fraction = 0.25;
  spec.core_v_min = 0.80;
  spec.core_v_max = 1.10;
  spec.validate();
  return spec;
}

DeviceSpec DeviceSpec::jetson_tx1() {
  DeviceSpec spec;
  spec.name = "Jetson TX1";
  spec.cuda_cores = 256;
  // Maxwell retires graph work a bit more efficiently per clock.
  spec.items_per_core_cycle = 1.0 / 224.0;
  spec.kernel_launch_seconds = 6e-6;
  spec.peak_mem_bandwidth_bytes = 25.6e9;  // LPDDR4 on 64-bit bus
  spec.core_freq_menu_mhz = {76, 153, 230, 307, 384, 460, 537, 614,
                             691, 768, 844, 921, 998};
  spec.mem_freq_menu_mhz = {408, 665, 800, 1065, 1331, 1600};
  spec.static_power_w = 2.8;
  spec.gpu_dynamic_power_w = 6.4;
  spec.mem_dynamic_power_w = 2.4;
  // TX1's finer power gating wastes less idle power — the paper notes
  // "continued improvements in DVFS set points on the TX1 versus TK1".
  spec.idle_core_fraction = 0.12;
  spec.core_v_min = 0.82;
  spec.core_v_max = 1.08;
  spec.validate();
  return spec;
}

}  // namespace sssp::sim
