// Board-level power model: static + GPU dynamic + memory dynamic.
//
// Dynamic GPU power follows the classical f·V² CMOS model, with voltage
// interpolated across the DVFS menu; idle-but-powered cores leak a
// configurable fraction (the "idle cores consume their base power"
// effect cited in the paper's introduction [1]). PowerMon measured the
// whole board, so the model reports total board watts.
#pragma once

#include "sim/device.hpp"

namespace sssp::sim {

// Operating voltage at a core frequency (linear interpolation across the
// device's menu range; clamped outside it).
double core_voltage(const DeviceSpec& device, std::uint32_t core_mhz);

// Instantaneous board power (watts) at the given operating point.
//   core_utilization, mem_utilization in [0, 1] (clamped).
double board_power(const DeviceSpec& device, const FrequencyPair& freqs,
                   double core_utilization, double mem_utilization);

// Power when the GPU is idle at the given frequencies (utilization 0).
double idle_power(const DeviceSpec& device, const FrequencyPair& freqs);

}  // namespace sssp::sim
