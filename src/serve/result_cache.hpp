// LRU result cache for the query service (docs/SERVING.md, "Result
// cache").
//
// Keyed by (graph fingerprint, source, canonical options string) so a
// hit is only possible for the *same* graph bytes and the same
// algorithm knobs — a server restarted onto a different graph, or a
// query with a different delta/set-point, can never be served a stale
// answer. Entries hold the full SsspResult (distances + parents +
// counters), so a hit skips the solve entirely; per-query verification
// still runs on the cached arrays, which is what catches the
// `serve.cache.flip` poisoning drill at read time.
//
// Thread-safety: lookup/insert/stats are mutex-guarded; entries are
// handed out as shared_ptr<const ...> so readers never race an
// eviction. Capacity is a hard entry bound — with V-sized arrays per
// entry this is the server's dominant memory budget, and the eviction
// counter is how the chaos harness observes the bound holding.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/types.hpp"
#include "sssp/result.hpp"

namespace sssp::serve {

struct CacheKey {
  std::uint64_t fingerprint = 0;
  graph::VertexId source = 0;
  std::string options_key;  // canonical "algorithm:delta:set_point"

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept;
};

// Canonical options string (the cache-key third component).
std::string cache_options_key(const std::string& algorithm,
                              std::uint64_t delta, double set_point);

struct CacheEntry {
  algo::SsspResult result;
  // FNV-1a 64 over the distance array at insert time (pre-poisoning:
  // computed by the *producer*, so a flipped bit in the stored copy is
  // detectable against it).
  std::uint64_t dist_checksum = 0;
};

class ResultCache {
 public:
  // `capacity` bounds entries; `max_bytes` (0 = unbounded) additionally
  // bounds the summed size of the cached arrays — the knob the resource
  // budget layer uses, since entry counts say nothing about V-sized
  // payloads. Either bound evicts from the LRU tail; an entry larger
  // than max_bytes on its own is effectively not cached.
  explicit ResultCache(std::size_t capacity, std::size_t max_bytes = 0);

  // Hit moves the entry to the front of the LRU order.
  std::shared_ptr<const CacheEntry> lookup(const CacheKey& key);

  // Inserts (or replaces) and evicts from the LRU tail past capacity.
  // Hosts the `serve.cache.flip` failpoint: when armed, one finite
  // distance in a private copy of the entry is bit-flipped before it is
  // stored — subsequent hits serve poisoned data that read-side
  // certification must catch.
  void insert(const CacheKey& key, std::shared_ptr<const CacheEntry> entry);

  // Drops the entry if present (read-side poisoning quarantine).
  void invalidate(const CacheKey& key);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::uint64_t invalidations = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  // summed payload size of resident entries
  };
  Stats stats() const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t max_bytes() const noexcept { return max_bytes_; }

 private:
  struct Slot {
    CacheKey key;
    std::shared_ptr<const CacheEntry> entry;
    std::size_t bytes = 0;
  };

  void evict_tail_locked();

  const std::size_t capacity_;
  const std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  mutable std::mutex mu_;
  std::list<Slot> lru_;  // front = most recent
  std::unordered_map<CacheKey, std::list<Slot>::iterator, CacheKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace sssp::serve
