#include "serve/result_cache.hpp"

#include <sstream>

#include "fault/failpoint.hpp"
#include "graph/binary_io.hpp"

namespace sssp::serve {

std::size_t CacheKeyHash::operator()(const CacheKey& key) const noexcept {
  // FNV-1a over the three components; the options key is short.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  mix(&key.fingerprint, sizeof key.fingerprint);
  mix(&key.source, sizeof key.source);
  mix(key.options_key.data(), key.options_key.size());
  return static_cast<std::size_t>(h);
}

std::string cache_options_key(const std::string& algorithm,
                              std::uint64_t delta, double set_point) {
  std::ostringstream key;
  key << algorithm << ":" << delta << ":" << set_point;
  return key.str();
}

namespace {

// Dominant payload: the V-sized result arrays (plus path vertices for
// p2p-style entries and the struct overhead itself).
std::size_t entry_bytes(const CacheEntry& entry) noexcept {
  return sizeof(CacheEntry) +
         entry.result.distances.size() * sizeof(graph::Distance) +
         entry.result.parents.size() * sizeof(graph::VertexId);
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {}

void ResultCache::evict_tail_locked() {
  while (!lru_.empty() &&
         (lru_.size() > capacity_ ||
          (max_bytes_ != 0 && bytes_ > max_bytes_))) {
    bytes_ -= lru_.back().bytes;
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const CacheEntry> ResultCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->entry;
}

void ResultCache::insert(const CacheKey& key,
                         std::shared_ptr<const CacheEntry> entry) {
  if (capacity_ == 0 || entry == nullptr) return;

  // Cache-poisoning drill: store a copy with one finite distance
  // bit-flipped. The entry's dist_checksum (computed by the producer
  // before insert) is left untouched, so the corruption is latent until
  // a read-side certification or checksum comparison exposes it.
  if (SSSP_FAILPOINT("serve.cache.flip")) {
    auto poisoned = std::make_shared<CacheEntry>(*entry);
    auto& dist = poisoned->result.distances;
    for (std::size_t i = dist.size() / 2; i < dist.size(); ++i) {
      if (dist[i] != graph::kInfiniteDistance) {
        dist[i] ^= 1;
        break;
      }
    }
    entry = std::move(poisoned);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = map_.find(key); it != map_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  const std::size_t size = entry_bytes(*entry);
  lru_.push_front(Slot{key, std::move(entry), size});
  bytes_ += size;
  map_[key] = lru_.begin();
  ++inserts_;
  evict_tail_locked();
}

void ResultCache::invalidate(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return;
  bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
  ++invalidations_;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.inserts = inserts_;
  stats.invalidations = invalidations_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace sssp::serve
