// Overload-safe SSSP query server over a resident graph
// (docs/SERVING.md).
//
// The graph is loaded once, shared and immutable; queries flow through
// an explicit robustness pipeline:
//
//   transport -> parse firewall -> admission queue (bounded, shed
//   policy) -> worker pool (per-query concurrency cap) -> solve with a
//   per-query util::RunControl deadline -> certification -> LRU result
//   cache -> response
//
// Invariants the chaos harness holds the server to:
//   - every submitted request gets exactly one structured response
//     (no silent drops once a request is admitted or shed);
//   - every `ok` response with verification on passed certification —
//     including cache hits, which re-certify the cached arrays (the
//     `serve.cache.flip` poisoning drill);
//   - a handler crash (`serve.handler.crash`) costs one `error`
//     response, never a worker or a queue slot;
//   - drain (SIGINT/SIGTERM/EOF) stops admissions, finishes or sheds
//     all in-flight work within the drain deadline, and leaves queue
//     depth and in-flight count at zero.
//
// Timing is std::chrono::steady_clock end-to-end (admission stamps,
// deadlines, latency accounting) — wall-clock adjustments must never
// expire a query or skew a percentile.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "frontier/stats.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "sssp/batch_engine.hpp"
#include "util/run_control.hpp"

namespace sssp::serve {

struct ServerOptions {
  // Admission queue capacity and overflow policy.
  std::size_t queue_capacity = 64;
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  // Per-query concurrency cap: at most this many queries execute at
  // once (each may still use the global thread pool internally).
  std::size_t workers = 2;
  // LRU result-cache capacity in entries (0 disables caching).
  std::size_t cache_entries = 128;
  // Default per-query deadline when the request carries none (0 =
  // unlimited). Measured from admission.
  double default_deadline_ms = 0.0;
  // Graceful-drain budget: queued work not finished within this many
  // milliseconds of the drain request is shed, and in-flight queries
  // are interrupted through their RunControls.
  double drain_ms = 5000.0;
  // Default for requests that do not set "verify".
  bool verify_default = true;
  // Algorithm for requests that do not name one.
  std::string default_algorithm = "near-far";
  // Default self-tuning set-point for requests that do not set one.
  double set_point = 20000.0;
  // Query coalescing (docs/SERVING.md, "Query coalescing"): a worker
  // that pops a batchable near-far query additionally drains up to
  // batch_max - 1 compatible queued queries (same effective algorithm,
  // delta, and verify flag; deadline-free) and solves them all in one
  // batched run (sssp/batch_engine.hpp), fanning the per-lane results
  // out to each ticket's response sink. 1 disables coalescing.
  std::size_t batch_max = 8;
  // Independent is the measured default (docs/PERFORMANCE.md, "Batched
  // multi-source"): fused only wins when the union frontiers of the
  // batch overlap heavily, which road-like queries rarely do.
  algo::BatchStrategy batch_strategy = algo::BatchStrategy::kIndependent;
  // Capture the full per-iteration trace of the first N freshly solved
  // queries and publish them in the final report's "sampled_reports"
  // array (0 disables; bounded so a long-running server cannot grow
  // the report without limit).
  std::size_t sample_reports = 0;
  // Memory-aware admission (docs/ROBUSTNESS.md, "Resource budgets &
  // exhaustion"): before queueing a query, the projected footprint of
  // every query that could be solving or waiting — per-query bytes ×
  // (in_flight + queue depth + 1) — is checked against the process
  // memory budget; over budget sheds kOverloaded with retry_after_ms,
  // mirroring the queue-depth shed. Per-query bytes default (0) to the
  // solve + response arrays: 2 × V × (sizeof dist + sizeof parent).
  // The check only bites when a budget limit is set or the
  // res.serve.admit failpoint is armed.
  std::uint64_t query_footprint_bytes = 0;
  // Byte bound for the result cache on top of cache_entries
  // (0 = unbounded). Evicts from the LRU tail.
  std::size_t cache_max_bytes = 0;
};

struct ServerStats {
  std::uint64_t received = 0;
  std::uint64_t invalid = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;   // ok responses
  std::uint64_t responses = 0;   // every response, any status
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_expired_queue = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t shed_memory = 0;  // memory-budget admission sheds
  std::uint64_t expired_running = 0;
  std::uint64_t drain_aborted = 0;  // in-flight, interrupted by drain
  std::uint64_t handler_errors = 0;
  std::uint64_t certification_failures = 0;
  std::uint64_t cache_poisoned = 0;
  std::uint64_t batches = 0;          // coalesced runs (>= 2 queries)
  std::uint64_t batched_queries = 0;  // queries served by those runs
  ResultCache::Stats cache;
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;
  double uptime_seconds = 0.0;
  double qps = 0.0;  // completed / uptime
  double latency_ms_p50 = 0.0, latency_ms_p95 = 0.0, latency_ms_p99 = 0.0;
  double latency_ms_mean = 0.0, latency_ms_max = 0.0;
  double queue_ms_p50 = 0.0, queue_ms_p95 = 0.0, queue_ms_p99 = 0.0;
  bool drain_requested = false;
  bool drain_clean = false;  // no forced shedding / interruption
  double drain_seconds = 0.0;
};

class Server {
 public:
  using ResponseSink = std::function<void(const Response&)>;

  // The graph must outlive the server and never change (resident,
  // shared, immutable).
  Server(const graph::CsrGraph& graph, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Spawns the worker pool. Call once before submit().
  void start();

  // Feeds one raw request document through the pipeline. The response
  // is delivered through `sink` — inline for parse failures and sheds,
  // from a worker thread for executed queries. Sink calls are
  // serialized by the server; the sink must not call back into submit.
  void submit(std::string_view line, ResponseSink sink);

  // Graceful drain: stop admitting, finish or shed queued + in-flight
  // work within options.drain_ms, then join the workers. Safe to call
  // from a signal-polling loop; idempotent. Blocks until drained.
  void drain();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;
  std::uint64_t graph_fingerprint() const noexcept { return fingerprint_; }
  const ServerOptions& options() const noexcept { return options_; }

  // Final run report ("tunesssp.serve.v1"): options, totals, latency
  // percentiles, cache and drain state, armed failpoint counters.
  void write_report(std::ostream& out) const;

 private:
  void worker_loop(std::size_t worker_id);
  void execute(Ticket& ticket, std::size_t worker_id);
  // Coalesced execution: one batched near-far run serving every ticket
  // in `batch` (all mutually compatible). Exactly one response per
  // ticket on every path — success, per-lane certification failure,
  // drain interruption, or handler crash.
  void execute_batch(std::vector<Ticket>& batch, std::size_t worker_id);
  // True when the ticket may join a coalesced near-far run at all.
  bool batchable(const Ticket& ticket) const;
  // First N fresh solves capture their full iteration trace for the
  // report's "sampled_reports" section.
  void maybe_sample(const std::string& id, graph::VertexId source,
                    const std::string& algorithm,
                    const std::vector<frontier::IterationStats>& iterations,
                    bool batched);
  void respond(const Ticket& ticket, Response&& response);
  void respond_sink(const ResponseSink& sink, const Response& response);
  double retry_after_ms_hint() const;
  Response make_shed(const Request& request, Status status,
                     std::string error, bool with_retry);

  const graph::CsrGraph& graph_;
  const ServerOptions options_;
  const std::uint64_t fingerprint_;
  AdmissionQueue queue_;
  ResultCache cache_;
  std::vector<std::thread> workers_;
  // Per-worker RunControl of the query it is executing (null when
  // idle); drain interrupts through these.
  std::vector<std::atomic<util::RunControl*>> active_controls_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::mutex drain_mu_;  // serializes drain()
  std::mutex respond_mu_;
  std::chrono::steady_clock::time_point start_time_{};

  // Always-on internal instruments (the final report must not depend
  // on the obs gate); mirrored into the global metrics registry when
  // metrics are enabled.
  obs::Histogram latency_ms_;
  obs::Histogram queue_wait_ms_;
  std::atomic<std::uint64_t> received_{0}, invalid_{0}, admitted_{0},
      completed_{0}, responses_{0}, shed_queue_full_{0},
      shed_expired_queue_{0}, shed_draining_{0}, shed_memory_{0},
      expired_running_{0},
      drain_aborted_{0}, handler_errors_{0}, certification_failures_{0},
      cache_poisoned_{0}, batches_{0}, batched_queries_{0};
  struct SampledReport {
    std::string id;
    graph::VertexId source = 0;
    std::string algorithm;
    bool batched = false;
    std::vector<frontier::IterationStats> iterations;
  };
  mutable std::mutex samples_mu_;
  std::vector<SampledReport> samples_;
  std::atomic<double> ewma_run_ms_{50.0};
  bool drain_requested_ = false;
  bool drain_clean_ = false;
  double drain_seconds_ = 0.0;
};

}  // namespace sssp::serve
