#include "serve/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/socket.hpp"

namespace sssp::serve {

namespace {

constexpr const char* kReadyId = "__sup_ready__";

void bump(const char* name) {
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter(name).add(1);
}

// Empty SIGCHLD handler installed WITHOUT SA_RESTART: child death must
// interrupt blocking syscalls (EINTR) so the monitor notices promptly;
// the transport loops retry (socket.cpp read_all/write_all).
void on_sigchld(int) {}

void install_child_signals() {
  struct sigaction sa{};
  sa.sa_handler = on_sigchld;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ::sigaction(SIGCHLD, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // dead-worker writes surface as EPIPE
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  if (options_.workers == 0)
    throw ServeError("supervisor requires at least one worker");
  if (options_.worker_command.empty())
    throw ServeError("supervisor requires a worker command");
  workers_.resize(options_.workers);
}

Supervisor::~Supervisor() {
  try {
    drain();
  } catch (...) {
  }
}

Response Supervisor::make_shed(const std::string& id, Status status,
                               std::string error, bool with_retry) const {
  Response response;
  response.id = id;
  response.status = status;
  response.error = std::move(error);
  if (with_retry) {
    std::size_t backlog = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      backlog = parked_.size();
    }
    response.retry_after_ms = 100.0 + 10.0 * static_cast<double>(backlog);
  }
  return response;
}

void Supervisor::deliver(const Response& response, const ResponseSink& sink) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(respond_mu_);
  if (sink) sink(response);
}

void Supervisor::deliver_all(
    std::vector<std::pair<Response, ResponseSink>>& responses) {
  for (auto& [response, sink] : responses) deliver(response, sink);
  responses.clear();
}

// ---------------------------------------------------------------------------
// Worker lifecycle

void Supervisor::spawn_worker(std::size_t slot) {
  // Retire the previous generation's reader first (it has finished or
  // is about to: its fd is closed). Joining outside mu_ — the reader's
  // tail takes mu_ to mark eof.
  std::thread old_reader;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_reader = std::move(workers_[slot].reader);
  }
  if (old_reader.joinable()) old_reader.join();

  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw ServeError(std::string("socketpair: ") + std::strerror(errno));
  // Supervisor end must not leak into workers; the worker end must
  // survive exec, so it stays inheritable.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);

  const int devnull = ::open("/dev/null", O_RDONLY);

  // argv built before fork: the child may only make async-signal-safe
  // calls between fork and exec (the supervisor is multi-threaded).
  std::vector<std::string> args = options_.worker_command;
  args.push_back("--worker-fd");
  args.push_back(std::to_string(fds[1]));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (devnull >= 0) ::close(devnull);
    ::close(fds[0]);
    ::close(fds[1]);
    throw ServeError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: async-signal-safe region. stdin from /dev/null, stdout
    // folded into stderr so worker logs cannot corrupt the
    // supervisor's client stream in pipe mode.
    if (devnull >= 0) ::dup2(devnull, STDIN_FILENO);
    ::dup2(STDERR_FILENO, STDOUT_FILENO);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  ::close(fds[1]);
  if (devnull >= 0) ::close(devnull);

  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Worker& w = workers_[slot];
    w.pid = pid;
    w.fd = fds[0];
    w.generation += 1;
    generation = w.generation;
    w.ready = false;
    w.reaped = false;
    w.eof = false;
    w.restart_at = Clock::time_point{};
    w.reader = std::thread(
        [this, slot, generation, fd = fds[0]] {
          reader_loop(slot, generation, fd);
        });
  }
  monitor_cv_.notify_all();
}

void Supervisor::reader_loop(std::size_t slot, std::uint64_t generation,
                             int fd) {
  std::string payload;
  for (;;) {
    bool got = false;
    try {
      got = read_frame(fd, payload);
    } catch (const ServeError&) {
      break;  // torn frame / read error: treat as worker loss
    }
    if (!got) break;  // EOF: worker exited (or is exiting)

    Response response;
    if (!parse_response(payload, response)) continue;

    if (response.id == kReadyId) {
      std::vector<std::pair<Response, ResponseSink>> out;
      {
        std::lock_guard<std::mutex> lock(mu_);
        Worker& w = workers_[slot];
        if (w.generation != generation || w.reaped) continue;
        w.ready = true;
        // A worker that reached ready ends its crash streak; the
        // crash-loop window still counts fleet-wide crashes.
        w.consecutive_crashes = 0;
        if (response.has_info) {
          num_vertices_.store(response.num_vertices,
                              std::memory_order_release);
          num_edges_.store(response.num_edges, std::memory_order_release);
          fingerprint_.store(response.graph_fingerprint,
                             std::memory_order_release);
          worker_queue_capacity_.store(response.queue_capacity,
                                       std::memory_order_release);
          worker_cache_entries_.store(response.cache_entries,
                                      std::memory_order_release);
        }
        flush_parked_locked(out);
      }
      ready_cv_.notify_all();
      perform(out);
      continue;
    }

    // A query response: resolve the routing entry and restore the
    // client's id. Stale ids (entry already shed or re-routed) are
    // dropped — the client response was or will be produced elsewhere.
    PendingQuery pq;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(response.id);
      if (it != pending_.end() &&
          it->second.worker_slot == static_cast<int>(slot) &&
          it->second.worker_generation == generation) {
        pq = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (!found) continue;
    response.id = pq.request.id;
    if (response.status == Status::kOk)
      completed_.fetch_add(1, std::memory_order_relaxed);
    deliver(response, pq.sink);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    Worker& w = workers_[slot];
    if (w.generation == generation) {
      w.eof = true;
      w.ready = false;
    }
  }
  monitor_cv_.notify_all();
}

void Supervisor::handle_worker_exit_locked(
    std::size_t slot, bool crashed,
    std::vector<std::pair<Response, ResponseSink>>& out_responses,
    std::vector<Dispatch>& out_dispatches) {
  Worker& w = workers_[slot];
  w.reaped = true;
  w.ready = false;
  w.eof = true;
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  w.pid = -1;

  if (crashed) {
    worker_crashes_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.supervisor.worker_crashes");
    const auto now = Clock::now();
    crash_times_.push_back(now);
    const auto window = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.crash_loop_window_s));
    while (!crash_times_.empty() && crash_times_.front() + window < now)
      crash_times_.pop_front();
    w.consecutive_crashes += 1;

    if (!tripped_.load(std::memory_order_acquire) &&
        static_cast<int>(crash_times_.size()) >= options_.crash_loop_k) {
      trip_breaker_locked(out_responses);
    } else if (!tripped_.load(std::memory_order_acquire) &&
               !draining_.load(std::memory_order_acquire)) {
      const double backoff = std::min(
          options_.restart_backoff_ms *
              static_cast<double>(1ULL << std::min(w.consecutive_crashes - 1,
                                                   20)),
          options_.restart_backoff_max_ms);
      w.restart_at = now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   backoff));
    }
  }

  // Re-route the dead worker's in-flight queries: exactly one response
  // per query, so each entry either reaches a survivor or is shed.
  const std::uint64_t generation = w.generation;
  std::vector<std::pair<std::string, PendingQuery>> orphans;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.worker_slot == static_cast<int>(slot) &&
        it->second.worker_generation == generation) {
      orphans.emplace_back(it->first, std::move(it->second));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [seq_id, pq] : orphans) {
    if (crashed) {
      redispatched_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.supervisor.redispatched");
    }
    route_locked(std::move(seq_id), std::move(pq), out_responses,
                 out_dispatches);
  }
}

void Supervisor::trip_breaker_locked(
    std::vector<std::pair<Response, ResponseSink>>& out_responses) {
  tripped_.store(true, std::memory_order_release);
  crashloop_trips_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.supervisor.crashloop_trips");
  // No further restarts; shed every parked query now (dispatched ones
  // are shed as their workers die or via route_locked's tripped check).
  for (Worker& w : workers_) w.restart_at = Clock::time_point{};
  for (const std::string& seq_id : parked_) {
    auto it = pending_.find(seq_id);
    if (it == pending_.end()) continue;
    shed_retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
    Response shed;
    shed.id = it->second.request.id;
    shed.status = Status::kOverloaded;
    shed.error = "crash-loop breaker tripped";
    shed.retry_after_ms = 1000.0;
    out_responses.emplace_back(std::move(shed), std::move(it->second.sink));
    pending_.erase(it);
  }
  parked_.clear();
}

// ---------------------------------------------------------------------------
// Routing

int Supervisor::pick_ready_worker_locked() {
  const std::size_t n = workers_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = (round_robin_ + i) % n;
    const Worker& w = workers_[slot];
    if (w.ready && !w.reaped && !w.eof) {
      round_robin_ = slot + 1;
      return static_cast<int>(slot);
    }
  }
  return -1;
}

void Supervisor::route_locked(std::string seq_id, PendingQuery&& query,
                              std::vector<std::pair<Response, ResponseSink>>&
                                  out_responses,
                              std::vector<Dispatch>& out_dispatches) {
  if (draining_.load(std::memory_order_acquire)) {
    shed_draining_.fetch_add(1, std::memory_order_relaxed);
    Response shed;
    shed.id = query.request.id;
    shed.status = Status::kShuttingDown;
    shed.error = "supervisor draining";
    shed.retry_after_ms = 1000.0;
    out_responses.emplace_back(std::move(shed), std::move(query.sink));
    return;
  }
  if (tripped_.load(std::memory_order_acquire) ||
      query.attempts > options_.redispatch_budget) {
    shed_retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
    Response shed;
    shed.id = query.request.id;
    shed.status = Status::kOverloaded;
    shed.error = tripped_.load(std::memory_order_acquire)
                     ? "crash-loop breaker tripped"
                     : "worker crashed; retry budget exhausted";
    shed.retry_after_ms = 1000.0;
    out_responses.emplace_back(std::move(shed), std::move(query.sink));
    return;
  }

  const int slot = pick_ready_worker_locked();
  if (slot < 0) {
    // No live worker right now (fleet mid-restart): park, bounded.
    if (parked_.size() >= options_.queue_capacity) {
      shed_parked_overflow_.fetch_add(1, std::memory_order_relaxed);
      Response shed;
      shed.id = query.request.id;
      shed.status = Status::kOverloaded;
      shed.error = "no live worker and parked queue full";
      shed.retry_after_ms =
          100.0 + 10.0 * static_cast<double>(parked_.size());
      out_responses.emplace_back(std::move(shed), std::move(query.sink));
      return;
    }
    query.worker_slot = -1;
    parked_.push_back(seq_id);
    pending_.emplace(std::move(seq_id), std::move(query));
    return;
  }

  Worker& w = workers_[slot];
  query.attempts += 1;
  query.worker_slot = slot;
  query.worker_generation = w.generation;
  query.dispatched_at = Clock::now();
  const double budget_ms = query.request.deadline_ms > 0.0
                               ? query.request.deadline_ms
                               : options_.query_timeout_ms;
  query.route_deadline =
      budget_ms > 0.0
          ? query.dispatched_at +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        std::min(budget_ms, 1e12) + options_.hang_grace_ms))
          : Clock::time_point{};

  Request forwarded = query.request;
  forwarded.id = seq_id;
  Dispatch dispatch;
  dispatch.slot = slot;
  dispatch.generation = w.generation;
  dispatch.fd = w.fd;
  dispatch.write_mu = w.write_mu.get();
  dispatch.frame = format_request(forwarded);
  dispatch.seq_id = seq_id;
  out_dispatches.push_back(std::move(dispatch));
  pending_.emplace(std::move(seq_id), std::move(query));
}

void Supervisor::flush_parked_locked(
    std::vector<std::pair<Response, ResponseSink>>& out_responses) {
  // Re-route everything parked now that a worker is ready; entries
  // that cannot be placed simply park again (FIFO preserved).
  std::vector<Dispatch> dispatches;
  std::deque<std::string> parked = std::move(parked_);
  parked_.clear();
  for (std::string& seq_id : parked) {
    auto it = pending_.find(seq_id);
    if (it == pending_.end()) continue;
    PendingQuery pq = std::move(it->second);
    pending_.erase(it);
    route_locked(std::move(seq_id), std::move(pq), out_responses,
                 dispatches);
  }
  pending_dispatches_.insert(pending_dispatches_.end(),
                             std::make_move_iterator(dispatches.begin()),
                             std::make_move_iterator(dispatches.end()));
}

void Supervisor::perform(
    std::vector<std::pair<Response, ResponseSink>>& responses) {
  std::vector<Dispatch> dispatches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dispatches = std::move(pending_dispatches_);
    pending_dispatches_.clear();
  }
  perform(responses, dispatches);
}

void Supervisor::perform(
    std::vector<std::pair<Response, ResponseSink>>& responses,
    std::vector<Dispatch>& dispatches) {
  deliver_all(responses);
  // Writes happen outside mu_ (a slow or hung worker must not stall
  // routing); a failed write re-routes the query, looping until every
  // action settles.
  while (!dispatches.empty()) {
    std::vector<Dispatch> batch = std::move(dispatches);
    dispatches.clear();
    for (Dispatch& d : batch) {
      bool ok = true;
      try {
        std::lock_guard<std::mutex> frame_lock(*d.write_mu);
        write_frame(d.fd, d.frame);
      } catch (const ServeError&) {
        ok = false;
      }
      if (ok) {
        forwarded_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // The worker is gone (EPIPE) or its pipe broke: mark the slot
      // suspect and put the query back through routing.
      std::vector<std::pair<Response, ResponseSink>> more_responses;
      {
        std::lock_guard<std::mutex> lock(mu_);
        Worker& w = workers_[static_cast<std::size_t>(d.slot)];
        if (w.generation == d.generation) {
          w.ready = false;
          w.eof = true;
        }
        auto it = pending_.find(d.seq_id);
        if (it != pending_.end() &&
            it->second.worker_slot == d.slot &&
            it->second.worker_generation == d.generation) {
          PendingQuery pq = std::move(it->second);
          pending_.erase(it);
          route_locked(d.seq_id, std::move(pq), more_responses, dispatches);
        }
      }
      monitor_cv_.notify_all();
      deliver_all(more_responses);
    }
  }
}

// ---------------------------------------------------------------------------
// Monitor

void Supervisor::monitor_loop() {
  while (!stop_monitor_.load(std::memory_order_acquire)) {
    std::vector<std::pair<Response, ResponseSink>> responses;
    std::vector<Dispatch> dispatches;
    std::vector<std::size_t> to_spawn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      monitor_cv_.wait_for(lock, std::chrono::milliseconds(100));
      const auto now = Clock::now();

      for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
        Worker& w = workers_[slot];
        // Reap. Any exit the supervisor did not ask for is a crash —
        // including a clean exit(0), since nobody told it to drain.
        if (!w.reaped && w.pid > 0) {
          int status = 0;
          const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
          if (got == w.pid)
            handle_worker_exit_locked(
                slot, !draining_.load(std::memory_order_acquire), responses,
                dispatches);
        }
        // Due restarts (outside mu_: fork + thread creation).
        if (w.reaped && w.restart_at != Clock::time_point{} &&
            now >= w.restart_at &&
            !tripped_.load(std::memory_order_acquire) &&
            !draining_.load(std::memory_order_acquire)) {
          w.restart_at = Clock::time_point{};
          to_spawn.push_back(slot);
        }
      }

      // Hang escalation: a query past its routing deadline means the
      // worker is stuck (serve.worker.hang) — SIGKILL turns it into
      // the ordinary crash path, which re-dispatches the query.
      for (auto& [seq_id, pq] : pending_) {
        if (pq.worker_slot < 0 ||
            pq.route_deadline == Clock::time_point{} ||
            now <= pq.route_deadline)
          continue;
        Worker& w = workers_[static_cast<std::size_t>(pq.worker_slot)];
        if (w.generation != pq.worker_generation || w.reaped || w.pid <= 0)
          continue;
        hang_kills_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.supervisor.hang_kills");
        ::kill(w.pid, SIGKILL);
        pq.route_deadline = Clock::time_point{};  // one kill per expiry
      }
    }
    perform(responses, dispatches);
    for (std::size_t slot : to_spawn) {
      try {
        spawn_worker(slot);
        worker_restarts_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.supervisor.worker_restarts");
        {
          std::lock_guard<std::mutex> lock(mu_);
          workers_[slot].restarts += 1;
        }
      } catch (const ServeError&) {
        // Spawn failure (fd/pid exhaustion): retry after max backoff.
        std::lock_guard<std::mutex> lock(mu_);
        workers_[slot].restart_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   options_.restart_backoff_max_ms));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Public surface

void Supervisor::start() {
  if (started_.exchange(true)) return;
  install_child_signals();
  start_time_ = Clock::now();
  for (std::size_t slot = 0; slot < workers_.size(); ++slot)
    spawn_worker(slot);
  monitor_ = std::thread([this] { monitor_loop(); });

  // Serving before the first ready frame would reject every query (the
  // parse firewall needs num_vertices), so startup blocks here.
  std::unique_lock<std::mutex> lock(mu_);
  const bool up = ready_cv_.wait_for(
      lock,
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              options_.start_timeout_ms)),
      [this] {
        return std::any_of(workers_.begin(), workers_.end(),
                           [](const Worker& w) { return w.ready; });
      });
  if (!up) {
    lock.unlock();
    drain();
    throw ServeError("no worker became ready within " +
                     std::to_string(options_.start_timeout_ms) + " ms");
  }
}

void Supervisor::submit(std::string_view line, ResponseSink sink) {
  received_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.supervisor.received");

  ParsedRequest parsed =
      parse_request(line, num_vertices_.load(std::memory_order_acquire));
  if (!parsed.ok) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    response.id = parsed.request.id;
    response.status = Status::kInvalid;
    response.error = parsed.error;
    deliver(response, sink);
    return;
  }

  const std::string& cmd = parsed.request.cmd;
  if (cmd == "health" || cmd == "ready") {
    std::size_t alive = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Worker& w : workers_)
        if (w.ready && !w.reaped && !w.eof) ++alive;
    }
    const bool ready = alive > 0 && !draining() &&
                       !tripped_.load(std::memory_order_acquire);
    Response response;
    response.id = parsed.request.id;
    response.status =
        cmd == "ready" && !ready ? Status::kShuttingDown : Status::kOk;
    if (response.status != Status::kOk) {
      response.error = "supervisor not ready";
      response.retry_after_ms = 500.0;
    }
    response.has_health = true;
    response.role = "supervisor";
    response.ready = ready;
    response.workers_alive = alive;
    response.workers_total = workers_.size();
    response.restarts = worker_restarts_.load(std::memory_order_relaxed);
    deliver(response, sink);
    return;
  }

  if (cmd == "info") {
    // Served from the shape cached off the ready frame: info must work
    // while the whole fleet is mid-restart.
    Response response;
    response.id = parsed.request.id;
    response.status = Status::kOk;
    response.has_info = true;
    response.num_vertices = num_vertices_.load(std::memory_order_acquire);
    response.num_edges = num_edges_.load(std::memory_order_acquire);
    response.graph_fingerprint =
        fingerprint_.load(std::memory_order_acquire);
    response.queue_capacity =
        worker_queue_capacity_.load(std::memory_order_acquire);
    response.workers = workers_.size();
    response.cache_entries =
        worker_cache_entries_.load(std::memory_order_acquire);
    response.draining = draining();
    deliver(response, sink);
    return;
  }

  if (draining()) {
    shed_draining_.fetch_add(1, std::memory_order_relaxed);
    deliver(make_shed(parsed.request.id, Status::kShuttingDown,
                      "supervisor draining", true),
            sink);
    return;
  }

  std::vector<std::pair<Response, ResponseSink>> responses;
  std::vector<Dispatch> dispatches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string seq_id = "s" + std::to_string(next_seq_++);
    PendingQuery query;
    query.request = std::move(parsed.request);
    query.sink = std::move(sink);
    route_locked(std::move(seq_id), std::move(query), responses, dispatches);
  }
  perform(responses, dispatches);
}

void Supervisor::drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (drained_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  const auto drain_start = Clock::now();

  // Parked queries can never run now — shed them immediately. EOF on
  // each worker socket asks the worker's own Server to drain: it
  // finishes in-flight queries, flushes responses, and exits 0.
  std::vector<std::pair<Response, ResponseSink>> responses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& seq_id : parked_) {
      auto it = pending_.find(seq_id);
      if (it == pending_.end()) continue;
      shed_draining_.fetch_add(1, std::memory_order_relaxed);
      Response shed;
      shed.id = it->second.request.id;
      shed.status = Status::kShuttingDown;
      shed.error = "supervisor draining";
      shed.retry_after_ms = 1000.0;
      responses.emplace_back(std::move(shed), std::move(it->second.sink));
      pending_.erase(it);
    }
    parked_.clear();
    for (Worker& w : workers_) {
      w.restart_at = Clock::time_point{};
      if (!w.reaped && w.fd >= 0) ::shutdown(w.fd, SHUT_WR);
    }
  }
  deliver_all(responses);

  // Wait for in-flight queries to resolve and workers to exit; the
  // monitor keeps reaping throughout. Escalate past the budget.
  bool sigtermed = false, sigkilled = false;
  for (;;) {
    bool all_reaped = true;
    bool pending_empty = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Worker& w : workers_)
        if (!w.reaped) all_reaped = false;
      pending_empty = pending_.empty();
    }
    if (all_reaped && pending_empty) break;
    const double waited = ms_since(drain_start);
    if (!sigtermed && waited > options_.drain_ms) {
      sigtermed = true;
      std::lock_guard<std::mutex> lock(mu_);
      for (Worker& w : workers_)
        if (!w.reaped && w.pid > 0) ::kill(w.pid, SIGTERM);
    }
    if (!sigkilled && waited > options_.drain_ms + 2000.0) {
      sigkilled = true;
      std::lock_guard<std::mutex> lock(mu_);
      for (Worker& w : workers_)
        if (!w.reaped && w.pid > 0) ::kill(w.pid, SIGKILL);
    }
    if (all_reaped && !pending_empty) {
      // Workers are gone but entries remain (e.g. monitor stopped
      // between reap and re-route): shed them now.
      std::vector<std::pair<Response, ResponseSink>> late;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [seq_id, pq] : pending_) {
          shed_draining_.fetch_add(1, std::memory_order_relaxed);
          Response shed;
          shed.id = pq.request.id;
          shed.status = Status::kShuttingDown;
          shed.error = "supervisor draining";
          shed.retry_after_ms = 1000.0;
          late.emplace_back(std::move(shed), std::move(pq.sink));
        }
        pending_.clear();
      }
      deliver_all(late);
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Stop the monitor, then retire readers (closing fds forces EOF).
  if (started_.load(std::memory_order_acquire)) {
    stop_monitor_.store(true, std::memory_order_release);
    monitor_cv_.notify_all();
    if (monitor_.joinable()) monitor_.join();
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Worker& w : workers_) {
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
      if (w.reader.joinable()) readers.push_back(std::move(w.reader));
    }
  }
  for (std::thread& t : readers) t.join();
  // Belt and braces: no child of ours may outlive drain.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Worker& w : workers_) {
      if (!w.reaped && w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        w.reaped = true;
        w.pid = -1;
      }
    }
  }
  drained_.store(true, std::memory_order_release);
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.forwarded = forwarded_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.redispatched = redispatched_.load(std::memory_order_relaxed);
  s.shed_retry_exhausted =
      shed_retry_exhausted_.load(std::memory_order_relaxed);
  s.shed_parked_overflow =
      shed_parked_overflow_.load(std::memory_order_relaxed);
  s.shed_draining = shed_draining_.load(std::memory_order_relaxed);
  s.worker_crashes = worker_crashes_.load(std::memory_order_relaxed);
  s.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  s.hang_kills = hang_kills_.load(std::memory_order_relaxed);
  s.crashloop_trips = crashloop_trips_.load(std::memory_order_relaxed);
  s.workers_total = workers_.size();
  s.tripped = tripped_.load(std::memory_order_acquire);
  s.draining = draining_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Worker& w : workers_)
      if (w.ready && !w.reaped && !w.eof) ++s.workers_ready;
    s.pending = pending_.size();
  }
  if (start_time_ != Clock::time_point{})
    s.uptime_seconds = ms_since(start_time_) / 1000.0;
  return s;
}

void Supervisor::write_report(std::ostream& out) const {
  const SupervisorStats s = stats();
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("tunesssp.supervisor.v1");
  w.key("options").begin_object();
  w.key("workers").value(static_cast<std::uint64_t>(options_.workers));
  w.key("queue_capacity").value(
      static_cast<std::uint64_t>(options_.queue_capacity));
  w.key("redispatch_budget").value(
      static_cast<std::int64_t>(options_.redispatch_budget));
  w.key("query_timeout_ms").value(options_.query_timeout_ms);
  w.key("restart_backoff_ms").value(options_.restart_backoff_ms);
  w.key("restart_backoff_max_ms").value(options_.restart_backoff_max_ms);
  w.key("crash_loop_k").value(
      static_cast<std::int64_t>(options_.crash_loop_k));
  w.key("crash_loop_window_s").value(options_.crash_loop_window_s);
  w.key("drain_ms").value(options_.drain_ms);
  w.end_object();
  w.key("totals").begin_object();
  w.key("received").value(s.received);
  w.key("invalid").value(s.invalid);
  w.key("forwarded").value(s.forwarded);
  w.key("responses").value(s.responses);
  w.key("completed").value(s.completed);
  w.key("serve.supervisor.redispatched").value(s.redispatched);
  w.key("serve.supervisor.worker_restarts").value(s.worker_restarts);
  w.key("serve.supervisor.crashloop_trips").value(s.crashloop_trips);
  w.key("worker_crashes").value(s.worker_crashes);
  w.key("hang_kills").value(s.hang_kills);
  w.key("shed_retry_exhausted").value(s.shed_retry_exhausted);
  w.key("shed_parked_overflow").value(s.shed_parked_overflow);
  w.key("shed_draining").value(s.shed_draining);
  w.key("pending").value(static_cast<std::uint64_t>(s.pending));
  w.end_object();
  w.key("workers").begin_array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      const Worker& w2 = workers_[slot];
      w.begin_object();
      w.key("slot").value(static_cast<std::uint64_t>(slot));
      w.key("generation").value(w2.generation);
      w.key("ready").value(w2.ready && !w2.reaped && !w2.eof);
      w.key("restarts").value(w2.restarts);
      w.key("consecutive_crashes").value(
          static_cast<std::int64_t>(w2.consecutive_crashes));
      w.end_object();
    }
  }
  w.end_array();
  w.key("breaker").begin_object();
  w.key("tripped").value(s.tripped);
  w.key("trips").value(s.crashloop_trips);
  w.end_object();
  w.key("uptime_seconds").value(s.uptime_seconds);
  w.key("draining").value(s.draining);
  w.end_object();
}

}  // namespace sssp::serve
