// Minimal POSIX TCP transport for the query service (docs/SERVING.md,
// "Transports").
//
// Socket mode frames every request/response as a 4-byte little-endian
// length prefix followed by the JSON payload. The length is validated
// against kMaxFrameBytes before any allocation, so a hostile or corrupt
// prefix cannot drive an allocation bomb; a short read mid-frame is a
// torn frame (ServeError), distinct from the clean EOF between frames
// that ends a connection.
//
// All helpers throw ServeError (with errno detail) on failure — the
// server maps startup failures (bind/listen) to exit code 15
// (kExitServeStartup, docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sssp::serve {

class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Creates a listening IPv4 socket on 127.0.0.1:port (SO_REUSEADDR,
// backlog 64). port 0 asks the kernel for a free port — read it back
// with bound_port(). Returns the listening fd.
int listen_tcp(std::uint16_t port);

// The locally bound port of a listening socket (for port 0).
std::uint16_t bound_port(int listen_fd);

// Blocking accept. Returns the connection fd, or -1 on EINTR so the
// caller can poll its shutdown flag and come back.
int accept_conn(int listen_fd);

// Blocking connect to 127.0.0.1:port. Returns the connected fd.
int connect_tcp(std::uint16_t port);

// Reads one length-prefixed frame. Returns false on clean EOF at a
// frame boundary; throws ServeError on torn frames, read errors, or a
// length prefix exceeding kMaxFrameBytes.
bool read_frame(int fd, std::string& payload);

// Writes one length-prefixed frame (retries on short writes/EINTR).
void write_frame(int fd, std::string_view payload);

// Fault drill (`serve.response.torn_write`, socket flavor): writes a
// frame whose length prefix matches only the first half of the payload
// — framing survives, so the client sees a parse failure on this one
// response and the connection stays usable.
void write_torn_frame(int fd, std::string_view payload);

}  // namespace sssp::serve
