#include "serve/admission.hpp"

#include <stdexcept>
#include <string>

namespace sssp::serve {

const char* to_string(ShedPolicy policy) noexcept {
  switch (policy) {
    case ShedPolicy::kRejectNew: return "reject-new";
    case ShedPolicy::kDropOldest: return "drop-oldest";
  }
  return "unknown";
}

ShedPolicy parse_shed_policy(std::string_view name) {
  if (name == "reject-new") return ShedPolicy::kRejectNew;
  if (name == "drop-oldest") return ShedPolicy::kDropOldest;
  throw std::invalid_argument("unknown shed policy '" + std::string(name) +
                              "' (expected reject-new or drop-oldest)");
}

AdmissionQueue::AdmissionQueue(std::size_t capacity, ShedPolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

AdmissionQueue::PushOutcome AdmissionQueue::push(Ticket ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  PushOutcome outcome;
  if (closed_) {
    outcome.rejected = std::move(ticket);
    return outcome;
  }
  if (queue_.size() >= capacity_) {
    if (policy_ == ShedPolicy::kRejectNew) {
      outcome.rejected = std::move(ticket);
      return outcome;
    }
    outcome.displaced = std::move(queue_.front());
    queue_.pop_front();
  }
  queue_.push_back(std::move(ticket));
  outcome.admitted = true;
  cv_.notify_one();
  return outcome;
}

std::optional<AdmissionQueue::Popped> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Popped popped;
  popped.ticket = std::move(queue_.front());
  queue_.pop_front();
  popped.expired =
      std::chrono::steady_clock::now() >= popped.ticket.deadline;
  return popped;
}

std::vector<Ticket> AdmissionQueue::pop_matching(
    const std::function<bool(const Ticket&)>& pred, std::size_t max_count) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Ticket> matched;
  if (max_count == 0) return matched;
  for (auto it = queue_.begin();
       it != queue_.end() && matched.size() < max_count;) {
    if (pred(*it)) {
      matched.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return matched;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::vector<Ticket> AdmissionQueue::drain_remaining() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Ticket> drained(std::make_move_iterator(queue_.begin()),
                              std::make_move_iterator(queue_.end()));
  queue_.clear();
  return drained;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace sssp::serve
