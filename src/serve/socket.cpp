#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace sssp::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ServeError(what + ": " + std::strerror(errno));
}

// Parks until fd is ready for `events` (POLLIN/POLLOUT). EAGAIN can
// surface mid-transfer on an O_NONBLOCK descriptor or after a socket
// timeout; spinning on read() would burn a core, so block in poll()
// instead (poll's own EINTR just re-checks).
void wait_ready(int fd, short events, const char* what) {
  pollfd pfd{fd, events, 0};
  while (::poll(&pfd, 1, -1) < 0) {
    if (errno == EINTR) continue;
    fail(what);
  }
}

// Full read of `size` bytes. Returns bytes read (short only at EOF).
// Retries EINTR (the supervisor's SIGCHLD handler is installed without
// SA_RESTART, so child-death interrupts land mid-syscall here) and
// EAGAIN/EWOULDBLOCK.
std::size_t read_all(int fd, void* buffer, std::size_t size) {
  auto* out = static_cast<char*>(buffer);
  std::size_t total = 0;
  while (total < size) {
    const ssize_t n = ::read(fd, out + total, size - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd, POLLIN, "poll(read)");
        continue;
      }
      fail("read");
    }
    if (n == 0) break;  // EOF
    total += static_cast<std::size_t>(n);
  }
  return total;
}

// MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE
// (→ ServeError the per-connection loop handles), never as a SIGPIPE
// that kills the whole server. The tools additionally SIG_IGN SIGPIPE
// at startup, but this path must be safe even in embedders that
// don't. send() only works on sockets; worker pipes get ENOTSOCK and
// fall back to write() (safe there: pipes raise SIGPIPE only when the
// supervisor is gone, and the supervisor ignores SIGPIPE).
void write_all(int fd, const void* buffer, std::size_t size) {
  const auto* in = static_cast<const char*>(buffer);
  std::size_t total = 0;
  bool use_send = true;
  while (total < size) {
    ssize_t n;
    if (use_send) {
      n = ::send(fd, in + total, size - total, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_send = false;
        continue;
      }
    } else {
      n = ::write(fd, in + total, size - total);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd, POLLOUT, "poll(write)");
        continue;
      }
      fail("write");
    }
    total += static_cast<std::size_t>(n);
  }
}

void write_prefixed(int fd, std::string_view payload, std::size_t claim) {
  unsigned char prefix[4];
  prefix[0] = static_cast<unsigned char>(claim & 0xff);
  prefix[1] = static_cast<unsigned char>((claim >> 8) & 0xff);
  prefix[2] = static_cast<unsigned char>((claim >> 16) & 0xff);
  prefix[3] = static_cast<unsigned char>((claim >> 24) & 0xff);
  write_all(fd, prefix, sizeof prefix);
  write_all(fd, payload.data(), payload.size());
}

}  // namespace

int listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
    ::close(fd);
    fail("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    fail("listen");
  }
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail("getsockname");
  return ntohs(addr.sin_port);
}

int accept_conn(int listen_fd) {
  // Injected fd exhaustion: behaves exactly like the real EMFILE
  // branch below so CI can drill the accept loop without an ulimit.
  if (SSSP_FAILPOINT("serve.accept.emfile")) {
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global().counter("serve.accept.emfile").add(1);
    return -1;
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return -1;
    // Descriptor exhaustion is transient — connections in flight will
    // close and free fds — so it must NOT escalate to ServeError (which
    // tears the whole accept loop down, exit 15). Drop this connection
    // attempt (the kernel keeps it in the backlog; the client blocks or
    // retries) and count it.
    if (errno == EMFILE || errno == ENFILE) {
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("serve.accept.emfile").add(1);
      return -1;
    }
    fail("accept");
  }
  return fd;
}

int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    fail("connect 127.0.0.1:" + std::to_string(port));
  }
  return fd;
}

bool read_frame(int fd, std::string& payload) {
  unsigned char prefix[4];
  const std::size_t got = read_all(fd, prefix, sizeof prefix);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof prefix) throw ServeError("torn frame: short length prefix");
  const std::uint32_t length = static_cast<std::uint32_t>(prefix[0]) |
                               (static_cast<std::uint32_t>(prefix[1]) << 8) |
                               (static_cast<std::uint32_t>(prefix[2]) << 16) |
                               (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (length > kMaxFrameBytes)
    throw ServeError("frame length " + std::to_string(length) +
                     " exceeds limit " + std::to_string(kMaxFrameBytes));
  payload.resize(length);
  if (read_all(fd, payload.data(), length) < length)
    throw ServeError("torn frame: EOF inside payload");
  return true;
}

void write_frame(int fd, std::string_view payload) {
  write_prefixed(fd, payload, payload.size());
}

void write_torn_frame(int fd, std::string_view payload) {
  const std::size_t half = payload.size() / 2;
  write_prefixed(fd, payload.substr(0, half), half);
}

}  // namespace sssp::serve
