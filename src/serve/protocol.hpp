// Wire protocol for the SSSP query service (docs/SERVING.md).
//
// Requests and responses are single JSON objects. Two transports carry
// them: newline-delimited JSON over stdin/stdout (pipe mode) and
// 4-byte little-endian length-prefixed frames over TCP (socket mode).
// The parser is a hard input firewall: a request is either validated
// into a typed Request (ids, vertex ranges, finite numbers, bounded
// target lists) or rejected into a structured `invalid` response — a
// poisoned request must never reach the execution pipeline or take the
// server down.
//
// Response statuses (stable strings, see docs/SERVING.md):
//   ok            query executed; payload carries the result summary
//   overloaded    shed by the admission queue; retry_after_ms hints when
//   expired       per-query deadline passed (in queue or mid-run)
//   invalid       request rejected by the parser/validator (no retry)
//   error         handler failed (crash failpoint, certification, ...)
//   shutting_down server is draining; retry against a replica or later
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.hpp"

namespace sssp::serve {

enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,
  kExpired = 2,
  kInvalid = 3,
  kError = 4,
  kShuttingDown = 5,
};

const char* to_string(Status status) noexcept;

// Validated query request. `cmd` distinguishes real queries from the
// control verbs, all served inline without touching the admission
// queue: "info" (graph shape + server limits), "health" (liveness:
// answers as long as the process can parse and respond), and "ready"
// (readiness: ok only when the process is accepting new queries — the
// supervisor reports false until at least one worker is live, a
// draining server reports false).
struct Request {
  std::string id;
  std::string cmd = "query";  // "query" | "info" | "health" | "ready"
  graph::VertexId source = 0;
  // near-far | dijkstra | delta-stepping | self-tuning; empty selects
  // the server default.
  std::string algorithm;
  // Per-query wall-clock budget; 0 selects the server default, which
  // may be "none". Measured from *admission*, so time spent queued
  // counts against it.
  double deadline_ms = 0.0;
  // Certify the result before responding. -1 = server default.
  int verify = -1;
  // Vertices whose distances the response should carry verbatim
  // (bounded by kMaxTargets).
  std::vector<graph::VertexId> targets;
  // Algorithm knobs (validated finite; part of the cache key).
  double set_point = 0.0;   // self-tuning only; 0 = server default
  std::uint64_t delta = 0;  // delta-stepping/near-far; 0 = mean weight
};

// Upper bound on per-request target lists: a request asking for a
// million distances is a memory-amplification attack, not a query.
inline constexpr std::size_t kMaxTargets = 64;
// Upper bound on a serialized request/response frame.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

struct ParsedRequest {
  bool ok = false;
  Request request;    // valid when ok
  std::string error;  // parse/validation detail when !ok
};

// Parses and validates one request document. `num_vertices` bounds
// source/target ids. Never throws on malformed input.
ParsedRequest parse_request(std::string_view line,
                            std::uint64_t num_vertices);

struct TargetDistance {
  graph::VertexId vertex = 0;
  graph::Distance distance = graph::kInfiniteDistance;
};

// Server -> client message. Exactly one per query request.
struct Response {
  std::string id;
  Status status = Status::kOk;
  std::string error;            // detail for non-ok statuses
  double retry_after_ms = 0.0;  // > 0 on overloaded / shutting_down
  // ok payload:
  std::string algorithm;
  std::uint64_t reached = 0;
  std::uint64_t iterations = 0;
  std::uint64_t improving_relaxations = 0;
  // FNV-1a 64 over the raw distance array: lets a client compare
  // answers across replicas/retries without shipping the array.
  std::uint64_t dist_checksum = 0;
  std::vector<TargetDistance> targets;
  bool cache_hit = false;
  bool verified = false;   // certification ran
  bool certified = false;  // ... and passed
  double queue_ms = 0.0;   // admission -> execution start
  double run_ms = 0.0;     // execution (solve + certify)
  // info payload (cmd == "info"):
  bool has_info = false;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t workers = 0;
  std::uint64_t cache_entries = 0;
  bool draining = false;
  // health/ready payload (cmd == "health" | "ready"):
  bool has_health = false;
  std::string role;  // "server" | "supervisor"
  bool ready = false;
  std::uint64_t workers_alive = 0;
  std::uint64_t workers_total = 0;
  std::uint64_t restarts = 0;
};

// One JSON object, no trailing newline (the transport adds framing).
// The supervisor uses this to re-serialize a validated request under
// its own routing id before forwarding to a worker (client ids are not
// unique across connections, so they cannot key the in-flight table).
std::string format_request(const Request& request);

// One JSON object, no trailing newline (the transport adds framing).
std::string format_response(const Response& response);

// Parses a response document (the client side). Returns false on
// malformed input (e.g. a torn write) leaving `out` unspecified.
bool parse_response(std::string_view text, Response& out);

}  // namespace sssp::serve
