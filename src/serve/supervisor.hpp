// Crash-isolated multi-process serving (docs/SERVING.md, "Process
// model & crash isolation").
//
// The single-process Server contains faults to one *response* — but a
// hard crash (SIGSEGV, abort, OOM-kill) still takes down every
// in-flight query, the result cache, and the listening socket with it.
// The Supervisor moves that blast radius down to one *worker process*:
//
//   client transport -> Supervisor (owns the listening socket)
//       -> parse firewall (same protocol.hpp validator)
//       -> per-worker UNIX socketpair, u32-LE framing (socket.hpp)
//       -> worker process: sssp_server --worker-fd N running the
//          ordinary serve::Server loop over the shared mmap'd graph
//          (graph/mmap_cache.hpp — N workers, one physical copy)
//
// Fault handling, in order of escalation:
//   - worker crash: detected via socket EOF + SIGCHLD/waitpid; the
//     dead worker's in-flight queries are re-dispatched to survivors
//     (exactly-one-response preserved) until a per-query retry budget
//     is exhausted, after which the client gets the standard
//     overloaded + retry_after_ms shed;
//   - worker hang (serve.worker.hang): a per-query routing deadline
//     expires and the supervisor SIGKILLs the worker, which turns the
//     hang into the crash path above;
//   - repeated crashes: workers restart with exponential backoff, and
//     a crash-loop circuit breaker (K crashes in a W-second window)
//     stops restarting, sheds everything, and reports tripped() so the
//     tool can drain and exit with kExitCrashLoop (16).
//
// The supervisor answers "health" / "ready" / "info" verbs inline (it
// must stay responsive while the whole fleet is mid-restart) and
// forwards only validated "query" requests, re-keyed under an internal
// routing id because client ids are not unique across connections.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace sssp::serve {

struct SupervisorOptions {
  // Worker fleet size.
  std::size_t workers = 2;
  // argv of the worker process; the supervisor appends
  // "--worker-fd <fd>" at spawn (fd = the worker's socketpair end).
  std::vector<std::string> worker_command;
  // Bound on queries parked while no worker is ready; overflow sheds
  // with the standard overloaded + retry_after_ms reply.
  std::size_t queue_capacity = 64;
  // Crash/hang re-dispatches allowed per query before it is shed.
  int redispatch_budget = 3;
  // Routing deadline for queries that carry no deadline_ms of their
  // own (0 disables): a worker that holds a query longer than
  // deadline + hang_grace_ms is presumed hung and SIGKILLed.
  double query_timeout_ms = 30000.0;
  double hang_grace_ms = 2000.0;
  // Restart backoff: base doubles per consecutive crash of the same
  // slot (reset when the replacement reports ready), capped.
  double restart_backoff_ms = 100.0;
  double restart_backoff_max_ms = 5000.0;
  // Crash-loop circuit breaker: this many crashes (any slot) within
  // the window trips it — no further restarts, pending work shed.
  int crash_loop_k = 5;
  double crash_loop_window_s = 30.0;
  // Budget for start() to see the first worker become ready, and for
  // drain() to see workers exit before SIGTERM/SIGKILL escalation.
  double start_timeout_ms = 30000.0;
  double drain_ms = 5000.0;
};

struct SupervisorStats {
  std::uint64_t received = 0;
  std::uint64_t invalid = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t responses = 0;   // every client response, any status
  std::uint64_t completed = 0;   // ok responses relayed from workers
  std::uint64_t redispatched = 0;
  std::uint64_t shed_retry_exhausted = 0;
  std::uint64_t shed_parked_overflow = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t hang_kills = 0;
  std::uint64_t crashloop_trips = 0;
  std::size_t workers_ready = 0;
  std::size_t workers_total = 0;
  std::size_t pending = 0;  // dispatched + parked, awaiting resolution
  bool tripped = false;
  bool draining = false;
  double uptime_seconds = 0.0;
};

class Supervisor {
 public:
  using ResponseSink = std::function<void(const Response&)>;
  using Clock = std::chrono::steady_clock;

  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Spawns the fleet and the monitor thread, then blocks until the
  // first worker reports ready (learning the graph shape for the parse
  // firewall). Throws ServeError if no worker comes up within
  // start_timeout_ms — the tool maps that to exit 15 like any other
  // startup failure.
  void start();

  // Same contract as Server::submit: exactly one response per request,
  // delivered through `sink` — inline for parse failures, control
  // verbs, and sheds; from a worker reader thread for executed
  // queries. Sink calls are serialized; sinks must not call back in.
  void submit(std::string_view line, ResponseSink sink);

  // Graceful drain: stop admitting, let workers finish in-flight work
  // (EOF on their socketpairs), shed whatever outlasts drain_ms, then
  // reap every child (SIGTERM -> SIGKILL escalation). Idempotent;
  // blocks until the fleet is reaped.
  void drain();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }
  // True once the crash-loop breaker fired; the owner should drain and
  // exit with kExitCrashLoop.
  bool tripped() const noexcept {
    return tripped_.load(std::memory_order_acquire);
  }

  SupervisorStats stats() const;
  std::uint64_t graph_fingerprint() const noexcept {
    return fingerprint_.load(std::memory_order_acquire);
  }

  // Final run report ("tunesssp.supervisor.v1"): options, totals,
  // per-slot restart counts, breaker state.
  void write_report(std::ostream& out) const;

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;               // supervisor end of the socketpair
    std::uint64_t generation = 0;
    bool ready = false;        // ready frame received, accepts queries
    bool reaped = true;        // no live process on this slot
    bool eof = false;          // reader saw EOF/error (death suspected)
    int consecutive_crashes = 0;
    Clock::time_point restart_at{};  // when != {}, restart is scheduled
    std::uint64_t restarts = 0;
    std::thread reader;
    // Serializes frames onto fd (submit vs redispatch vs parked flush).
    std::unique_ptr<std::mutex> write_mu = std::make_unique<std::mutex>();
  };

  struct PendingQuery {
    Request request;        // original client request (original id)
    ResponseSink sink;
    int attempts = 0;       // dispatches so far
    int worker_slot = -1;   // -1 while parked
    std::uint64_t worker_generation = 0;
    Clock::time_point dispatched_at{};
    Clock::time_point route_deadline{};  // {} = no routing deadline
  };

  // A frame write staged under mu_ and executed after unlock — a slow
  // or hung worker must never stall routing for the whole fleet.
  struct Dispatch {
    int slot = -1;
    std::uint64_t generation = 0;
    int fd = -1;
    std::mutex* write_mu = nullptr;
    std::string frame;
    std::string seq_id;
  };

  void spawn_worker(std::size_t slot);
  void reader_loop(std::size_t slot, std::uint64_t generation, int fd);
  void monitor_loop();
  void handle_worker_exit_locked(
      std::size_t slot, bool crashed,
      std::vector<std::pair<Response, ResponseSink>>& out_responses,
      std::vector<Dispatch>& out_dispatches);
  // Dispatches (or parks) one pending query; assumes mu_ held. Sheds
  // via out_responses when the retry budget is gone; stages the worker
  // write via out_dispatches.
  void route_locked(std::string seq_id, PendingQuery&& query,
                    std::vector<std::pair<Response, ResponseSink>>&
                        out_responses,
                    std::vector<Dispatch>& out_dispatches);
  void flush_parked_locked(std::vector<std::pair<Response, ResponseSink>>&
                               out_responses);
  int pick_ready_worker_locked();
  void deliver(const Response& response, const ResponseSink& sink);
  void deliver_all(std::vector<std::pair<Response, ResponseSink>>& responses);
  // Executes staged actions outside mu_: client responses first, then
  // worker writes (failed writes re-route and loop until settled).
  void perform(std::vector<std::pair<Response, ResponseSink>>& responses);
  void perform(std::vector<std::pair<Response, ResponseSink>>& responses,
               std::vector<Dispatch>& dispatches);
  Response make_shed(const std::string& id, Status status, std::string error,
                     bool with_retry) const;
  void trip_breaker_locked(std::vector<std::pair<Response, ResponseSink>>&
                               out_responses);

  const SupervisorOptions options_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> tripped_{false};
  std::atomic<bool> stop_monitor_{false};
  std::mutex drain_mu_;

  // Graph shape learned from the first worker's ready frame; gates the
  // parse firewall and the inline info verb.
  std::atomic<std::uint64_t> num_vertices_{0};
  std::atomic<std::uint64_t> num_edges_{0};
  std::atomic<std::uint64_t> fingerprint_{0};
  std::atomic<std::uint64_t> worker_queue_capacity_{0};
  std::atomic<std::uint64_t> worker_cache_entries_{0};

  mutable std::mutex mu_;  // workers_, pending_, parked_, crash window
  std::condition_variable monitor_cv_;
  std::condition_variable ready_cv_;
  std::vector<Worker> workers_;
  std::map<std::string, PendingQuery> pending_;  // keyed by routing id
  std::deque<std::string> parked_;               // FIFO of routing ids
  // Writes staged by code paths that cannot carry a dispatch vector
  // (flush on worker-ready); drained by the next perform().
  std::vector<Dispatch> pending_dispatches_;
  std::deque<Clock::time_point> crash_times_;
  std::uint64_t next_seq_ = 0;
  std::size_t round_robin_ = 0;
  std::thread monitor_;

  std::mutex respond_mu_;  // serializes client sink invocations
  std::chrono::steady_clock::time_point start_time_{};

  std::atomic<std::uint64_t> received_{0}, invalid_{0}, forwarded_{0},
      responses_{0}, completed_{0}, redispatched_{0},
      shed_retry_exhausted_{0}, shed_parked_overflow_{0}, shed_draining_{0},
      worker_crashes_{0}, worker_restarts_{0}, hang_kills_{0},
      crashloop_trips_{0};
};

}  // namespace sssp::serve
