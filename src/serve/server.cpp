#include "serve/server.hpp"

#include <algorithm>
#include <ostream>
#include <span>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "graph/binary_io.hpp"
#include "obs/json.hpp"
#include "res/budget.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"
#include "verify/certifier.hpp"

namespace sssp::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Mirrors an event into the global metrics registry when the obs gate
// is on (the server's own counters are always-on regardless).
void bump(const char* name) {
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter(name).add(1);
}

void set_gauge(const char* name, double value) {
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().gauge(name).set(value);
}

void record_hist(const char* name, double value) {
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().histogram(name).record(value);
}

}  // namespace

Server::Server(const graph::CsrGraph& graph, ServerOptions options)
    : graph_(graph),
      options_(std::move(options)),
      fingerprint_(ckpt::graph_fingerprint(graph)),
      queue_(options_.queue_capacity, options_.shed_policy),
      cache_(options_.cache_entries, options_.cache_max_bytes),
      active_controls_(std::max<std::size_t>(1, options_.workers)) {
  for (auto& slot : active_controls_) slot.store(nullptr);
}

Server::~Server() {
  if (started_.load() && !drained_.load()) drain();
}

void Server::start() {
  if (started_.exchange(true)) return;
  start_time_ = Clock::now();
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

double Server::retry_after_ms_hint() const {
  const double per_query = ewma_run_ms_.load(std::memory_order_relaxed);
  const double workers =
      static_cast<double>(std::max<std::size_t>(1, options_.workers));
  const double depth = static_cast<double>(queue_.depth() + 1);
  return std::clamp(depth * per_query / workers, 10.0, 2000.0);
}

Response Server::make_shed(const Request& request, Status status,
                           std::string error, bool with_retry) {
  Response response;
  response.id = request.id;
  response.status = status;
  response.error = std::move(error);
  if (with_retry) response.retry_after_ms = retry_after_ms_hint();
  return response;
}

void Server::respond_sink(const ResponseSink& sink,
                          const Response& response) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(respond_mu_);
  if (sink) sink(response);
}

void Server::respond(const Ticket& ticket, Response&& response) {
  respond_sink(ticket.respond, response);
}

void Server::submit(std::string_view line, ResponseSink sink) {
  received_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.received");

  ParsedRequest parsed = parse_request(line, graph_.num_vertices());
  if (!parsed.ok) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.invalid");
    Response response;
    response.id = parsed.request.id;
    response.status = Status::kInvalid;
    response.error = parsed.error;
    respond_sink(sink, response);
    return;
  }

  if (parsed.request.cmd == "info") {
    Response response;
    response.id = parsed.request.id;
    response.status = Status::kOk;
    response.has_info = true;
    response.num_vertices = graph_.num_vertices();
    response.num_edges = graph_.num_edges();
    response.graph_fingerprint = fingerprint_;
    response.queue_capacity = queue_.capacity();
    response.workers = std::max<std::size_t>(1, options_.workers);
    response.cache_entries = cache_.capacity();
    response.draining = draining();
    respond_sink(sink, response);
    return;
  }

  if (parsed.request.cmd == "health" || parsed.request.cmd == "ready") {
    // Liveness/readiness, served inline. A single-process server is
    // ready exactly while it is started and not draining; health
    // answers as long as submit() runs at all.
    const bool ready = started_.load(std::memory_order_acquire) &&
                       !draining();
    Response response;
    response.id = parsed.request.id;
    response.status = parsed.request.cmd == "ready" && !ready
                          ? Status::kShuttingDown
                          : Status::kOk;
    if (response.status != Status::kOk) {
      response.error = "server draining";
      response.retry_after_ms = retry_after_ms_hint();
    }
    response.has_health = true;
    response.role = "server";
    response.ready = ready;
    response.workers_alive = ready ? std::max<std::size_t>(1, options_.workers)
                                   : 0;
    response.workers_total = std::max<std::size_t>(1, options_.workers);
    respond_sink(sink, response);
    return;
  }

  if (draining()) {
    shed_draining_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.shed.draining");
    respond_sink(sink, make_shed(parsed.request, Status::kShuttingDown,
                                 "server draining", true));
    return;
  }

  // Memory-aware admission: project the footprint of every query that
  // could be solving or waiting if this one is admitted, and shed with
  // a retry hint when it exceeds the process memory budget's headroom.
  // Shedding here — before the queue — means overload never turns into
  // an OOM kill mid-solve; the client retries exactly as it does for a
  // full queue. Inert unless a budget limit is configured or the
  // res.serve.admit failpoint is armed.
  {
    const std::uint64_t footprint =
        options_.query_footprint_bytes != 0
            ? options_.query_footprint_bytes
            : 2 * static_cast<std::uint64_t>(graph_.num_vertices()) *
                  (sizeof(graph::Distance) + sizeof(graph::VertexId));
    const std::uint64_t projected =
        footprint * (in_flight_.load(std::memory_order_relaxed) +
                     queue_.depth() + 1);
    if (!res::ResourceBudget::global().check_memory(projected,
                                                    "res.serve.admit")) {
      shed_memory_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.shed.memory");
      respond_sink(sink, make_shed(parsed.request, Status::kOverloaded,
                                   "memory budget exceeded", true));
      return;
    }
  }

  Ticket ticket;
  ticket.request = std::move(parsed.request);
  ticket.admitted_at = Clock::now();
  ticket.respond = std::move(sink);
  double deadline_ms = ticket.request.deadline_ms > 0.0
                           ? ticket.request.deadline_ms
                           : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    // Clamp absurd budgets so the time_point addition cannot overflow
    // (mirrors util::RunControl::set_deadline's guard).
    deadline_ms = std::min(deadline_ms, 1e12);
    ticket.deadline =
        ticket.admitted_at +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }

  // Injected admission failure: behave exactly as if the queue were
  // full so clients exercise their retry path under any real load.
  const bool forced_full = SSSP_FAILPOINT("serve.queue.full");
  AdmissionQueue::PushOutcome outcome;
  if (!forced_full) outcome = queue_.push(std::move(ticket));
  set_gauge("serve.queue.depth", static_cast<double>(queue_.depth()));
  if (!outcome.admitted) {
    // The ticket was either never pushed (forced_full) or handed back
    // by the queue — either way the response sink is still ours.
    Ticket shed =
        forced_full ? std::move(ticket) : std::move(*outcome.rejected);
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.shed.queue_full");
    respond(shed, make_shed(shed.request, Status::kOverloaded,
                            forced_full ? "queue full (injected)"
                                        : "queue full",
                            true));
    return;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.admitted");
  if (outcome.displaced.has_value()) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.shed.queue_full");
    respond(*outcome.displaced,
            make_shed(outcome.displaced->request, Status::kOverloaded,
                      "displaced by newer query (drop-oldest)", true));
  }
}

bool Server::batchable(const Ticket& ticket) const {
  if (ticket.request.cmd != "query") return false;
  // Deadline-free only: a coalesced run has no per-lane interruption,
  // so a tight deadline must not be hostage to its batchmates.
  if (ticket.deadline != Clock::time_point::max()) return false;
  const std::string& algorithm = ticket.request.algorithm.empty()
                                     ? options_.default_algorithm
                                     : ticket.request.algorithm;
  return algorithm == "near-far";
}

void Server::worker_loop(std::size_t worker_id) {
  for (;;) {
    std::optional<AdmissionQueue::Popped> popped = queue_.pop();
    if (!popped.has_value()) return;  // closed and drained
    set_gauge("serve.queue.depth", static_cast<double>(queue_.depth()));
    Ticket& ticket = popped->ticket;
    const double queue_ms = ms_between(ticket.admitted_at, Clock::now());
    queue_wait_ms_.record(queue_ms);
    record_hist("serve.queue_wait.ms", queue_ms);
    if (popped->expired) {
      // Shed before execution: the deadline passed while queued.
      shed_expired_queue_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.shed.expired");
      Response response = make_shed(ticket.request, Status::kExpired,
                                    "deadline expired in queue", false);
      response.queue_ms = queue_ms;
      respond(ticket, std::move(response));
      continue;
    }

    // Query coalescing: drain queued queries compatible with the one
    // just popped (same effective algorithm/delta/verify, deadline-free)
    // into one batched run. The matched tickets left the queue exactly
    // as a pop would, so in_flight_ covers the whole batch before any
    // of it executes — drain sees them as running work, not lost slots.
    std::vector<Ticket> batch;
    if (options_.batch_max > 1 && batchable(ticket)) {
      const Request& head = ticket.request;
      const int head_verify = head.verify >= 0
                                  ? head.verify
                                  : (options_.verify_default ? 1 : 0);
      batch = queue_.pop_matching(
          [&](const Ticket& other) {
            if (!batchable(other)) return false;
            if (other.request.delta != head.delta) return false;
            const int other_verify =
                other.request.verify >= 0
                    ? other.request.verify
                    : (options_.verify_default ? 1 : 0);
            return other_verify == head_verify;
          },
          std::min(options_.batch_max - 1, algo::kMaxBatchLanes - 1));
      set_gauge("serve.queue.depth", static_cast<double>(queue_.depth()));
    }

    if (batch.empty()) {
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      execute(ticket, worker_id);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    batch.insert(batch.begin(), std::move(ticket));
    in_flight_.fetch_add(batch.size(), std::memory_order_acq_rel);
    execute_batch(batch, worker_id);
    in_flight_.fetch_sub(batch.size(), std::memory_order_acq_rel);
  }
}

void Server::execute(Ticket& ticket, std::size_t worker_id) {
  const Request& request = ticket.request;
  const Clock::time_point exec_start = Clock::now();
  const double queue_ms = ms_between(ticket.admitted_at, exec_start);

  util::RunControl control;
  active_controls_[worker_id].store(&control, std::memory_order_release);
  // Clear the slot on every exit path so drain never pokes a dead
  // control.
  struct SlotGuard {
    std::atomic<util::RunControl*>& slot;
    ~SlotGuard() { slot.store(nullptr, std::memory_order_release); }
  } slot_guard{active_controls_[worker_id]};

  try {
    if (SSSP_FAILPOINT("serve.handler.crash"))
      throw std::runtime_error("injected handler crash");

    if (ticket.deadline != Clock::time_point::max()) {
      const double remaining_s =
          std::chrono::duration<double>(ticket.deadline - Clock::now())
              .count();
      if (remaining_s <= 0.0) {
        shed_expired_queue_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.shed.expired");
        Response response = make_shed(request, Status::kExpired,
                                      "deadline expired in queue", false);
        response.queue_ms = queue_ms;
        respond(ticket, std::move(response));
        return;
      }
      control.set_deadline(remaining_s);
    }

    const std::string algorithm = request.algorithm.empty()
                                      ? options_.default_algorithm
                                      : request.algorithm;
    const bool verify = request.verify >= 0
                            ? request.verify != 0
                            : options_.verify_default;
    const double set_point =
        request.set_point > 0.0 ? request.set_point : options_.set_point;

    CacheKey key;
    key.fingerprint = fingerprint_;
    key.source = request.source;
    key.options_key = cache_options_key(
        algorithm, request.delta,
        algorithm == "self-tuning" ? set_point : 0.0);

    std::shared_ptr<const CacheEntry> entry = cache_.lookup(key);
    const bool cache_hit = entry != nullptr;
    bump(cache_hit ? "serve.cache.hit" : "serve.cache.miss");

    if (!cache_hit) {
      algo::SsspResult result;
      if (algorithm == "dijkstra") {
        result = algo::dijkstra(graph_, request.source);
      } else if (algorithm == "delta-stepping") {
        result = algo::delta_stepping(
            graph_, request.source,
            {.delta = static_cast<graph::Distance>(request.delta)});
      } else if (algorithm == "self-tuning") {
        core::SelfTuningOptions st;
        st.set_point = set_point;
        st.control = &control;
        result = core::self_tuning_sssp(graph_, request.source, st);
      } else {  // near-far (the validated default)
        algo::NearFarOptions nf;
        nf.delta = static_cast<graph::Distance>(request.delta);
        nf.control = &control;
        result = algo::near_far(graph_, request.source, nf);
      }
      auto fresh = std::make_shared<CacheEntry>();
      fresh->result = std::move(result);
      fresh->dist_checksum = graph::fnv1a64(
          fresh->result.distances.data(),
          fresh->result.distances.size() * sizeof(graph::Distance));
      entry = std::move(fresh);
    }

    bool verified = false;
    bool certified = false;
    if (verify) {
      const verify::Certificate certificate =
          verify::certify(graph_, entry->result);
      verified = true;
      certified = certificate.certified;
      if (!certified) {
        certification_failures_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.certification.failed");
        if (cache_hit) {
          // Poisoned cache entry: quarantine it so the next query for
          // this key recomputes instead of re-serving the corruption.
          cache_poisoned_.fetch_add(1, std::memory_order_relaxed);
          bump("serve.cache.poisoned");
          cache_.invalidate(key);
        }
        Response response;
        response.id = request.id;
        response.status = Status::kError;
        response.error =
            std::string(cache_hit ? "cached result" : "result") +
            " failed certification: " + certificate.summary();
        response.queue_ms = queue_ms;
        response.run_ms = ms_between(exec_start, Clock::now());
        respond(ticket, std::move(response));
        return;
      }
    }

    // Only certified (or verification-waived) fresh results enter the
    // cache; the insert-side serve.cache.flip drill poisons *after*
    // this point by construction.
    if (!cache_hit) cache_.insert(key, entry);

    Response response;
    response.id = request.id;
    response.status = Status::kOk;
    response.algorithm = algorithm;
    response.reached = entry->result.reached_count();
    response.iterations = entry->result.num_iterations();
    response.improving_relaxations = entry->result.improving_relaxations;
    response.dist_checksum = entry->dist_checksum;
    response.cache_hit = cache_hit;
    response.verified = verified;
    response.certified = certified;
    response.queue_ms = queue_ms;
    response.run_ms = ms_between(exec_start, Clock::now());
    response.targets.reserve(request.targets.size());
    for (const graph::VertexId v : request.targets)
      response.targets.push_back(
          TargetDistance{v, entry->result.distances[v]});

    if (!cache_hit)
      maybe_sample(request.id, request.source, algorithm,
                   entry->result.iterations, /*batched=*/false);

    const double total_ms = queue_ms + response.run_ms;
    latency_ms_.record(total_ms);
    record_hist("serve.latency.ms", total_ms);
    const double prev = ewma_run_ms_.load(std::memory_order_relaxed);
    ewma_run_ms_.store(0.8 * prev + 0.2 * response.run_ms,
                       std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.completed");
    respond(ticket, std::move(response));
  } catch (const util::StopRequested& stopped) {
    Response response;
    response.id = request.id;
    response.queue_ms = queue_ms;
    response.run_ms = ms_between(exec_start, Clock::now());
    if (stopped.reason() == util::StopReason::kDeadline) {
      expired_running_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.expired.running");
      response.status = Status::kExpired;
      response.error = "deadline expired during execution";
    } else {
      drain_aborted_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.drain.aborted");
      response.status = Status::kShuttingDown;
      response.error = "aborted by drain";
      response.retry_after_ms = 1000.0;
    }
    respond(ticket, std::move(response));
  } catch (const std::exception& e) {
    handler_errors_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.handler.error");
    Response response;
    response.id = request.id;
    response.status = Status::kError;
    response.error = e.what();
    response.queue_ms = queue_ms;
    response.run_ms = ms_between(exec_start, Clock::now());
    respond(ticket, std::move(response));
  }
}

void Server::maybe_sample(
    const std::string& id, graph::VertexId source,
    const std::string& algorithm,
    const std::vector<frontier::IterationStats>& iterations, bool batched) {
  if (options_.sample_reports == 0) return;
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (samples_.size() >= options_.sample_reports) return;
  SampledReport sample;
  sample.id = id;
  sample.source = source;
  sample.algorithm = algorithm;
  sample.batched = batched;
  sample.iterations = iterations;
  samples_.push_back(std::move(sample));
}

void Server::execute_batch(std::vector<Ticket>& batch,
                           std::size_t worker_id) {
  const Clock::time_point exec_start = Clock::now();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(batch.size(), std::memory_order_relaxed);
  bump("serve.batch.runs");
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter("serve.batch.queries")
        .add(batch.size());

  // All tickets share one effective algorithm/delta/verify by
  // construction (worker_loop's compatibility predicate).
  const Request& head = batch.front().request;
  const bool verify = head.verify >= 0 ? head.verify != 0
                                       : options_.verify_default;
  CacheKey key_template;
  key_template.fingerprint = fingerprint_;
  key_template.options_key =
      cache_options_key("near-far", head.delta, 0.0);
  const auto key_for = [&](graph::VertexId source) {
    CacheKey key = key_template;
    key.source = source;
    return key;
  };

  // One response per ticket, on every path: `responded` tracks which
  // tickets have been answered so the exception paths below can sweep
  // up exactly the remainder.
  std::vector<bool> responded(batch.size(), false);
  std::vector<double> queue_ms(batch.size(), 0.0);
  for (std::size_t i = 0; i < batch.size(); ++i)
    queue_ms[i] = ms_between(batch[i].admitted_at, exec_start);

  util::RunControl control;
  active_controls_[worker_id].store(&control, std::memory_order_release);
  struct SlotGuard {
    std::atomic<util::RunControl*>& slot;
    ~SlotGuard() { slot.store(nullptr, std::memory_order_release); }
  } slot_guard{active_controls_[worker_id]};

  try {
    if (SSSP_FAILPOINT("serve.handler.crash"))
      throw std::runtime_error("injected handler crash");

    // Cache hits are served out of the batch up front; the remaining
    // tickets dedup by source into lanes of one batched run.
    std::vector<graph::VertexId> sources;
    std::vector<std::size_t> lane_of(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Request& request = batch[i].request;
      const graph::VertexId source = request.source;
      std::shared_ptr<const CacheEntry> hit = cache_.lookup(key_for(source));
      if (hit != nullptr) {
        // Serve the hit out of the batch, with the same read-side
        // re-certification and poisoning quarantine as the single-query
        // path (the serve.cache.flip drill applies to batched traffic
        // too).
        bump("serve.cache.hit");
        Response response;
        response.id = request.id;
        response.queue_ms = queue_ms[i];
        bool certified = false;
        if (verify) {
          const verify::Certificate certificate =
              verify::certify(graph_, hit->result);
          certified = certificate.certified;
          if (!certified) {
            certification_failures_.fetch_add(1, std::memory_order_relaxed);
            bump("serve.certification.failed");
            cache_poisoned_.fetch_add(1, std::memory_order_relaxed);
            bump("serve.cache.poisoned");
            cache_.invalidate(key_for(source));
            response.status = Status::kError;
            response.error = "cached result failed certification: " +
                             certificate.summary();
            response.run_ms = ms_between(exec_start, Clock::now());
            responded[i] = true;
            respond(batch[i], std::move(response));
            continue;
          }
        }
        response.status = Status::kOk;
        response.algorithm = "near-far";
        response.reached = hit->result.reached_count();
        response.iterations = hit->result.num_iterations();
        response.improving_relaxations = hit->result.improving_relaxations;
        response.dist_checksum = hit->dist_checksum;
        response.cache_hit = true;
        response.verified = verify;
        response.certified = certified;
        response.run_ms = ms_between(exec_start, Clock::now());
        response.targets.reserve(request.targets.size());
        for (const graph::VertexId v : request.targets)
          response.targets.push_back(
              TargetDistance{v, hit->result.distances[v]});
        latency_ms_.record(queue_ms[i] + response.run_ms);
        record_hist("serve.latency.ms", queue_ms[i] + response.run_ms);
        completed_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.completed");
        responded[i] = true;
        respond(batch[i], std::move(response));
        continue;
      }
      bump("serve.cache.miss");
      const auto found = std::find(sources.begin(), sources.end(), source);
      lane_of[i] = static_cast<std::size_t>(found - sources.begin());
      if (found == sources.end()) sources.push_back(source);
    }
    if (sources.empty()) return;  // every ticket was a cache hit

    algo::BatchOptions batch_options;
    batch_options.strategy = options_.batch_strategy;
    batch_options.delta = static_cast<graph::Distance>(head.delta);
    batch_options.control = &control;
    const algo::BatchResult result = algo::run_batch(
        graph_,
        std::span<const graph::VertexId>(sources.data(), sources.size()),
        batch_options);

    const double run_ms = ms_between(exec_start, Clock::now());
    // Per-lane finish: checksum, certification verdict, cache insert,
    // then fan the lane's result out to every ticket that asked for it.
    std::vector<std::shared_ptr<const CacheEntry>> entries(sources.size());
    std::vector<bool> lane_certified(sources.size(), false);
    std::vector<std::string> lane_error(sources.size());
    for (std::size_t l = 0; l < sources.size(); ++l) {
      auto fresh = std::make_shared<CacheEntry>();
      fresh->result = result.lanes[l];
      fresh->dist_checksum = graph::fnv1a64(
          fresh->result.distances.data(),
          fresh->result.distances.size() * sizeof(graph::Distance));
      if (verify) {
        const verify::Certificate certificate =
            verify::certify(graph_, fresh->result);
        lane_certified[l] = certificate.certified;
        if (!certificate.certified) {
          certification_failures_.fetch_add(1, std::memory_order_relaxed);
          bump("serve.certification.failed");
          lane_error[l] = "batched result failed certification: " +
                          certificate.summary();
          continue;  // never cache a bad lane
        }
      }
      entries[l] = fresh;
      cache_.insert(key_for(sources[l]), std::move(fresh));
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (responded[i]) continue;
      const Request& request = batch[i].request;
      const std::size_t l = lane_of[i];
      Response response;
      response.id = request.id;
      response.queue_ms = queue_ms[i];
      response.run_ms = run_ms;
      if (entries[l] == nullptr) {
        response.status = Status::kError;
        response.error = lane_error[l];
      } else {
        const CacheEntry& entry = *entries[l];
        response.status = Status::kOk;
        response.algorithm = "near-far";
        response.reached = entry.result.reached_count();
        response.iterations = entry.result.num_iterations();
        response.improving_relaxations = entry.result.improving_relaxations;
        response.dist_checksum = entry.dist_checksum;
        response.cache_hit = false;
        response.verified = verify;
        response.certified = lane_certified[l];
        response.targets.reserve(request.targets.size());
        for (const graph::VertexId v : request.targets)
          response.targets.push_back(
              TargetDistance{v, entry.result.distances[v]});
        maybe_sample(request.id, request.source, "near-far",
                     entry.result.iterations, /*batched=*/true);
        const double total_ms = queue_ms[i] + run_ms;
        latency_ms_.record(total_ms);
        record_hist("serve.latency.ms", total_ms);
        completed_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.completed");
      }
      responded[i] = true;
      respond(batch[i], std::move(response));
    }
    const double per_query_ms = run_ms / static_cast<double>(sources.size());
    const double prev = ewma_run_ms_.load(std::memory_order_relaxed);
    ewma_run_ms_.store(0.8 * prev + 0.2 * per_query_ms,
                       std::memory_order_relaxed);
  } catch (const util::StopRequested& stopped) {
    // One interruption fails the whole coalesced run; every ticket not
    // yet answered still gets its structured response.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (responded[i]) continue;
      Response response;
      response.id = batch[i].request.id;
      response.queue_ms = queue_ms[i];
      response.run_ms = ms_between(exec_start, Clock::now());
      if (stopped.reason() == util::StopReason::kDeadline) {
        expired_running_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.expired.running");
        response.status = Status::kExpired;
        response.error = "deadline expired during execution";
      } else {
        drain_aborted_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.drain.aborted");
        response.status = Status::kShuttingDown;
        response.error = "batched run aborted by drain";
        response.retry_after_ms = 1000.0;
      }
      responded[i] = true;
      respond(batch[i], std::move(response));
    }
  } catch (const std::exception& e) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (responded[i]) continue;
      handler_errors_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.handler.error");
      Response response;
      response.id = batch[i].request.id;
      response.status = Status::kError;
      response.error = e.what();
      response.queue_ms = queue_ms[i];
      response.run_ms = ms_between(exec_start, Clock::now());
      responded[i] = true;
      respond(batch[i], std::move(response));
    }
  }
}

void Server::drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (drained_.load()) return;
  const Clock::time_point drain_start = Clock::now();
  draining_.store(true, std::memory_order_release);
  drain_requested_ = true;

  const Clock::time_point deadline =
      drain_start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            std::max(0.0, options_.drain_ms)));
  bool forced = false;
  for (;;) {
    if (queue_.depth() == 0 && in_flight_.load(std::memory_order_acquire) == 0)
      break;
    if (Clock::now() >= deadline) {
      forced = true;
      // Shed everything still queued with a structured response...
      for (Ticket& ticket : queue_.drain_remaining()) {
        shed_draining_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.shed.draining");
        respond(ticket, make_shed(ticket.request, Status::kShuttingDown,
                                  "shed by drain deadline", true));
      }
      // ...and interrupt in-flight queries through their RunControls
      // (cooperative: dijkstra/delta-stepping finish on their own).
      for (auto& slot : active_controls_)
        if (util::RunControl* control =
                slot.load(std::memory_order_acquire);
            control != nullptr)
          control->request_stop(util::StopReason::kInterrupt);
      while (in_flight_.load(std::memory_order_acquire) != 0 ||
             queue_.depth() != 0) {
        for (Ticket& ticket : queue_.drain_remaining()) {
          shed_draining_.fetch_add(1, std::memory_order_relaxed);
          respond(ticket, make_shed(ticket.request, Status::kShuttingDown,
                                    "shed by drain deadline", true));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  queue_.close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  drain_clean_ = !forced;
  drain_seconds_ =
      std::chrono::duration<double>(Clock::now() - drain_start).count();
  drained_.store(true, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_expired_queue =
      shed_expired_queue_.load(std::memory_order_relaxed);
  s.shed_draining = shed_draining_.load(std::memory_order_relaxed);
  s.shed_memory = shed_memory_.load(std::memory_order_relaxed);
  s.expired_running = expired_running_.load(std::memory_order_relaxed);
  s.drain_aborted = drain_aborted_.load(std::memory_order_relaxed);
  s.handler_errors = handler_errors_.load(std::memory_order_relaxed);
  s.certification_failures =
      certification_failures_.load(std::memory_order_relaxed);
  s.cache_poisoned = cache_poisoned_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  s.queue_depth = queue_.depth();
  s.in_flight = in_flight_.load(std::memory_order_acquire);
  if (started_.load())
    s.uptime_seconds =
        std::chrono::duration<double>(Clock::now() - start_time_).count();
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.completed) / s.uptime_seconds
              : 0.0;
  s.latency_ms_p50 = latency_ms_.percentile(50.0);
  s.latency_ms_p95 = latency_ms_.percentile(95.0);
  s.latency_ms_p99 = latency_ms_.percentile(99.0);
  s.latency_ms_mean = latency_ms_.mean();
  s.latency_ms_max = latency_ms_.max();
  s.queue_ms_p50 = queue_wait_ms_.percentile(50.0);
  s.queue_ms_p95 = queue_wait_ms_.percentile(95.0);
  s.queue_ms_p99 = queue_wait_ms_.percentile(99.0);
  s.drain_requested = drain_requested_;
  s.drain_clean = drain_clean_;
  s.drain_seconds = drain_seconds_;
  return s;
}

void Server::write_report(std::ostream& out) const {
  const ServerStats s = stats();
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("tunesssp.serve.v1");
  w.key("options").begin_object();
  w.key("queue_capacity").value(
      static_cast<std::uint64_t>(options_.queue_capacity));
  w.key("shed_policy").value(to_string(options_.shed_policy));
  w.key("workers").value(static_cast<std::uint64_t>(
      std::max<std::size_t>(1, options_.workers)));
  w.key("cache_entries").value(
      static_cast<std::uint64_t>(options_.cache_entries));
  w.key("default_deadline_ms").value(options_.default_deadline_ms);
  w.key("drain_ms").value(options_.drain_ms);
  w.key("verify_default").value(options_.verify_default);
  w.key("default_algorithm").value(options_.default_algorithm);
  w.key("batch_max").value(static_cast<std::uint64_t>(options_.batch_max));
  w.key("batch_strategy").value(algo::to_string(options_.batch_strategy));
  w.key("sample_reports").value(
      static_cast<std::uint64_t>(options_.sample_reports));
  w.end_object();
  w.key("graph").begin_object();
  w.key("num_vertices").value(graph_.num_vertices());
  w.key("num_edges").value(graph_.num_edges());
  w.key("fingerprint").value(fingerprint_);
  w.end_object();
  w.key("totals").begin_object();
  w.key("received").value(s.received);
  w.key("invalid").value(s.invalid);
  w.key("admitted").value(s.admitted);
  w.key("completed").value(s.completed);
  w.key("responses").value(s.responses);
  w.key("shed_queue_full").value(s.shed_queue_full);
  w.key("shed_expired_queue").value(s.shed_expired_queue);
  w.key("shed_draining").value(s.shed_draining);
  w.key("shed_memory").value(s.shed_memory);
  w.key("expired_running").value(s.expired_running);
  w.key("drain_aborted").value(s.drain_aborted);
  w.key("handler_errors").value(s.handler_errors);
  w.key("certification_failures").value(s.certification_failures);
  w.key("cache_poisoned").value(s.cache_poisoned);
  w.key("batches").value(s.batches);
  w.key("batched_queries").value(s.batched_queries);
  w.key("queue_depth").value(static_cast<std::uint64_t>(s.queue_depth));
  w.key("in_flight").value(static_cast<std::uint64_t>(s.in_flight));
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(s.cache.hits);
  w.key("misses").value(s.cache.misses);
  w.key("evictions").value(s.cache.evictions);
  w.key("inserts").value(s.cache.inserts);
  w.key("invalidations").value(s.cache.invalidations);
  w.key("entries").value(static_cast<std::uint64_t>(s.cache.entries));
  w.key("bytes").value(static_cast<std::uint64_t>(s.cache.bytes));
  w.end_object();
  w.key("latency_ms").begin_object();
  w.key("count").value(latency_ms_.count());
  w.key("mean").value(s.latency_ms_mean);
  w.key("max").value(s.latency_ms_max);
  w.key("p50").value(s.latency_ms_p50);
  w.key("p95").value(s.latency_ms_p95);
  w.key("p99").value(s.latency_ms_p99);
  w.end_object();
  w.key("queue_wait_ms").begin_object();
  w.key("p50").value(s.queue_ms_p50);
  w.key("p95").value(s.queue_ms_p95);
  w.key("p99").value(s.queue_ms_p99);
  w.end_object();
  w.key("uptime_seconds").value(s.uptime_seconds);
  w.key("qps").value(s.qps);
  w.key("drain").begin_object();
  w.key("requested").value(s.drain_requested);
  w.key("clean").value(s.drain_clean);
  w.key("seconds").value(s.drain_seconds);
  w.end_object();
  {
    // Full per-query iteration arrays for the first --sample-reports
    // fresh solves (tunesssp.serve.v1 "sampled_reports").
    std::lock_guard<std::mutex> lock(samples_mu_);
    w.key("sampled_reports").begin_array();
    for (const SampledReport& sample : samples_) {
      w.begin_object();
      w.key("id").value(sample.id);
      w.key("source").value(static_cast<std::uint64_t>(sample.source));
      w.key("algorithm").value(sample.algorithm);
      w.key("batched").value(sample.batched);
      w.key("iterations").begin_array();
      for (const frontier::IterationStats& it : sample.iterations) {
        w.begin_object();
        w.key("x1").value(it.x1);
        w.key("x2").value(it.x2);
        w.key("x3").value(it.x3);
        w.key("x4").value(it.x4);
        w.key("improving_relaxations").value(it.improving_relaxations);
        w.key("far_queue_size").value(it.far_queue_size);
        w.key("rebalance_items").value(it.rebalance_items);
        w.key("delta").value(it.delta);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.key("failpoints").begin_array();
  for (const fault::FailpointStatus& fp :
       fault::FailpointRegistry::global().status()) {
    if (fp.mode == fault::Failpoint::Mode::kDisarmed && fp.fires == 0)
      continue;
    w.begin_object();
    w.key("name").value(fp.name);
    w.key("hits").value(fp.hits);
    w.key("fires").value(fp.fires);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace sssp::serve
