#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "obs/json.hpp"

namespace sssp::serve {

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kExpired: return "expired";
    case Status::kInvalid: return "invalid";
    case Status::kError: return "error";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

namespace {

ParsedRequest reject(std::string id, std::string detail) {
  ParsedRequest parsed;
  parsed.ok = false;
  parsed.request.id = std::move(id);
  parsed.error = std::move(detail);
  return parsed;
}

// Accepts a JSON string or a non-negative integer number as an id and
// canonicalizes it to a string (clients commonly use sequence numbers).
bool extract_id(const obs::JsonValue& doc, std::string& id) {
  const obs::JsonValue* v = doc.find("id");
  if (v == nullptr) return false;
  if (v->type == obs::JsonValue::Type::kString) {
    if (v->string.empty() || v->string.size() > 128) return false;
    id = v->string;
    return true;
  }
  if (v->type == obs::JsonValue::Type::kNumber) {
    if (!(v->number >= 0) || v->number != std::floor(v->number) ||
        v->number > 1e15)
      return false;
    id = std::to_string(static_cast<std::uint64_t>(v->number));
    return true;
  }
  return false;
}

// A vertex id: integral, in [0, num_vertices).
bool extract_vertex(const obs::JsonValue& v, std::uint64_t num_vertices,
                    graph::VertexId& out) {
  if (v.type != obs::JsonValue::Type::kNumber) return false;
  if (!(v.number >= 0) || v.number != std::floor(v.number)) return false;
  if (v.number >= static_cast<double>(num_vertices)) return false;
  out = static_cast<graph::VertexId>(v.number);
  return true;
}

}  // namespace

ParsedRequest parse_request(std::string_view line,
                            std::uint64_t num_vertices) {
  if (line.size() > kMaxFrameBytes)
    return reject("", "request exceeds max frame size");
  obs::JsonValue doc;
  if (!obs::parse_json(line, doc)) return reject("", "malformed JSON");
  if (!doc.is_object()) return reject("", "request must be a JSON object");

  std::string id;
  if (!extract_id(doc, id))
    return reject("", "missing or malformed 'id' (string or small integer)");

  ParsedRequest parsed;
  parsed.request.id = id;

  const std::string cmd = doc.string_or("cmd", "query");
  if (cmd != "query" && cmd != "info" && cmd != "health" && cmd != "ready")
    return reject(id, "unknown cmd '" + cmd +
                          "' (expected query, info, health, or ready)");
  parsed.request.cmd = cmd;
  if (cmd != "query") {
    parsed.ok = true;
    return parsed;
  }

  const obs::JsonValue* source = doc.find("source");
  if (source == nullptr) return reject(id, "missing 'source'");
  if (!extract_vertex(*source, num_vertices, parsed.request.source))
    return reject(id, "'source' must be an integer in [0, " +
                          std::to_string(num_vertices) + ")");

  if (const obs::JsonValue* algo = doc.find("algorithm"); algo != nullptr) {
    if (algo->type != obs::JsonValue::Type::kString)
      return reject(id, "'algorithm' must be a string");
    const std::string& name = algo->string;
    if (name != "near-far" && name != "dijkstra" &&
        name != "delta-stepping" && name != "self-tuning")
      return reject(id, "unknown algorithm '" + name + "'");
    parsed.request.algorithm = name;
  }

  if (const obs::JsonValue* dl = doc.find("deadline_ms"); dl != nullptr) {
    if (dl->type != obs::JsonValue::Type::kNumber ||
        !std::isfinite(dl->number) || dl->number < 0)
      return reject(id, "'deadline_ms' must be a finite number >= 0");
    parsed.request.deadline_ms = dl->number;
  }

  if (const obs::JsonValue* verify = doc.find("verify"); verify != nullptr) {
    if (verify->type != obs::JsonValue::Type::kBool)
      return reject(id, "'verify' must be a boolean");
    parsed.request.verify = verify->boolean ? 1 : 0;
  }

  if (const obs::JsonValue* targets = doc.find("targets");
      targets != nullptr) {
    if (!targets->is_array())
      return reject(id, "'targets' must be an array of vertex ids");
    if (targets->array.size() > kMaxTargets)
      return reject(id, "'targets' capped at " +
                            std::to_string(kMaxTargets) + " entries");
    for (const obs::JsonValue& t : targets->array) {
      graph::VertexId v = 0;
      if (!extract_vertex(t, num_vertices, v))
        return reject(id, "'targets' entries must be integers in [0, " +
                              std::to_string(num_vertices) + ")");
      parsed.request.targets.push_back(v);
    }
  }

  if (const obs::JsonValue* sp = doc.find("set_point"); sp != nullptr) {
    if (sp->type != obs::JsonValue::Type::kNumber ||
        !std::isfinite(sp->number) || sp->number < 0)
      return reject(id, "'set_point' must be a finite number >= 0");
    parsed.request.set_point = sp->number;
  }

  if (const obs::JsonValue* delta = doc.find("delta"); delta != nullptr) {
    if (delta->type != obs::JsonValue::Type::kNumber ||
        !(delta->number >= 0) || delta->number != std::floor(delta->number) ||
        delta->number > 1e15)
      return reject(id, "'delta' must be a non-negative integer");
    parsed.request.delta = static_cast<std::uint64_t>(delta->number);
  }

  parsed.ok = true;
  return parsed;
}

std::string format_request(const Request& r) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("id").value(r.id);
  w.key("cmd").value(r.cmd);
  if (r.cmd == "query") {
    w.key("source").value(static_cast<std::uint64_t>(r.source));
    if (!r.algorithm.empty()) w.key("algorithm").value(r.algorithm);
    if (r.deadline_ms > 0.0) w.key("deadline_ms").value(r.deadline_ms);
    if (r.verify >= 0) w.key("verify").value(r.verify != 0);
    if (!r.targets.empty()) {
      w.key("targets").begin_array();
      for (graph::VertexId t : r.targets)
        w.value(static_cast<std::uint64_t>(t));
      w.end_array();
    }
    if (r.set_point > 0.0) w.key("set_point").value(r.set_point);
    if (r.delta > 0) w.key("delta").value(r.delta);
  }
  w.end_object();
  return out.str();
}

std::string format_response(const Response& r) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("id").value(r.id);
  w.key("status").value(to_string(r.status));
  if (!r.error.empty()) w.key("error").value(r.error);
  if (r.retry_after_ms > 0.0) w.key("retry_after_ms").value(r.retry_after_ms);
  if (r.status == Status::kOk && !r.has_info && !r.has_health) {
    w.key("algorithm").value(r.algorithm);
    w.key("reached").value(r.reached);
    w.key("iterations").value(r.iterations);
    w.key("improving_relaxations").value(r.improving_relaxations);
    w.key("dist_checksum").value(r.dist_checksum);
    if (!r.targets.empty()) {
      w.key("targets").begin_array();
      for (const TargetDistance& t : r.targets) {
        w.begin_object();
        w.key("v").value(t.vertex);
        // INF serializes as null: JSON numbers cannot carry 2^64-1
        // exactly and "unreachable" is what the client actually means.
        w.key("dist");
        if (t.distance == graph::kInfiniteDistance)
          w.null();
        else
          w.value(static_cast<std::uint64_t>(t.distance));
        w.end_object();
      }
      w.end_array();
    }
    w.key("cache").value(r.cache_hit ? "hit" : "miss");
    w.key("verified").value(r.verified);
    if (r.verified) w.key("certified").value(r.certified);
    w.key("queue_ms").value(r.queue_ms);
    w.key("run_ms").value(r.run_ms);
  }
  if (r.has_health) {
    w.key("health").begin_object();
    w.key("role").value(r.role);
    w.key("ready").value(r.ready);
    w.key("workers_alive").value(r.workers_alive);
    w.key("workers_total").value(r.workers_total);
    w.key("restarts").value(r.restarts);
    w.end_object();
  }
  if (r.has_info) {
    w.key("info").begin_object();
    w.key("num_vertices").value(r.num_vertices);
    w.key("num_edges").value(r.num_edges);
    w.key("graph_fingerprint").value(r.graph_fingerprint);
    w.key("queue_capacity").value(r.queue_capacity);
    w.key("workers").value(r.workers);
    w.key("cache_entries").value(r.cache_entries);
    w.key("draining").value(r.draining);
    w.end_object();
  }
  w.end_object();
  return out.str();
}

bool parse_response(std::string_view text, Response& out) {
  obs::JsonValue doc;
  if (!obs::parse_json(text, doc) || !doc.is_object()) return false;
  out = Response{};
  out.id = doc.string_or("id", "");
  const std::string status = doc.string_or("status", "");
  if (status == "ok") out.status = Status::kOk;
  else if (status == "overloaded") out.status = Status::kOverloaded;
  else if (status == "expired") out.status = Status::kExpired;
  else if (status == "invalid") out.status = Status::kInvalid;
  else if (status == "error") out.status = Status::kError;
  else if (status == "shutting_down") out.status = Status::kShuttingDown;
  else return false;
  out.error = doc.string_or("error", "");
  out.retry_after_ms = doc.number_or("retry_after_ms", 0.0);
  out.algorithm = doc.string_or("algorithm", "");
  out.reached = static_cast<std::uint64_t>(doc.number_or("reached", 0.0));
  out.iterations =
      static_cast<std::uint64_t>(doc.number_or("iterations", 0.0));
  out.improving_relaxations = static_cast<std::uint64_t>(
      doc.number_or("improving_relaxations", 0.0));
  out.dist_checksum =
      static_cast<std::uint64_t>(doc.number_or("dist_checksum", 0.0));
  out.cache_hit = doc.string_or("cache", "miss") == "hit";
  if (const obs::JsonValue* v = doc.find("verified");
      v != nullptr && v->type == obs::JsonValue::Type::kBool)
    out.verified = v->boolean;
  if (const obs::JsonValue* v = doc.find("certified");
      v != nullptr && v->type == obs::JsonValue::Type::kBool)
    out.certified = v->boolean;
  out.queue_ms = doc.number_or("queue_ms", 0.0);
  out.run_ms = doc.number_or("run_ms", 0.0);
  if (const obs::JsonValue* targets = doc.find("targets");
      targets != nullptr && targets->is_array()) {
    for (const obs::JsonValue& t : targets->array) {
      TargetDistance td;
      td.vertex = static_cast<graph::VertexId>(t.number_or("v", 0.0));
      const obs::JsonValue* dist = t.find("dist");
      td.distance = (dist == nullptr || dist->is_null())
                        ? graph::kInfiniteDistance
                        : static_cast<graph::Distance>(dist->number);
      out.targets.push_back(td);
    }
  }
  if (const obs::JsonValue* health = doc.find("health");
      health != nullptr && health->is_object()) {
    out.has_health = true;
    out.role = health->string_or("role", "");
    if (const obs::JsonValue* r = health->find("ready");
        r != nullptr && r->type == obs::JsonValue::Type::kBool)
      out.ready = r->boolean;
    out.workers_alive =
        static_cast<std::uint64_t>(health->number_or("workers_alive", 0.0));
    out.workers_total =
        static_cast<std::uint64_t>(health->number_or("workers_total", 0.0));
    out.restarts =
        static_cast<std::uint64_t>(health->number_or("restarts", 0.0));
  }
  if (const obs::JsonValue* info = doc.find("info");
      info != nullptr && info->is_object()) {
    out.has_info = true;
    out.num_vertices =
        static_cast<std::uint64_t>(info->number_or("num_vertices", 0.0));
    out.num_edges =
        static_cast<std::uint64_t>(info->number_or("num_edges", 0.0));
    out.graph_fingerprint = static_cast<std::uint64_t>(
        info->number_or("graph_fingerprint", 0.0));
    out.queue_capacity =
        static_cast<std::uint64_t>(info->number_or("queue_capacity", 0.0));
    out.workers = static_cast<std::uint64_t>(info->number_or("workers", 0.0));
    out.cache_entries =
        static_cast<std::uint64_t>(info->number_or("cache_entries", 0.0));
    if (const obs::JsonValue* d = info->find("draining");
        d != nullptr && d->type == obs::JsonValue::Type::kBool)
      out.draining = d->boolean;
  }
  return true;
}

}  // namespace sssp::serve
