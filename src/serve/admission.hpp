// Bounded admission queue — the server's overload valve
// (docs/SERVING.md, "Admission control & load shedding").
//
// Every query passes through here between transport and execution. The
// queue has a hard capacity; when it is full the configured policy
// decides who pays:
//   kRejectNew   the incoming query is shed (`overloaded` + retry hint)
//                — protects queued work, pushes backpressure outward;
//   kDropOldest  the oldest queued query is displaced and shed, the new
//                one is admitted — favors fresh traffic when stale
//                queries are likely to miss their deadlines anyway.
// Expired-in-queue queries are shed at pop, *before* execution: work
// that cannot meet its deadline must not occupy a worker.
//
// Thread-safety: all operations are mutex-guarded; pop blocks on a
// condition variable until a ticket arrives or the queue closes. The
// accounting invariant — every admitted ticket is eventually popped,
// displaced, or drained, exactly once — is what "never leak queue
// slots" means in the chaos acceptance criteria.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/protocol.hpp"

namespace sssp::serve {

enum class ShedPolicy : std::uint8_t { kRejectNew = 0, kDropOldest = 1 };

const char* to_string(ShedPolicy policy) noexcept;
// Parses "reject-new" / "drop-oldest"; throws std::invalid_argument.
ShedPolicy parse_shed_policy(std::string_view name);

// An admitted query: the validated request plus its admission timestamp
// and absolute deadline (steady_clock end-to-end; time_point::max()
// when the query has no deadline).
struct Ticket {
  Request request;
  std::chrono::steady_clock::time_point admitted_at{};
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  // Completion sink: exactly one Response is delivered through it per
  // ticket (executed, shed, or drained). The server serializes calls.
  std::function<void(const Response&)> respond;
};

class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t capacity, ShedPolicy policy);

  struct PushOutcome {
    bool admitted = false;
    // kDropOldest displacement: the ticket the caller must shed.
    std::optional<Ticket> displaced;
    // kRejectNew (or closed queue): the caller's own ticket handed
    // back so its response sink is never lost.
    std::optional<Ticket> rejected;
  };

  // Admits `ticket` or sheds per policy. Returns admitted=false when
  // the queue is full under kRejectNew or already closed.
  PushOutcome push(Ticket ticket);

  struct Popped {
    Ticket ticket;
    // The ticket's deadline passed while it waited: the caller sheds it
    // with `expired` instead of executing.
    bool expired = false;
  };

  // Blocks until a ticket is available or the queue is closed and
  // empty (nullopt — the worker's exit signal).
  std::optional<Popped> pop();

  // Non-blocking coalescing scan (docs/SERVING.md, "Query
  // coalescing"): removes and returns up to `max_count` queued tickets
  // matching `pred`, front to back, preserving the relative order of
  // everything left behind. The predicate must be pure (it runs under
  // the queue mutex). Used by workers to drain queries compatible with
  // the one they just popped into a single batched solve; the returned
  // tickets leave the queue exactly as a pop does, so the
  // one-response-per-ticket accounting is unchanged.
  std::vector<Ticket> pop_matching(
      const std::function<bool(const Ticket&)>& pred, std::size_t max_count);

  // Stops admissions and wakes blocked poppers. Idempotent.
  void close();
  bool closed() const;

  // Removes and returns every queued ticket (drain-deadline shedding).
  std::vector<Ticket> drain_remaining();

  std::size_t depth() const;
  std::size_t capacity() const noexcept { return capacity_; }
  ShedPolicy policy() const noexcept { return policy_; }

 private:
  const std::size_t capacity_;
  const ShedPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket> queue_;
  bool closed_ = false;
};

}  // namespace sssp::serve
