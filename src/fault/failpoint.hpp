// Deterministic failpoint injection framework (docs/ROBUSTNESS.md).
//
// A failpoint is a named site in the code where a fault can be forced at
// runtime: a NaN observation into the controller's SGD models, a short
// read in a graph loader, a power-meter dropout in the simulator. Sites
// are declared inline with the SSSP_FAILPOINT macro:
//
//   if (SSSP_FAILPOINT("controller.x4.nan"))
//     x4 = std::numeric_limits<double>::quiet_NaN();
//
// and activated from outside the process:
//
//   SSSP_FAILPOINT=controller.x4.nan            fire on every hit
//   SSSP_FAILPOINT=sgd.observe.nan=0.25         fire with probability 0.25
//   SSSP_FAILPOINT=sgd.observe.nan=0.25,7       ... seeded with 7
//   SSSP_FAILPOINT=graph.binary.bit_flip=3      fire on every 3rd hit
//   SSSP_FAILPOINT=a.nan;b.drop=0.5             several sites at once
//
// or programmatically via FailpointRegistry::arm(spec). The same spec
// grammar backs the tools' --failpoint flag.
//
// Cost discipline mirrors the obs layer (metrics.hpp): with the global
// gate off — the default — every SSSP_FAILPOINT site evaluates to one
// relaxed atomic load plus a branch. Probability mode draws from a
// per-failpoint SplitMix64 stream, so a (spec, seed) pair replays the
// same fire pattern on every run: injected-fault test failures are
// reproducible by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sssp::fault {

// Global gate. Off by default; arming any failpoint turns it on, and
// disarm_all() turns it back off.
bool faults_enabled() noexcept;

class Failpoint {
 public:
  enum class Mode : std::uint8_t {
    kDisarmed,     // never fires
    kAlways,       // fires on every hit
    kProbability,  // fires with probability p per hit (seeded stream)
    kEveryNth,     // fires on hits N, 2N, 3N, ...
  };

  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  // Counts the hit and decides whether the fault fires. The disarmed
  // fast path is one relaxed load + branch (no hit counting: a disarmed
  // site must cost nothing on hot paths).
  bool should_fire() noexcept {
    if (mode_.load(std::memory_order_relaxed) == Mode::kDisarmed)
      return false;
    return evaluate();
  }

  void arm(Mode mode, double probability = 1.0, std::uint64_t period = 1,
           std::uint64_t seed = 0);
  void disarm();

  const std::string& name() const noexcept { return name_; }
  Mode mode() const noexcept { return mode_.load(std::memory_order_relaxed); }
  // Hits/fires are only counted while armed.
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t fires() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }

  // Snapshot / restore of the mutable runtime state (counters + stream
  // position). restore_runtime leaves the arming untouched.
  struct FailpointRuntime runtime() const;
  void restore_runtime(const struct FailpointRuntime& runtime);

 private:
  bool evaluate() noexcept;

  const std::string name_;
  std::atomic<Mode> mode_{Mode::kDisarmed};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
  // Armed-path state (mutex-guarded; armed sites are off the fast path
  // by definition, so contention cost is irrelevant).
  mutable std::mutex mu_;
  double probability_ = 1.0;
  std::uint64_t period_ = 1;
  std::uint64_t rng_state_ = 0;
};

struct FailpointStatus {
  std::string name;
  Failpoint::Mode mode;
  std::uint64_t hits;
  std::uint64_t fires;
};

// Serializable mid-run failpoint state (checkpoint/resume): hit/fire
// counters and the probability stream's position. A resumed run that
// restores this continues the exact fire pattern the original (spec,
// seed) pair would have produced — every-Nth periods and probability
// draws stay aligned with the interrupted run. Arming (mode/probability/
// period) is intentionally *not* restored: it comes from the spec the
// resuming process arms itself, so the stored mode is only used to
// cross-check.
struct FailpointRuntime {
  std::string name;
  std::uint8_t mode = 0;  // Failpoint::Mode at capture, for cross-checks
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  std::uint64_t rng_state = 0;

  friend bool operator==(const FailpointRuntime&,
                         const FailpointRuntime&) = default;
};

class FailpointRegistry {
 public:
  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  // Find-or-create; returned references remain valid for the registry's
  // lifetime (failpoints are never removed).
  Failpoint& failpoint(std::string_view name);

  // Arms one "name[=prob|period][,seed]" spec (grammar above). Throws
  // std::invalid_argument on a malformed spec. Turns the global gate on.
  void arm(std::string_view spec);
  // Arms a ';'-separated spec list, e.g. the SSSP_FAILPOINT env value or
  // a --failpoint flag. Empty segments are ignored.
  void arm_list(std::string_view specs);
  // Reads SSSP_FAILPOINT from the environment (no-op when unset).
  void arm_from_env();

  // Disarms every failpoint and turns the global gate off. Hit/fire
  // counters are preserved for post-run inspection.
  void disarm_all();

  // Status of every registered failpoint (armed or not), name-sorted.
  std::vector<FailpointStatus> status() const;
  // Runtime snapshots of every *armed* failpoint, name-sorted (the
  // checkpoint payload — disarmed sites carry no stream to preserve).
  std::vector<FailpointRuntime> capture_runtime() const;
  // Applies captured counters/streams by name (find-or-create). Arming
  // is not changed: the resuming process re-arms from its own specs.
  void restore_runtime(const std::vector<FailpointRuntime>& runtimes);
  // Total fires across all failpoints since process start.
  std::uint64_t total_fires() const;

  // Process-wide registry used by SSSP_FAILPOINT sites.
  static FailpointRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_;
};

namespace detail {
void set_faults_enabled(bool enabled) noexcept;
}

// Failpoint site macro. Evaluates to true when the named fault should
// fire here and now. The registry lookup runs once per site (function-
// local static); the steady-state disabled cost is the faults_enabled()
// relaxed load + branch.
#define SSSP_FAILPOINT(name_literal)                                       \
  (::sssp::fault::faults_enabled() && [] {                                 \
    static ::sssp::fault::Failpoint& sssp_fault_fp =                       \
        ::sssp::fault::FailpointRegistry::global().failpoint(name_literal); \
    return sssp_fault_fp.should_fire();                                    \
  }())

}  // namespace sssp::fault
