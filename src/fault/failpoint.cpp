#include "fault/failpoint.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace sssp::fault {

namespace {

std::atomic<bool> g_faults_enabled{false};

// Uniform double in [0, 1) from one SplitMix64 step.
double to_unit_double(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

bool faults_enabled() noexcept {
  return g_faults_enabled.load(std::memory_order_relaxed);
}

void detail::set_faults_enabled(bool enabled) noexcept {
  g_faults_enabled.store(enabled, std::memory_order_relaxed);
}

void Failpoint::arm(Mode mode, double probability, std::uint64_t period,
                    std::uint64_t seed) {
  if (mode == Mode::kProbability &&
      !(probability >= 0.0 && probability <= 1.0))
    throw std::invalid_argument("Failpoint: probability must be in [0, 1]");
  if (mode == Mode::kEveryNth && period == 0)
    throw std::invalid_argument("Failpoint: period must be >= 1");
  {
    std::lock_guard<std::mutex> lock(mu_);
    probability_ = probability;
    period_ = period;
    rng_state_ = seed;
  }
  mode_.store(mode, std::memory_order_relaxed);
}

void Failpoint::disarm() {
  mode_.store(Mode::kDisarmed, std::memory_order_relaxed);
}

FailpointRuntime Failpoint::runtime() const {
  FailpointRuntime runtime;
  runtime.name = name_;
  runtime.mode = static_cast<std::uint8_t>(mode());
  runtime.hits = hits();
  runtime.fires = fires();
  {
    std::lock_guard<std::mutex> lock(mu_);
    runtime.rng_state = rng_state_;
  }
  return runtime;
}

void Failpoint::restore_runtime(const FailpointRuntime& runtime) {
  hits_.store(runtime.hits, std::memory_order_relaxed);
  fires_.store(runtime.fires, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = runtime.rng_state;
}

bool Failpoint::evaluate() noexcept {
  const std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (mode_.load(std::memory_order_relaxed)) {
    case Mode::kDisarmed:
      return false;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kProbability: {
      std::lock_guard<std::mutex> lock(mu_);
      util::SplitMix64 sm(rng_state_);
      const std::uint64_t bits = sm.next();
      rng_state_ = bits;  // advance the stream deterministically
      fire = to_unit_double(bits) < probability_;
      break;
    }
    case Mode::kEveryNth:
      fire = hit % period_ == 0;
      break;
  }
  if (fire) {
    fires_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::global().counter("fault.fires").add();
      obs::MetricsRegistry::global().counter("fault.fires." + name_).add();
    }
    if (obs::trace_enabled()) {
      obs::Tracer& tracer = obs::Tracer::global();
      tracer.instant("failpoint_fired", tracer.now_us());
    }
    SSSP_LOG(kDebug) << "failpoint fired: " << name_;
  }
  return fire;
}

Failpoint& FailpointRegistry::failpoint(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(std::string(name),
                      std::make_unique<Failpoint>(std::string(name)))
             .first;
  }
  return *it->second;
}

void FailpointRegistry::arm(std::string_view spec) {
  if (spec.empty())
    throw std::invalid_argument("failpoint spec: empty");

  std::string_view name = spec;
  std::string_view value;
  if (const auto eq = spec.find('='); eq != std::string_view::npos) {
    name = spec.substr(0, eq);
    value = spec.substr(eq + 1);
    if (value.empty())
      throw std::invalid_argument("failpoint spec: empty value in '" +
                                  std::string(spec) + "'");
  }
  if (name.empty())
    throw std::invalid_argument("failpoint spec: missing name in '" +
                                std::string(spec) + "'");

  std::uint64_t seed = 0;
  if (const auto comma = value.find(','); comma != std::string_view::npos) {
    const std::string seed_text(value.substr(comma + 1));
    value = value.substr(0, comma);
    try {
      std::size_t used = 0;
      seed = std::stoull(seed_text, &used);
      if (used != seed_text.size()) throw std::invalid_argument(seed_text);
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint spec: bad seed in '" +
                                  std::string(spec) + "'");
    }
  }

  Failpoint& fp = failpoint(name);
  if (value.empty()) {
    fp.arm(Failpoint::Mode::kAlways);
  } else if (value.find('.') != std::string_view::npos) {
    double probability = 0.0;
    try {
      std::size_t used = 0;
      probability = std::stod(std::string(value), &used);
      if (used != value.size()) throw std::invalid_argument(std::string(value));
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint spec: bad probability in '" +
                                  std::string(spec) + "'");
    }
    fp.arm(Failpoint::Mode::kProbability, probability, 1, seed);
  } else {
    std::uint64_t period = 0;
    try {
      std::size_t used = 0;
      period = std::stoull(std::string(value), &used);
      if (used != value.size()) throw std::invalid_argument(std::string(value));
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint spec: bad period in '" +
                                  std::string(spec) + "'");
    }
    fp.arm(Failpoint::Mode::kEveryNth, 1.0, period, seed);
  }
  detail::set_faults_enabled(true);
  SSSP_LOG(kInfo) << "failpoint armed: " << spec;
}

void FailpointRegistry::arm_list(std::string_view specs) {
  std::size_t start = 0;
  while (start <= specs.size()) {
    std::size_t end = specs.find(';', start);
    if (end == std::string_view::npos) end = specs.size();
    const std::string_view spec = specs.substr(start, end - start);
    if (!spec.empty()) arm(spec);
    start = end + 1;
  }
}

void FailpointRegistry::arm_from_env() {
  if (const char* env = std::getenv("SSSP_FAILPOINT");
      env != nullptr && *env != '\0')
    arm_list(env);
}

void FailpointRegistry::disarm_all() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, fp] : points_) fp->disarm();
  }
  detail::set_faults_enabled(false);
}

std::vector<FailpointStatus> FailpointRegistry::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailpointStatus> out;
  out.reserve(points_.size());
  for (const auto& [name, fp] : points_)
    out.push_back({name, fp->mode(), fp->hits(), fp->fires()});
  return out;
}

std::vector<FailpointRuntime> FailpointRegistry::capture_runtime() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailpointRuntime> out;
  for (const auto& [name, fp] : points_)
    if (fp->mode() != Failpoint::Mode::kDisarmed) out.push_back(fp->runtime());
  return out;
}

void FailpointRegistry::restore_runtime(
    const std::vector<FailpointRuntime>& runtimes) {
  for (const FailpointRuntime& runtime : runtimes)
    failpoint(runtime.name).restore_runtime(runtime);
}

std::uint64_t FailpointRegistry::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, fp] : points_) total += fp->fires();
  return total;
}

FailpointRegistry& FailpointRegistry::global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

}  // namespace sssp::fault
