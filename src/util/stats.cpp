#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace sssp::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void QuantileSummary::add(double x) {
  data_.push_back(x);
  sorted_valid_ = false;
}

void QuantileSummary::add_all(std::span<const double> xs) {
  data_.insert(data_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

void QuantileSummary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = data_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double QuantileSummary::quantile(double q) const {
  if (data_.empty()) throw std::domain_error("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::domain_error("quantile q out of [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double QuantileSummary::mean() const {
  if (data_.empty()) return 0.0;
  return std::accumulate(data_.begin(), data_.end(), 0.0) /
         static_cast<double>(data_.size());
}

std::string QuantileSummary::five_number_summary() const {
  std::ostringstream os;
  os << quantile(0.0) << "/" << quantile(0.25) << "/" << quantile(0.5) << "/"
     << quantile(0.75) << "/" << quantile(1.0);
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins, Scale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
  if (scale_ == Scale::kLog && lo <= 0.0)
    throw std::invalid_argument("log Histogram needs lo > 0");
}

std::size_t Histogram::bin_of(double x) const noexcept {
  double t;
  if (scale_ == Scale::kLinear) {
    t = (x - lo_) / (hi_ - lo_);
  } else {
    const double lx = std::log(std::max(x, lo_));
    t = (lx - std::log(lo_)) / (std::log(hi_) - std::log(lo_));
  }
  const double scaled = t * static_cast<double>(counts_.size());
  if (scaled <= 0.0) return 0;
  const auto b = static_cast<std::size_t>(scaled);
  return std::min(b, counts_.size() - 1);
}

void Histogram::add(double x) noexcept {
  ++counts_[bin_of(x)];
  ++total_;
}

double Histogram::lower_edge(std::size_t bin) const {
  const double t = static_cast<double>(bin) / static_cast<double>(counts_.size());
  if (scale_ == Scale::kLinear) return lo_ + t * (hi_ - lo_);
  return std::exp(std::log(lo_) + t * (std::log(hi_) - std::log(lo_)));
}

double Histogram::upper_edge(std::size_t bin) const { return lower_edge(bin + 1); }

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < bins(); ++b) {
    const double density =
        total_ ? static_cast<double>(counts_[b]) / static_cast<double>(total_) : 0.0;
    os << lower_edge(b) << " " << upper_edge(b) << " " << counts_[b] << " "
       << density << "\n";
  }
  return os.str();
}

double relative_difference(double a, double b, double eps) noexcept {
  const double denom = std::max({std::abs(a), std::abs(b), eps});
  return std::abs(a - b) / denom;
}

}  // namespace sssp::util
