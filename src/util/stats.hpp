// Online and batch summary statistics used throughout the controller,
// the benchmark harness, and the experiment reports.
//
// * OnlineStats   — Welford-style streaming mean/variance/min/max.
// * Ema           — exponential moving average with a tunable time constant
//                   (the building block of Algorithm 1's g/v/h estimates).
// * QuantileSummary — batch quantiles over a stored sample (used to print
//                   the distribution "insets" of Fig. 1 and the box plots
//                   of Fig. 5).
// * Histogram     — fixed-width or log-spaced counting histogram (Fig. 1
//                   density panels).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sssp::util {

// Streaming mean/variance via Welford's algorithm. O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;
  void reset() noexcept { *this = OnlineStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exponential moving average with time constant tau (>= 1):
//   y <- (1 - 1/tau) * y + (1/tau) * x.
// tau may be changed between updates (Algorithm 1 adapts it every step).
class Ema {
 public:
  explicit Ema(double initial = 0.0, double tau = 2.0) noexcept
      : value_(initial), tau_(tau < 1.0 ? 1.0 : tau) {}

  void set_tau(double tau) noexcept { tau_ = tau < 1.0 ? 1.0 : tau; }
  double tau() const noexcept { return tau_; }

  double update(double x) noexcept {
    const double w = 1.0 / tau_;
    value_ = (1.0 - w) * value_ + w * x;
    return value_;
  }

  double value() const noexcept { return value_; }
  void set_value(double v) noexcept { value_ = v; }

 private:
  double value_;
  double tau_;
};

// Batch quantiles over a retained sample. Adding is O(1) amortized;
// quantile() sorts lazily and caches until the next add.
class QuantileSummary {
 public:
  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t count() const noexcept { return data_.size(); }
  // q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double iqr() const { return quantile(0.75) - quantile(0.25); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }
  double mean() const;

  // Five-number summary formatted as "min/q1/med/q3/max".
  std::string five_number_summary() const;

  std::span<const double> data() const noexcept { return data_; }

 private:
  void ensure_sorted() const;

  std::vector<double> data_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Counting histogram. Supports linear or logarithmic binning; values
// outside [lo, hi) are clamped into the first/last bin so mass is never
// silently dropped.
class Histogram {
 public:
  enum class Scale { kLinear, kLog };

  Histogram(double lo, double hi, std::size_t bins, Scale scale = Scale::kLinear);

  void add(double x) noexcept;
  std::size_t bin_of(double x) const noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  // [lower, upper) edges of a bin.
  double lower_edge(std::size_t bin) const;
  double upper_edge(std::size_t bin) const;

  // Render as rows "lo upper count density" for CSV/terminal output.
  std::string to_string() const;

 private:
  double lo_, hi_;
  Scale scale_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Convenience: relative difference |a-b| / max(|a|,|b|,eps).
double relative_difference(double a, double b, double eps = 1e-12) noexcept;

}  // namespace sssp::util
