// Crash- and ENOSPC-safe file writes: every durable artifact the tools
// emit (checkpoints, run reports, metrics, flight records, bench JSON)
// funnels through atomic_write_file so a reader can never observe a
// partial file. Protocol: write `path + ".tmp"`, handle short writes
// and EINTR, fsync the file, rename over `path`, fsync the directory.
// Disk-full (ENOSPC/EDQUOT) deletes the tmp and throws DiskFullError —
// tools map it to a dedicated exit code (docs/ROBUSTNESS.md, "Resource
// budgets & exhaustion") instead of leaving truncated JSON behind.
//
// util sits below fault in the layering (fault links util), so this
// file cannot reference SSSP_FAILPOINT directly. Fault injection
// arrives through set_write_fault_hook: src/res installs a hook that
// maps the `io.write.enospc` / `io.write.short` failpoints onto the
// write loop (res::install_io_failpoints, called by tools'
// enable_faults).
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sssp::util {

// Disk exhausted (ENOSPC or EDQUOT) while persisting `path`. The tmp
// file has already been unlinked when this is thrown; the previous
// version of `path`, if any, is intact.
class DiskFullError : public std::runtime_error {
 public:
  DiskFullError(std::string path, const std::string& detail)
      : std::runtime_error("disk full writing " + path + ": " + detail),
        path_(std::move(path)) {}

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

struct AtomicWriteOptions {
  // Transient write errors (EINTR aside, which always retries) are
  // retried this many times with linear backoff before giving up.
  int max_transient_retries = 3;
  int retry_backoff_ms = 10;
  // Durability knobs; tests on tmpfs may disable to save syscalls.
  bool fsync_file = true;
  bool fsync_directory = true;
  // Crash-drill hook: runs after the tmp file is durable, before the
  // rename. If it throws, the exception propagates and the tmp file is
  // deliberately LEFT BEHIND — the drill simulates the process dying
  // at that instant, and a dead process cleans nothing up (the ckpt
  // crash_after_tmp failpoint rides on this).
  std::function<void()> before_rename;
};

// Injected fault for one write(2) call in the loop. `error` is an
// errno to fail with (0 = none); `short_write` truncates the chunk to
// at most half so the short-write resume path executes.
struct WriteFault {
  int error = 0;
  bool short_write = false;
};
using WriteFaultHook = WriteFault (*)() noexcept;

// Installs (or clears, with nullptr) the process-wide write-fault
// hook. Consulted once per write(2) attempt inside atomic_write_file.
void set_write_fault_hook(WriteFaultHook hook) noexcept;

// Atomically replaces `path` with `bytes`. Throws DiskFullError on
// ENOSPC/EDQUOT and std::runtime_error for any other unrecoverable
// I/O failure; in both cases the tmp file is removed and the previous
// `path` contents are untouched.
void atomic_write_file(const std::string& path, std::string_view bytes,
                       const AtomicWriteOptions& options = {});

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size,
                       const AtomicWriteOptions& options = {});

}  // namespace sssp::util
