// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (graph generators, weight
// assignment, SGD test streams) draw from these generators so that every
// experiment is reproducible from a single 64-bit seed. We deliberately
// avoid std::mt19937 for the hot paths: xoshiro256** is ~4x faster and has
// a trivially splittable seeding story via SplitMix64.
#pragma once

#include <cstdint>
#include <limits>

namespace sssp::util {

// SplitMix64: used to expand one seed into many well-distributed streams.
// Passes BigCrush when used as a generator; here used mostly for seeding.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound), bias-free via Lemire's method would need
  // 128-bit multiply; the simple rejection-free multiply-shift is adequate
  // for bounds far below 2^64 (our vertex counts are < 2^32).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Fork an independent stream (for per-thread / per-partition use).
  constexpr Xoshiro256 fork() noexcept { return Xoshiro256(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace sssp::util
