#include "util/run_control.hpp"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <string>

namespace sssp::util {

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kInterrupt: return "interrupt";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kStall: return "stall";
  }
  return "unknown";
}

StopRequested::StopRequested(StopReason reason)
    : std::runtime_error(std::string("run stopped: ") + to_string(reason)),
      reason_(reason) {}

void RunControl::request_stop(StopReason reason) noexcept {
  if (reason == StopReason::kNone) return;
  int expected = 0;
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_relaxed);
}

void RunControl::set_deadline(double seconds_from_now) {
  if (!(seconds_from_now > 0.0))
    throw std::invalid_argument("RunControl: deadline must be > 0 seconds");
  // Clamp before the duration_cast: steady_clock::duration is int64
  // nanoseconds on our platforms, which overflows past ~292 years and
  // would wrap a huge --deadline-ms into an already-expired deadline.
  // ~31 years is "no deadline" for any real run and casts safely.
  constexpr double kMaxDeadlineSeconds = 1e9;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      std::min(seconds_from_now, kMaxDeadlineSeconds)));
  has_deadline_ = true;
}

StopReason RunControl::poll_iteration(std::uint64_t progress) {
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_)
    request_stop(StopReason::kDeadline);
  if (stall_limit_ > 0) {
    if (has_progress_ && progress == last_progress_) {
      if (++stall_iterations_ >= stall_limit_)
        request_stop(StopReason::kStall);
    } else {
      stall_iterations_ = 0;
    }
    has_progress_ = true;
    last_progress_ = progress;
  }
  return reason();
}

bool RunControl::should_abort() noexcept {
  if (stop_requested()) return true;
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    request_stop(StopReason::kDeadline);
    return true;
  }
  return false;
}

void RunControl::throw_if_stopped() {
  if (should_abort()) throw StopRequested(reason());
}

namespace {

// The handler reads only this lock-free atomic; install/uninstall
// publish the pointer before/after touching signal dispositions.
std::atomic<RunControl*> g_signal_control{nullptr};
std::atomic<int> g_signal_count{0};
// Open signal-critical sections and the signo of a hard exit deferred
// by one (0 = none pending).
std::atomic<int> g_critical_depth{0};
std::atomic<int> g_deferred_exit_signo{0};

extern "C" void sssp_handle_stop_signal(int signo) {
  const int count =
      g_signal_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count > 1) {
    // Second signal: hard exit — unless a critical section (e.g. the
    // checkpoint tmp+rename window) is open, in which case the exit is
    // deferred to the section's close so the protocol can finish and
    // leave a valid file behind.
    if (g_critical_depth.load(std::memory_order_acquire) > 0) {
      g_deferred_exit_signo.store(signo, std::memory_order_release);
      return;
    }
    std::_Exit(128 + signo);
  }
  if (RunControl* control =
          g_signal_control.load(std::memory_order_acquire);
      control != nullptr)
    control->request_stop(StopReason::kInterrupt);
}

}  // namespace

ScopedSignalCritical::ScopedSignalCritical() noexcept {
  g_critical_depth.fetch_add(1, std::memory_order_acq_rel);
}

ScopedSignalCritical::~ScopedSignalCritical() {
  if (g_critical_depth.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Last section closed: honor a hard exit that arrived inside it.
  if (const int signo =
          g_deferred_exit_signo.load(std::memory_order_acquire);
      signo != 0)
    std::_Exit(128 + signo);
}

bool signal_hard_exit_pending() noexcept {
  return g_deferred_exit_signo.load(std::memory_order_acquire) != 0;
}

void install_signal_stop(RunControl& control) {
  g_signal_count.store(0, std::memory_order_relaxed);
  g_deferred_exit_signo.store(0, std::memory_order_relaxed);
  g_signal_control.store(&control, std::memory_order_release);
  std::signal(SIGINT, sssp_handle_stop_signal);
  std::signal(SIGTERM, sssp_handle_stop_signal);
}

void uninstall_signal_stop() noexcept {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_signal_control.store(nullptr, std::memory_order_release);
}

}  // namespace sssp::util
