// Tiny leveled logger. Experiments run in batch mode, so the default
// level is kInfo; set SSSP_LOG=debug in the environment or call
// set_level() to see controller traces.
#pragma once

#include <sstream>
#include <string>

namespace sssp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

// Stream-style logging: LOG(kInfo) << "x = " << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, os_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace sssp::util

#define SSSP_LOG(level) ::sssp::util::LogLine(::sssp::util::LogLevel::level)
