// Tiny leveled logger. Experiments run in batch mode, so the default
// level is kInfo; set SSSP_LOG=debug in the environment or call
// set_level() to see controller traces.
//
// Each line carries an ISO-8601 UTC timestamp and a small per-process
// thread ordinal (t1 = first thread to log), so interleaved controller
// and worker output stays attributable:
//
//   2026-08-06T12:34:56.789Z [INFO] t1 delta -> 4096
//
// Set SSSP_LOG_FILE=/path/to/run.log to mirror every emitted line to a
// file in addition to stderr (appended, flushed per line).
#pragma once

#include <sstream>
#include <string>

namespace sssp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name) noexcept;

// Small sequential id for the calling thread (1 = first thread that
// asked). Stable for the thread's lifetime.
unsigned log_thread_id() noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
// The full line as emitted (sans trailing newline); split out so tests
// can check the format without capturing stderr.
std::string format_line(LogLevel level, const std::string& message);
}

// Stream-style logging: LOG(kInfo) << "x = " << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, os_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace sssp::util

#define SSSP_LOG(level) ::sssp::util::LogLine(::sssp::util::LogLevel::level)
