// Minimal CSV emission for experiment outputs.
//
// The benchmark harness prints every table/figure both as an aligned
// human-readable table (stdout) and, optionally, as CSV (file) so plots
// can be regenerated offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sssp::util {

// Streams rows of comma-separated values with proper quoting.
class CsvWriter {
 public:
  // Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_header(std::initializer_list<std::string_view> columns);
  void write_row(std::initializer_list<std::string_view> cells);

  // Typed row: formats each value with operator<<.
  template <typename... Ts>
  void write(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(format(values)), ...);
    write_cells(cells);
  }

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string format(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  void write_cells(const std::vector<std::string>& cells);
  static std::string escape(std::string_view cell);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

// Aligned plain-text table for terminal output of experiment results.
class TextTable {
 public:
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  template <typename... Ts>
  void add(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(CsvFormat(values)), ...);
    add_row(std::move(cells));
  }

  std::string to_string() const;

 private:
  template <typename T>
  static std::string CsvFormat(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sssp::util
