#include "util/csv.hpp"

#include <algorithm>
#include <stdexcept>

namespace sssp::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::write_header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> cells;
  cells.reserve(columns.size());
  for (auto c : columns) cells.emplace_back(c);
  write_cells(cells);
}

void CsvWriter::write_row(std::initializer_list<std::string_view> cells_in) {
  std::vector<std::string> cells;
  cells.reserve(cells_in.size());
  for (auto c : cells_in) cells.emplace_back(c);
  write_cells(cells);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size())
        out.append(widths[i] - row[i].size() + 2, ' ');
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

}  // namespace sssp::util
