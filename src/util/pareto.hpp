// Pareto-front extraction for cost/value tradeoff studies (the paper's
// Figures 6-7 are exactly such planes: relative power = cost, speedup =
// value).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace sssp::util {

struct ParetoPoint {
  double cost = 0.0;   // minimize (e.g. relative power)
  double value = 0.0;  // maximize (e.g. speedup)
  std::size_t tag = 0; // caller's identifier for the configuration
};

// Returns the non-dominated subset, sorted by ascending cost. A point
// dominates another when it has <= cost and >= value with at least one
// strict inequality. Ties on both axes keep the first occurrence.
inline std::vector<ParetoPoint> pareto_front(
    std::span<const ParetoPoint> points) {
  std::vector<ParetoPoint> sorted(points.begin(), points.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ParetoPoint& a, const ParetoPoint& b) {
                     if (a.cost != b.cost) return a.cost < b.cost;
                     return a.value > b.value;
                   });
  std::vector<ParetoPoint> front;
  double best_value = -1e300;
  for (const ParetoPoint& p : sorted) {
    if (p.value > best_value) {
      front.push_back(p);
      best_value = p.value;
    }
  }
  return front;
}

// True when `candidate` is dominated by any point in `points`.
inline bool is_dominated(const ParetoPoint& candidate,
                         std::span<const ParetoPoint> points) {
  for (const ParetoPoint& p : points) {
    const bool no_worse =
        p.cost <= candidate.cost && p.value >= candidate.value;
    const bool strictly_better =
        p.cost < candidate.cost || p.value > candidate.value;
    if (no_worse && strictly_better) return true;
  }
  return false;
}

}  // namespace sssp::util
