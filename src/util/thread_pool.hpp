// A small, dependency-free thread pool with a blocking parallel_for.
//
// The frontier pipeline can execute its per-vertex/per-edge loops on
// multiple host threads. The *performance model* of the reproduction is
// the analytic GPU simulator (sim/), so host parallelism here is about
// wall-clock throughput of the experiments, not about the reported
// numbers. Final distances are schedule-independent (atomic-min
// relaxation); per-iteration statistics in parallel mode are not — see
// frontier::NearFarEngine::Options — which is why the benchmark
// harness records workloads with the deterministic serial pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sssp::util {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size() + 1; }

  // Runs body(begin, end) over [0, n) split into roughly equal chunks,
  // one per pool thread (the calling thread executes one chunk too).
  // Blocks until every chunk finishes. Exceptions from body propagate
  // to the caller (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Global pool shared by the library (sized from SSSP_THREADS env var,
  // default hardware_concurrency).
  static ThreadPool& global();

 private:
  struct Task;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Single in-flight batch; parallel_for is serialized per pool.
  std::mutex batch_mu_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunks_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t done_chunks_ = 0;
  std::exception_ptr error_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
};

// Convenience free function over the global pool. Falls back to a plain
// serial loop when the pool has one thread (avoids synchronization cost).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace sssp::util
