// A small, dependency-free thread pool built around dynamic chunk
// claiming: workers pull chunk indices from a shared atomic counter, so
// a straggler chunk (one scale-free hub, one slow core) never serializes
// the rest of the iteration behind a static schedule.
//
// Two layers:
//
//   run_on_all(fn)        — type-erased: invoke fn(thread_id) once on
//                           every participating thread (the caller is
//                           thread 0). One std::function call per thread
//                           per batch; nothing type-erased runs in inner
//                           loops.
//   for_each_chunk(n, b)  — templated: body(chunk, thread_id) for every
//                           chunk in [0, n), claimed dynamically. The
//                           body is a template parameter, so per-chunk
//                           dispatch inlines (no std::function in the
//                           hot path).
//   parallel_for(n, body) — legacy range API over for_each_chunk.
//
// The frontier pipeline (frontier::NearFarEngine) runs its advance /
// bisect / demote phases on this pool with a count → exclusive-prefix-
// sum → write scheme whose results are independent of thread count and
// schedule; see docs/PERFORMANCE.md for the determinism argument. The
// pool itself guarantees only that every chunk runs exactly once and
// that a batch's writes happen-before run_on_all returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sssp::util {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size() + 1; }

  // Runs fn(thread_id) once on every pool thread, thread ids 0 (the
  // calling thread) through size()-1. Blocks until all return; writes
  // made by the threads happen-before the return. Exceptions propagate
  // to the caller (first one wins). Serialized per pool.
  void run_on_all(const std::function<void(std::size_t)>& fn);

  // Runs body(chunk, thread_id) for every chunk in [0, num_chunks).
  // Chunks are claimed dynamically from an atomic counter, so threads
  // that finish early keep pulling work. Blocks until every chunk
  // finishes.
  template <typename Body>
  void for_each_chunk(std::size_t num_chunks, Body&& body) {
    if (num_chunks == 0) return;
    if (workers_.empty() || num_chunks == 1) {
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) body(chunk, 0);
      return;
    }
    std::atomic<std::size_t> next{0};
    run_on_all([&](std::size_t thread_id) {
      for (;;) {
        const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= num_chunks) return;
        body(chunk, thread_id);
      }
    });
  }

  // Runs body(begin, end) over [0, n) split into size()*4 roughly equal
  // ranges claimed dynamically. Blocks until every range finishes.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Global pool shared by the library. Sized from the SSSP_THREADS env
  // var (default hardware_concurrency) on first use, reconfigurable via
  // set_global_threads (e.g. from a --threads flag).
  static ThreadPool& global();

  // Replaces the global pool with one of `threads` threads (0 = env /
  // hardware default). Must not race with work on the pool: call at
  // startup or between runs. No-op when the size already matches.
  static void set_global_threads(std::size_t threads);

 private:
  void worker_loop(std::size_t thread_id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // Single in-flight batch; run_on_all is serialized per pool.
  std::mutex batch_mu_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t done_workers_ = 0;
  std::exception_ptr error_;
  std::uint64_t generation_ = 0;
};

// Convenience free functions over the global pool.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

template <typename Body>
void for_each_chunk(std::size_t num_chunks, Body&& body) {
  ThreadPool::global().for_each_chunk(num_chunks, std::forward<Body>(body));
}

}  // namespace sssp::util
