// Saturating distance arithmetic for the relaxation kernels.
//
// A tentative distance is a sum of 32-bit edge weights along a path; on
// adversarial inputs (max-weight edges on a long path, or a corrupted
// dist[] entry near kInfiniteDistance) the plain `du + w` relaxation
// wraps modulo 2^64 and produces a *small* distance — which then beats
// every honest label and silently poisons the whole run. The guards
// here clamp at kInfiniteDistance instead: INF stays absorbing
// (INF + w == INF), and a near-INF label can never relax below itself.
//
// Used by the engine's serial and parallel relax loops, Dijkstra (both
// the result and distances-only variants), and the result certifier —
// so the checker and the checked compute distances with identical
// semantics.
#pragma once

#include "graph/types.hpp"

namespace sssp::util {

// dist + weight, clamped at kInfiniteDistance. The unreachable label is
// absorbing and finite sums never wrap past it.
constexpr graph::Distance saturating_add(graph::Distance dist,
                                         graph::Distance weight) noexcept {
  return dist >= graph::kInfiniteDistance - weight ? graph::kInfiniteDistance
                                                   : dist + weight;
}

// True when `dist + weight` would reach or pass the INF sentinel (i.e.
// the saturating result is not a usable finite distance).
constexpr bool add_saturates(graph::Distance dist,
                             graph::Distance weight) noexcept {
  return dist >= graph::kInfiniteDistance - weight;
}

}  // namespace sssp::util
