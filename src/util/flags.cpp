#include "util/flags.hpp"

#include <cstdio>
#include <stdexcept>

namespace sssp::util {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {  // "--" terminator: rest is positional
      for (++i; i < argc; ++i) positional_.emplace_back(argv[i]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--no-name" boolean negation.
    if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // "--name value" when the next token is not a flag, else boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
        arg != "help") {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  specs_[name] = Spec{default_value, help};
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::lookup(const std::string& name) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  if (auto it = specs_.find(name); it != specs_.end())
    return it->second.default_value;
  throw std::invalid_argument("undefined flag --" + name);
}

std::string Flags::get_string(const std::string& name) const {
  return lookup(name);
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string v = lookup(name);
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                v + "'");
  }
}

double Flags::get_double(const std::string& name) const {
  const std::string v = lookup(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                v + "'");
  }
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = lookup(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

bool Flags::handle_help(const std::string& program_description) const {
  if (!values_.count("help")) return false;
  std::printf("%s\n\nUsage: %s [flags]\n\nFlags:\n", program_description.c_str(),
              program_.c_str());
  for (const auto& [name, spec] : specs_) {
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), spec.help.c_str(),
                spec.default_value.empty() ? "\"\"" : spec.default_value.c_str());
  }
  return true;
}

void Flags::check_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (name == "help") continue;
    if (!specs_.count(name))
      throw std::invalid_argument("unknown flag --" + name);
  }
}

}  // namespace sssp::util
