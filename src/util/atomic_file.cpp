#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sssp::util {
namespace {

std::atomic<WriteFaultHook> g_write_fault_hook{nullptr};

std::string errno_string(int err) { return std::strerror(err); }

bool is_disk_full(int err) noexcept {
#ifdef EDQUOT
  if (err == EDQUOT) return true;
#endif
  return err == ENOSPC;
}

// EIO/EAGAIN-class errors are worth a bounded retry: NFS and
// overloaded block layers surface them transiently. ENOSPC is not
// transient within one write burst — freeing space mid-write is the
// caller's business — and fails fast to the DiskFullError path.
bool is_transient(int err) noexcept {
  return err == EAGAIN || err == EIO || err == ENOMEM;
}

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

// Directory containing `path` ("." when the path has no slash), for
// the post-rename directory fsync that makes the rename itself
// durable.
std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[noreturn]] void fail_disk_full(const std::string& path,
                                 const std::string& tmp_path, int err) {
  ::unlink(tmp_path.c_str());
  throw DiskFullError(path, errno_string(err));
}

[[noreturn]] void fail_io(const std::string& path, const std::string& tmp_path,
                          const char* op, int err) {
  ::unlink(tmp_path.c_str());
  throw std::runtime_error(std::string("atomic write of ") + path +
                           " failed in " + op + ": " + errno_string(err));
}

}  // namespace

void set_write_fault_hook(WriteFaultHook hook) noexcept {
  g_write_fault_hook.store(hook, std::memory_order_relaxed);
}

void atomic_write_file(const std::string& path, std::string_view bytes,
                       const AtomicWriteOptions& options) {
  atomic_write_file(path, bytes.data(), bytes.size(), options);
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, const AtomicWriteOptions& options) {
  const std::string tmp_path = path + ".tmp";

  FdCloser file;
  file.fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  if (file.fd < 0) {
    const int err = errno;
    if (is_disk_full(err)) fail_disk_full(path, tmp_path, err);
    throw std::runtime_error("atomic write of " + path +
                             " failed in open: " + errno_string(err));
  }

  // Bounded chunks keep a single huge payload from becoming one giant
  // write() — the kernel may truncate arbitrarily anyway, and a full
  // disk should surface after the first few chunks, not after staging
  // the whole buffer.
  constexpr std::size_t kMaxWriteChunk = std::size_t{1} << 18;
  const auto* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  int transient_left = options.max_transient_retries;
  while (remaining > 0) {
    std::size_t chunk = remaining < kMaxWriteChunk ? remaining : kMaxWriteChunk;
    if (const WriteFaultHook hook =
            g_write_fault_hook.load(std::memory_order_relaxed)) {
      const WriteFault fault = hook();
      if (fault.error != 0) {
        if (is_disk_full(fault.error))
          fail_disk_full(path, tmp_path, fault.error);
        if (!is_transient(fault.error) || transient_left-- <= 0)
          fail_io(path, tmp_path, "write", fault.error);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.retry_backoff_ms));
        continue;
      }
      if (fault.short_write && chunk > 1) chunk /= 2;
    }
    const ssize_t written = ::write(file.fd, cursor, chunk);
    if (written < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (is_disk_full(err)) fail_disk_full(path, tmp_path, err);
      if (!is_transient(err) || transient_left-- <= 0)
        fail_io(path, tmp_path, "write", err);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms));
      continue;
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }

  if (options.fsync_file && ::fsync(file.fd) != 0) {
    const int err = errno;
    if (is_disk_full(err)) fail_disk_full(path, tmp_path, err);
    fail_io(path, tmp_path, "fsync", err);
  }
  if (::close(file.fd) != 0) {
    const int err = errno;
    file.fd = -1;
    if (is_disk_full(err)) fail_disk_full(path, tmp_path, err);
    fail_io(path, tmp_path, "close", err);
  }
  file.fd = -1;

  if (options.before_rename) options.before_rename();

  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int err = errno;
    if (is_disk_full(err)) fail_disk_full(path, tmp_path, err);
    fail_io(path, tmp_path, "rename", err);
  }

  if (options.fsync_directory) {
    // Best-effort: a directory that cannot be opened or fsynced (e.g.
    // some overlayfs setups) does not undo an otherwise-complete
    // rename, so failures here are swallowed.
    FdCloser dir;
    dir.fd = ::open(parent_dir(path).c_str(),
                    O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir.fd >= 0) (void)::fsync(dir.fd);
  }
}

}  // namespace sssp::util
