#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sssp::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

void init_from_env() {
  if (const char* env = std::getenv("SSSP_LOG")) {
    g_level.store(parse_log_level(env), std::memory_order_relaxed);
  }
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  std::call_once(g_env_once, init_from_env);
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace sssp::util
