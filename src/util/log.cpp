#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace sssp::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

void init_from_env() {
  if (const char* env = std::getenv("SSSP_LOG")) {
    g_level.store(parse_log_level(env), std::memory_order_relaxed);
  }
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// 2026-08-06T12:34:56.789Z — UTC so logs from different machines and
// the trace files (which use a monotonic clock) can at least be
// ordered without timezone archaeology.
std::string iso8601_utc_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = time_point_cast<seconds>(now);
  const auto millis =
      duration_cast<milliseconds>(now - secs).count();
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  char buffer[80];
  std::snprintf(buffer, sizeof buffer,
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(millis));
  return buffer;
}

// Opened once from SSSP_LOG_FILE; nullptr when unset or unopenable.
// Intentionally never fclosed — the logger must outlive static
// destructors that may still log.
std::FILE* log_file_sink() {
  static std::FILE* sink = []() -> std::FILE* {
    const char* path = std::getenv("SSSP_LOG_FILE");
    if (!path || !*path) return nullptr;
    std::FILE* f = std::fopen(path, "a");
    if (!f) std::fprintf(stderr, "[WARN] cannot open SSSP_LOG_FILE %s\n", path);
    return f;
  }();
  return sink;
}

}  // namespace

LogLevel log_level() noexcept {
  std::call_once(g_env_once, init_from_env);
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

unsigned log_thread_id() noexcept {
  static std::atomic<unsigned> next{1};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace detail {

std::string format_line(LogLevel level, const std::string& message) {
  std::string line = iso8601_utc_now();
  line += " [";
  line += level_name(level);
  line += "] t";
  line += std::to_string(log_thread_id());
  line += ' ';
  line += message;
  return line;
}

void emit(LogLevel level, const std::string& message) {
  const std::string line = format_line(level, message);
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "%s\n", line.c_str());
  if (std::FILE* f = log_file_sink()) {
    std::fprintf(f, "%s\n", line.c_str());
    std::fflush(f);
  }
}

}  // namespace detail
}  // namespace sssp::util
