// Cooperative run control for long SSSP runs (docs/ROBUSTNESS.md,
// "Checkpoint & recovery"): a cancellation token combining an external
// stop request (SIGINT/SIGTERM), a wall-clock deadline budget, and a
// stall watchdog keyed on a monotone progress counter.
//
// The token is polled, never preemptive: drivers call poll_iteration()
// at iteration boundaries (where a checkpoint is consistent) and the
// engine calls should_abort() at stage boundaries / every few thousand
// vertices for mid-iteration responsiveness. A mid-iteration abort
// throws StopRequested and leaves the algorithm state torn — the caller
// must resume from the last boundary checkpoint, not from the live
// object.
//
// First stop reason wins: a deadline expiring after a SIGINT does not
// reclassify the run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace sssp::util {

enum class StopReason : int {
  kNone = 0,       // keep running
  kInterrupt = 1,  // SIGINT/SIGTERM (tools exit 11)
  kDeadline = 2,   // wall-clock budget expired (tools exit 9)
  kStall = 3,      // no frontier progress across the stall limit (exit 10)
};

const char* to_string(StopReason reason) noexcept;

// Thrown by mid-iteration abort points (engine stage boundaries). The
// algorithm object is unusable afterwards; only boundary checkpoints
// are valid resume points.
class StopRequested : public std::runtime_error {
 public:
  explicit StopRequested(StopReason reason);
  StopReason reason() const noexcept { return reason_; }

 private:
  StopReason reason_;
};

class RunControl {
 public:
  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  // Records the stop request. First reason wins; kNone is ignored.
  // Async-signal-safe (one lock-free atomic CAS) — the SIGINT handler
  // calls this directly.
  void request_stop(StopReason reason) noexcept;

  StopReason reason() const noexcept {
    return static_cast<StopReason>(reason_.load(std::memory_order_relaxed));
  }
  bool stop_requested() const noexcept { return reason() != StopReason::kNone; }

  // Arms the wall-clock budget, measured from now.
  void set_deadline(double seconds_from_now);
  bool has_deadline() const noexcept { return has_deadline_; }

  // Arms the stall watchdog: poll_iteration() reporting an unchanged
  // progress counter this many consecutive times requests kStall.
  // 0 disarms.
  void set_stall_limit(std::uint64_t iterations) noexcept {
    stall_limit_ = iterations;
  }

  // Iteration-boundary poll. `progress` is any monotone work counter
  // (the engine's total improving relaxations); the watchdog fires when
  // it stops moving. Checks the deadline too. Returns the stop reason
  // in effect (kNone = keep running).
  StopReason poll_iteration(std::uint64_t progress);

  // Cheap mid-stage check: external stop + deadline only (no stall
  // bookkeeping). Promotes an expired deadline to a stop request.
  bool should_abort() noexcept;

  // Throws StopRequested when a stop is pending (convenience for abort
  // points that cannot return early).
  void throw_if_stopped();

 private:
  std::atomic<int> reason_{0};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t stall_limit_ = 0;
  bool has_progress_ = false;
  std::uint64_t last_progress_ = 0;
  std::uint64_t stall_iterations_ = 0;
};

// SIGINT/SIGTERM -> control.request_stop(kInterrupt). One control can
// be installed per process at a time (tools install theirs right after
// flag parsing); installing replaces the previous one. The handler only
// touches lock-free atomics. A second signal while one is already
// pending hard-exits with the conventional 128 + signo, so a wedged
// run can still be killed from the keyboard — unless a signal-critical
// section is open (below), in which case the hard exit is deferred to
// the section's close.
void install_signal_stop(RunControl& control);
void uninstall_signal_stop() noexcept;

// Signal-critical section: while at least one is open, the installed
// handler's second-signal hard-exit path is *deferred* instead of
// executed — the pending 128+signo exit fires when the last section
// closes. The first (cooperative) signal is unaffected; it only sets
// the stop flag. The checkpoint writer wraps its tmp+rename window in
// one of these so an impatient ^C^C can never tear the protocol: the
// write either completes (valid new checkpoint, then the process
// exits) or was never entered (valid old checkpoint). Nestable,
// async-signal-safe (lock-free atomics only), and a no-op when no
// handler is installed.
class ScopedSignalCritical {
 public:
  ScopedSignalCritical() noexcept;
  ~ScopedSignalCritical();

  ScopedSignalCritical(const ScopedSignalCritical&) = delete;
  ScopedSignalCritical& operator=(const ScopedSignalCritical&) = delete;
};

// True when a deferred hard exit is pending (test hook; the exit itself
// happens when the critical section closes).
bool signal_hard_exit_pending() noexcept;

}  // namespace sssp::util
