// Wall-clock timing helpers (steady clock).
#pragma once

#include <chrono>

namespace sssp::util {

// Simple steady-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_micros() const noexcept { return elapsed_seconds() * 1e6; }
  double elapsed_millis() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple start/stop intervals, e.g. to measure
// the total controller overhead across all iterations of a run.
class AccumulatingTimer {
 public:
  void start() noexcept { timer_.reset(); }
  void stop() noexcept {
    total_ += timer_.elapsed_seconds();
    ++intervals_;
  }

  double total_seconds() const noexcept { return total_; }
  std::size_t intervals() const noexcept { return intervals_; }
  double mean_seconds() const noexcept {
    return intervals_ ? total_ / static_cast<double>(intervals_) : 0.0;
  }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  std::size_t intervals_ = 0;
};

}  // namespace sssp::util
