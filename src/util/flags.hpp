// A tiny command-line flag parser shared by the examples and the
// benchmark harness. Supports "--name=value", "--name value", and
// boolean "--name" / "--no-name". Unknown flags are reported as errors
// so experiment scripts fail loudly rather than silently ignoring typos.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sssp::util {

class Flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed input.
  // Positional (non --) arguments are collected in positional().
  Flags(int argc, const char* const* argv);

  // Register flags with defaults and help text; call before get_* so
  // --help output is complete and unknown-flag detection works.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  // Returns true if --help was passed; prints usage to stdout.
  bool handle_help(const std::string& program_description) const;

  // Throws std::invalid_argument if any parsed flag was never defined.
  void check_unknown() const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
  };

  std::string lookup(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace sssp::util
