#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace sssp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    // Pull chunks until the batch is exhausted.
    while (next_chunk_ < chunks_) {
      const std::size_t chunk = next_chunk_++;
      lock.unlock();
      const std::size_t per = (n_ + chunks_ - 1) / chunks_;
      const std::size_t begin = chunk * per;
      const std::size_t end = std::min(n_, begin + per);
      try {
        if (begin < end) (*body_)(begin, end);
      } catch (...) {
        lock.lock();
        if (!error_) error_ = std::current_exception();
        ++done_chunks_;
        done_cv_.notify_all();
        continue;
      }
      lock.lock();
      ++done_chunks_;
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    body(0, n);
    return;
  }
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  const std::size_t chunks = std::min(n, size() * 4);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    chunks_ = chunks;
    next_chunk_ = 0;
    done_chunks_ = 0;
    error_ = nullptr;
    ++generation_;
  }
  cv_.notify_all();
  // The caller helps drain chunks.
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (next_chunk_ < chunks_) {
      const std::size_t chunk = next_chunk_++;
      lock.unlock();
      const std::size_t per = (n_ + chunks_ - 1) / chunks_;
      const std::size_t begin = chunk * per;
      const std::size_t end = std::min(n_, begin + per);
      try {
        if (begin < end) body(begin, end);
      } catch (...) {
        lock.lock();
        if (!error_) error_ = std::current_exception();
        ++done_chunks_;
        continue;
      }
      lock.lock();
      ++done_chunks_;
    }
    done_cv_.wait(lock, [&] { return done_chunks_ == chunks_; });
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SSSP_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

}  // namespace sssp::util
