#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

namespace sssp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates as thread 0, so spawn one fewer.
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t thread_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      fn = fn_;
    }
    std::exception_ptr err;
    try {
      (*fn)(thread_id);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !error_) error_ = err;
      ++done_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    done_workers_ = 0;
    error_ = nullptr;
    ++generation_;
  }
  cv_.notify_all();
  std::exception_ptr caller_err;
  try {
    fn(0);
  } catch (...) {
    caller_err = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_workers_ == workers_.size(); });
  std::exception_ptr err = caller_err ? caller_err : error_;
  error_ = nullptr;
  fn_ = nullptr;
  if (err) {
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  for_each_chunk(chunks, [&](std::size_t chunk, std::size_t) {
    const std::size_t begin = chunk * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin < end) body(begin, end);
  });
}

namespace {

struct GlobalPoolState {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
};

GlobalPoolState& global_pool_state() {
  static GlobalPoolState state;
  return state;
}

std::size_t env_threads() {
  if (const char* env = std::getenv("SSSP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  GlobalPoolState& state = global_pool_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.pool) state.pool = std::make_unique<ThreadPool>(env_threads());
  return *state.pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  const std::size_t resolved =
      threads != 0 ? threads
                   : (env_threads() != 0
                          ? env_threads()
                          : std::max<std::size_t>(
                                1, std::thread::hardware_concurrency()));
  GlobalPoolState& state = global_pool_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.pool && state.pool->size() == resolved) return;
  state.pool.reset();  // join the old workers before starting new ones
  state.pool = std::make_unique<ThreadPool>(resolved);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

}  // namespace sssp::util
