#include "sssp/bellman_ford.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace sssp::algo {
namespace {

// Atomic fetch-min on a distance slot; returns true if it improved.
bool atomic_fetch_min(std::atomic<graph::Distance>& slot,
                      graph::Distance value) {
  graph::Distance current = slot.load(std::memory_order_relaxed);
  while (value < current) {
    if (slot.compare_exchange_weak(current, value, std::memory_order_relaxed))
      return true;
  }
  return false;
}

}  // namespace

SsspResult bellman_ford(const graph::CsrGraph& graph, graph::VertexId source,
                        const BellmanFordOptions& options) {
  if (source >= graph.num_vertices())
    throw std::invalid_argument("bellman_ford: source out of range");

  const std::size_t n = graph.num_vertices();
  // Frontier-based: only vertices whose distance changed last round are
  // re-expanded (classic "SPFA"-style work reduction, still Bellman-Ford
  // bounds in the worst case).
  std::vector<std::atomic<graph::Distance>> dist(n);
  for (auto& d : dist) d.store(graph::kInfiniteDistance, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<graph::VertexId> frontier{source};
  // Membership flags for the next frontier; atomic exchange guarantees
  // exactly one thread appends each vertex (no duplicates, no race).
  std::vector<std::atomic<std::uint8_t>> in_next(n);
  for (auto& flag : in_next) flag.store(0, std::memory_order_relaxed);

  SsspResult result;
  result.algorithm = "bellman-ford";
  result.source = source;

  while (!frontier.empty()) {
    frontier::IterationStats stats;
    stats.x1 = frontier.size();

    std::vector<graph::VertexId> next;
    std::atomic<std::uint64_t> edges{0};
    std::atomic<std::uint64_t> improving{0};
    std::mutex next_mu;

    auto relax_range = [&](std::size_t begin, std::size_t end) {
      std::vector<graph::VertexId> local_next;
      std::uint64_t local_edges = 0, local_improving = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const graph::VertexId u = frontier[i];
        const graph::Distance du = dist[u].load(std::memory_order_relaxed);
        const auto neighbors = graph.neighbors(u);
        const auto weights = graph.weights_of(u);
        local_edges += neighbors.size();
        for (std::size_t e = 0; e < neighbors.size(); ++e) {
          const graph::VertexId v = neighbors[e];
          if (atomic_fetch_min(dist[v], du + weights[e])) {
            ++local_improving;
            if (in_next[v].exchange(1, std::memory_order_relaxed) == 0) {
              local_next.push_back(v);
            }
          }
        }
      }
      edges.fetch_add(local_edges, std::memory_order_relaxed);
      improving.fetch_add(local_improving, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(next_mu);
      next.insert(next.end(), local_next.begin(), local_next.end());
    };

    if (options.parallel) {
      util::parallel_for(frontier.size(), relax_range);
    } else {
      relax_range(0, frontier.size());
    }

    for (const graph::VertexId v : next)
      in_next[v].store(0, std::memory_order_relaxed);

    stats.x2 = edges.load();
    stats.improving_relaxations = improving.load();
    stats.x3 = next.size();
    stats.x4 = next.size();  // no bisect: everything proceeds immediately
    result.improving_relaxations += stats.improving_relaxations;
    result.iterations.push_back(stats);
    frontier = std::move(next);
  }

  result.distances.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    result.distances[i] = dist[i].load(std::memory_order_relaxed);

  // Parent recovery: with parallel atomic-min relaxation, in-flight
  // parent writes could disagree with the final distances, so derive the
  // tree deterministically from the settled distances instead.
  result.parents = derive_parents(graph, result.distances, source);
  return result;
}

}  // namespace sssp::algo
