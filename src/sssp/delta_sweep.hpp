// Delta autotuner for the baseline: sweeps a geometric grid of static
// delta values, simulates each run on the target device, and reports
// the time-minimizing delta. This is how the harness realizes the
// paper's "baseline uses a delta that minimizes execution time".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "sssp/result.hpp"

namespace sssp::algo {

struct DeltaSweepPoint {
  graph::Distance delta = 0;
  double simulated_seconds = 0.0;
  double average_parallelism = 0.0;
  double average_power_w = 0.0;
  std::size_t iterations = 0;
  std::uint64_t improving_relaxations = 0;
  std::uint64_t max_x2 = 0;  // peak frontier load (Fig. 3's peak parallelism)
};

struct DeltaSweepResult {
  std::vector<DeltaSweepPoint> points;
  graph::Distance best_delta = 0;  // time-minimizing
};

struct DeltaSweepOptions {
  // Geometric grid: delta = base * ratio^i while delta <= max_delta.
  graph::Distance min_delta = 1;
  graph::Distance max_delta = 1u << 20;
  double ratio = 2.0;
};

// Runs near-far at each delta, timing on (device, policy).
DeltaSweepResult sweep_delta(const graph::CsrGraph& graph,
                             graph::VertexId source,
                             const sim::DeviceSpec& device,
                             const sim::DvfsPolicy& policy,
                             const DeltaSweepOptions& options = {});

}  // namespace sssp::algo
