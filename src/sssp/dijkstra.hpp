// Serial Dijkstra — the gold-standard reference every other algorithm
// is property-tested against.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "sssp/result.hpp"

namespace sssp::algo {

// Binary-heap Dijkstra with lazy deletion. O((V + E) log V).
// Throws std::invalid_argument for an out-of-range source.
SsspResult dijkstra(const graph::CsrGraph& graph, graph::VertexId source);

// Distance-only variant (no result bookkeeping) for tight loops.
std::vector<graph::Distance> dijkstra_distances(const graph::CsrGraph& graph,
                                                graph::VertexId source);

}  // namespace sssp::algo
