// Common result type for all SSSP algorithms: exact distances plus the
// per-iteration trace needed by the controller analysis and the device
// simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontier/stats.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "sim/workload.hpp"

namespace sssp::algo {

struct SsspResult {
  std::string algorithm;
  graph::VertexId source = 0;
  std::vector<graph::Distance> distances;
  // Shortest-path-tree parents: parents[v] is the predecessor of v on a
  // shortest path from the source (kInvalidVertex if unreached; the
  // source is its own parent). Empty if the algorithm did not record
  // them.
  std::vector<graph::VertexId> parents;
  // Per-iteration pipeline statistics (empty for algorithms that do not
  // run the near-far pipeline, e.g. Dijkstra).
  std::vector<frontier::IterationStats> iterations;
  // Successful (distance-improving) relaxations — the work-efficiency
  // metric. A work-optimal run performs one per reachable vertex.
  std::uint64_t improving_relaxations = 0;
  // Total host wall-clock spent inside the controller (0 for baselines).
  double controller_seconds = 0.0;
  // Self-healing control-plane lifetime counts (docs/ROBUSTNESS.md);
  // all 0 for baselines and for healthy self-tuning runs.
  std::uint64_t controller_degradations = 0;
  std::uint64_t controller_recoveries = 0;
  std::uint64_t controller_rejected_inputs = 0;
  // Online invariant audits (verify/auditor.hpp) executed during the
  // run and the violations they found; both 0 when auditing was off.
  std::uint64_t audits_run = 0;
  std::uint64_t audit_violations = 0;

  std::size_t num_iterations() const noexcept { return iterations.size(); }

  // Vertices with a finite distance.
  std::size_t reached_count() const noexcept;

  // Mean of X2 over all iterations — the paper's "average parallelism".
  double average_parallelism() const noexcept;

  // Converts the iteration trace into a simulator workload.
  sim::RunWorkload to_workload(const std::string& dataset) const;
};

// Verifies `result` against reference distances (e.g. Dijkstra's);
// returns the number of mismatching vertices (0 == exact).
std::size_t count_distance_mismatches(
    const std::vector<graph::Distance>& got,
    const std::vector<graph::Distance>& expected);

// Reconstructs the shortest path source -> target by walking parents.
// Returns the vertex sequence including both endpoints; empty when the
// target is unreachable or parents were not recorded. Throws
// std::logic_error on a corrupt parent chain (cycle / length overflow).
std::vector<graph::VertexId> reconstruct_path(const SsspResult& result,
                                              graph::VertexId target);

// Derives a valid shortest-path tree from settled distances in one
// serial edge sweep: any edge u->v with dist[u] + w == dist[v] closes
// v. Used by parallel algorithms whose in-flight parent writes could
// disagree with the final distances.
std::vector<graph::VertexId> derive_parents(
    const graph::CsrGraph& graph,
    const std::vector<graph::Distance>& distances, graph::VertexId source);

// Validates the whole shortest-path tree against the graph: for every
// reached non-source vertex there must be an edge parent->v whose
// weight closes the distance exactly (dist[parent] + w == dist[v]).
// Returns the number of violating vertices (0 == valid tree).
std::size_t count_tree_violations(const graph::CsrGraph& graph,
                                  const SsspResult& result);

}  // namespace sssp::algo
