// The baseline near-far SSSP of Davidson et al. as implemented in
// Gunrock (paper Section 3): a static user-chosen delta partitions the
// frontier into a near queue (processed now) and a far queue (postponed).
#pragma once

#include "graph/csr.hpp"
#include "sssp/result.hpp"
#include "util/run_control.hpp"

namespace sssp::algo {

struct NearFarOptions {
  // Phase width. 0 selects mean edge weight (a common rule of thumb).
  graph::Distance delta = 0;
  // Safety valve for pathological inputs (0 = unlimited).
  std::size_t max_iterations = 0;
  // Relax large frontiers on the host thread pool (see
  // frontier::NearFarEngine::Options). The parallel pipeline is
  // deterministic — distances, parents, frontier ordering, and
  // per-iteration stats are bit-identical at any thread count — so it
  // is on by default.
  bool parallel = true;
  // Frontiers below this size relax serially.
  std::size_t parallel_threshold = 4096;
  // Cooperative cancellation (deadline / signal / stall): polled each
  // iteration and inside the engine stages; a stop request aborts the
  // run with util::StopRequested. Not owned; may be null.
  util::RunControl* control = nullptr;
  // When false, the per-iteration control->poll_iteration() call is
  // skipped: the stall watchdog's bookkeeping is not thread-safe, so
  // runs sharing one RunControl across pool threads (the batch
  // engine's independent lanes, sssp/batch_engine.hpp) disable it and
  // rely on the engine's should_abort() polls, which are atomic.
  bool iteration_poll = true;
};

SsspResult near_far(const graph::CsrGraph& graph, graph::VertexId source,
                    const NearFarOptions& options = {});

}  // namespace sssp::algo
