#include "sssp/multi_source.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "graph/degree_stats.hpp"
#include "util/rng.hpp"

namespace sssp::algo {

namespace {

// Deterministic source sample shared by both run_multi_source
// overloads: identical draws for a given seed regardless of how the
// runs are executed afterwards.
std::vector<graph::VertexId> sample_sources(const graph::CsrGraph& graph,
                                            const MultiSourceOptions& options) {
  if (graph.num_vertices() == 0)
    throw std::invalid_argument("run_multi_source: empty graph");
  if (options.num_sources == 0)
    throw std::invalid_argument("run_multi_source: num_sources must be > 0");
  if (options.min_reach_fraction < 0.0 || options.min_reach_fraction > 1.0)
    throw std::invalid_argument(
        "run_multi_source: min_reach_fraction out of [0,1]");

  const auto min_reach = static_cast<std::size_t>(
      options.min_reach_fraction * static_cast<double>(graph.num_vertices()));

  util::Xoshiro256 rng(options.seed);
  std::vector<graph::VertexId> sources;
  const std::size_t max_attempts = 16 * options.num_sources;
  std::size_t attempts = 0;
  while (sources.size() < options.num_sources) {
    if (++attempts > max_attempts)
      throw std::invalid_argument(
          "run_multi_source: no sources reach the required fraction");
    const auto candidate =
        static_cast<graph::VertexId>(rng.next_below(graph.num_vertices()));
    if (min_reach > 0 &&
        graph::count_reachable(graph, candidate) < min_reach)
      continue;
    sources.push_back(candidate);
  }
  return sources;
}

void accumulate(MultiSourceSummary& summary, const SsspResult& result) {
  summary.average_parallelism.push_back(result.average_parallelism());
  summary.iteration_counts.push_back(result.num_iterations());
  summary.improving_relaxations.push_back(result.improving_relaxations);
  summary.all_iterations.insert(summary.all_iterations.end(),
                                result.iterations.begin(),
                                result.iterations.end());
}

void finalize(MultiSourceSummary& summary) {
  double par_sum = 0.0, iter_sum = 0.0, relax_sum = 0.0;
  for (std::size_t i = 0; i < summary.sources.size(); ++i) {
    par_sum += summary.average_parallelism[i];
    iter_sum += static_cast<double>(summary.iteration_counts[i]);
    relax_sum += static_cast<double>(summary.improving_relaxations[i]);
  }
  const double k = static_cast<double>(summary.sources.size());
  summary.mean_average_parallelism = par_sum / k;
  summary.mean_iterations = iter_sum / k;
  summary.mean_improving_relaxations = relax_sum / k;
}

}  // namespace

MultiSourceSummary run_multi_source(const graph::CsrGraph& graph,
                                    const SsspRunner& runner,
                                    const MultiSourceOptions& options) {
  MultiSourceSummary summary;
  summary.sources = sample_sources(graph, options);
  for (const graph::VertexId source : summary.sources)
    accumulate(summary, runner(graph, source));
  finalize(summary);
  return summary;
}

MultiSourceSummary run_multi_source(const graph::CsrGraph& graph,
                                    const BatchOptions& batch,
                                    const MultiSourceOptions& options) {
  MultiSourceSummary summary;
  summary.sources = sample_sources(graph, options);
  for (std::size_t begin = 0; begin < summary.sources.size();
       begin += kMaxBatchLanes) {
    const std::size_t count =
        std::min(kMaxBatchLanes, summary.sources.size() - begin);
    const auto result = run_batch(
        graph,
        std::span<const graph::VertexId>(summary.sources).subspan(begin,
                                                                  count),
        batch);
    for (const SsspResult& lane : result.lanes) accumulate(summary, lane);
  }
  finalize(summary);
  return summary;
}

}  // namespace sssp::algo
