#include "sssp/multi_source.hpp"

#include <stdexcept>

#include "graph/degree_stats.hpp"
#include "util/rng.hpp"

namespace sssp::algo {

MultiSourceSummary run_multi_source(const graph::CsrGraph& graph,
                                    const SsspRunner& runner,
                                    const MultiSourceOptions& options) {
  if (graph.num_vertices() == 0)
    throw std::invalid_argument("run_multi_source: empty graph");
  if (options.num_sources == 0)
    throw std::invalid_argument("run_multi_source: num_sources must be > 0");
  if (options.min_reach_fraction < 0.0 || options.min_reach_fraction > 1.0)
    throw std::invalid_argument(
        "run_multi_source: min_reach_fraction out of [0,1]");

  const auto min_reach = static_cast<std::size_t>(
      options.min_reach_fraction * static_cast<double>(graph.num_vertices()));

  util::Xoshiro256 rng(options.seed);
  MultiSourceSummary summary;
  const std::size_t max_attempts = 16 * options.num_sources;
  std::size_t attempts = 0;
  while (summary.sources.size() < options.num_sources) {
    if (++attempts > max_attempts)
      throw std::invalid_argument(
          "run_multi_source: no sources reach the required fraction");
    const auto candidate =
        static_cast<graph::VertexId>(rng.next_below(graph.num_vertices()));
    if (min_reach > 0 &&
        graph::count_reachable(graph, candidate) < min_reach)
      continue;
    summary.sources.push_back(candidate);
  }

  double par_sum = 0.0, iter_sum = 0.0, relax_sum = 0.0;
  for (const graph::VertexId source : summary.sources) {
    const SsspResult result = runner(graph, source);
    summary.average_parallelism.push_back(result.average_parallelism());
    summary.iteration_counts.push_back(result.num_iterations());
    summary.improving_relaxations.push_back(result.improving_relaxations);
    summary.all_iterations.insert(summary.all_iterations.end(),
                                  result.iterations.begin(),
                                  result.iterations.end());
    par_sum += result.average_parallelism();
    iter_sum += static_cast<double>(result.num_iterations());
    relax_sum += static_cast<double>(result.improving_relaxations);
  }
  const double k = static_cast<double>(summary.sources.size());
  summary.mean_average_parallelism = par_sum / k;
  summary.mean_iterations = iter_sum / k;
  summary.mean_improving_relaxations = relax_sum / k;
  return summary;
}

}  // namespace sssp::algo
