#include "sssp/near_far.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "frontier/engine.hpp"
#include "frontier/far_queue.hpp"

namespace sssp::algo {

SsspResult near_far(const graph::CsrGraph& graph, graph::VertexId source,
                    const NearFarOptions& options) {
  graph::Distance delta = options.delta;
  if (delta == 0) {
    delta = static_cast<graph::Distance>(
        std::max(1.0, std::round(graph.mean_edge_weight())));
  }

  frontier::NearFarEngine::Options engine_options;
  engine_options.parallel = options.parallel;
  engine_options.parallel_threshold = options.parallel_threshold;
  engine_options.control = options.control;
  frontier::NearFarEngine engine(graph, source, engine_options);
  frontier::FarQueue far;

  SsspResult result;
  result.algorithm = "near-far";
  result.source = source;

  // Current phase: frontier holds vertices with distance < threshold.
  std::uint64_t phase = 0;
  graph::Distance threshold = delta;

  std::vector<graph::VertexId> refill;
  while (!engine.frontier_empty()) {
    if (options.max_iterations && result.iterations.size() >= options.max_iterations)
      break;
    if (options.control != nullptr && options.iteration_poll) {
      const util::StopReason reason = options.control->poll_iteration(
          engine.total_improving_relaxations());
      if (reason != util::StopReason::kNone) throw util::StopRequested(reason);
    }

    frontier::IterationStats stats;
    stats.delta = static_cast<double>(threshold);

    const auto advance = engine.advance_and_filter();
    stats.x1 = advance.x1;
    stats.x2 = advance.x2;
    stats.x3 = advance.x3;
    stats.improving_relaxations = advance.improving_relaxations;

    stats.x4 = engine.bisect(threshold);
    far.push_bulk(engine.spill(), engine.distances());
    engine.clear_spill();

    // Stage 4 — bisect-far-queue: when the near queue is exhausted,
    // advance the phase to the first one containing live far work.
    if (engine.frontier_empty() && !far.empty()) {
      const graph::Distance next_live = far.min_live_distance(engine.distances());
      stats.rebalance_items += far.size();
      if (next_live != graph::kInfiniteDistance) {
        phase = static_cast<std::uint64_t>(next_live / delta);
        threshold = static_cast<graph::Distance>(phase + 1) * delta;
        refill.clear();
        stats.rebalance_items += far.drain_below(threshold, engine.distances(), refill);
        engine.inject(refill);
      } else {
        far.clear();  // everything stale: drop it
      }
    }

    stats.far_queue_size = far.size();
    result.iterations.push_back(stats);
  }

  result.improving_relaxations = engine.total_improving_relaxations();
  result.distances = engine.distances();
  // Parents are maintained deterministically by both advance modes.
  result.parents = engine.parents();
  return result;
}

}  // namespace sssp::algo
