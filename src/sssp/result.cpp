#include "sssp/result.hpp"

#include <algorithm>
#include <climits>
#include <stdexcept>

namespace sssp::algo {

std::size_t SsspResult::reached_count() const noexcept {
  std::size_t count = 0;
  for (const graph::Distance d : distances)
    if (d != graph::kInfiniteDistance) ++count;
  return count;
}

double SsspResult::average_parallelism() const noexcept {
  if (iterations.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& it : iterations) sum += static_cast<double>(it.x2);
  return sum / static_cast<double>(iterations.size());
}

sim::RunWorkload SsspResult::to_workload(const std::string& dataset) const {
  sim::RunWorkload workload;
  workload.algorithm = algorithm;
  workload.dataset = dataset;
  workload.iterations.reserve(iterations.size());
  for (const auto& it : iterations)
    workload.iterations.push_back(it.to_work());
  return workload;
}

std::vector<graph::VertexId> reconstruct_path(const SsspResult& result,
                                              graph::VertexId target) {
  std::vector<graph::VertexId> path;
  if (result.parents.empty() || target >= result.parents.size()) return path;
  if (result.distances[target] == graph::kInfiniteDistance) return path;

  graph::VertexId v = target;
  while (true) {
    path.push_back(v);
    if (v == result.source) break;
    v = result.parents[v];
    if (v == graph::kInvalidVertex || path.size() > result.parents.size())
      throw std::logic_error("reconstruct_path: corrupt parent chain");
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<graph::VertexId> derive_parents(
    const graph::CsrGraph& graph,
    const std::vector<graph::Distance>& distances, graph::VertexId source) {
  const std::size_t n = graph.num_vertices();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  if (source < n && distances[source] == 0) parents[source] = source;
  for (graph::VertexId u = 0; u < n; ++u) {
    const graph::Distance du = distances[u];
    if (du == graph::kInfiniteDistance) continue;
    const auto neighbors = graph.neighbors(u);
    const auto weights = graph.weights_of(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::VertexId v = neighbors[i];
      if (v != source && parents[v] == graph::kInvalidVertex &&
          du + weights[i] == distances[v]) {
        parents[v] = u;
      }
    }
  }
  return parents;
}

std::size_t count_tree_violations(const graph::CsrGraph& graph,
                                  const SsspResult& result) {
  if (result.parents.size() != graph.num_vertices()) return SIZE_MAX;
  std::size_t violations = 0;
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (result.distances[v] == graph::kInfiniteDistance) {
      if (result.parents[v] != graph::kInvalidVertex) ++violations;
      continue;
    }
    if (v == result.source) {
      if (result.parents[v] != result.source) ++violations;
      continue;
    }
    const graph::VertexId p = result.parents[v];
    if (p == graph::kInvalidVertex || p >= graph.num_vertices() ||
        result.distances[p] == graph::kInfiniteDistance) {
      ++violations;
      continue;
    }
    // An edge p->v with exactly the closing weight must exist.
    bool closed = false;
    const auto neighbors = graph.neighbors(p);
    const auto weights = graph.weights_of(p);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] == v &&
          result.distances[p] + weights[i] == result.distances[v]) {
        closed = true;
        break;
      }
    }
    if (!closed) ++violations;
  }
  return violations;
}

std::size_t count_distance_mismatches(
    const std::vector<graph::Distance>& got,
    const std::vector<graph::Distance>& expected) {
  const std::size_t n = std::min(got.size(), expected.size());
  std::size_t mismatches =
      got.size() > expected.size() ? got.size() - expected.size()
                                   : expected.size() - got.size();
  for (std::size_t i = 0; i < n; ++i)
    if (got[i] != expected[i]) ++mismatches;
  return mismatches;
}

}  // namespace sssp::algo
