// Classic delta-stepping (Meyer & Sanders, 2003) with light/heavy edge
// splitting — the algorithm the near-far method derives from, included
// as a second baseline and for cross-validation.
#pragma once

#include "graph/csr.hpp"
#include "sssp/result.hpp"

namespace sssp::algo {

struct DeltaSteppingOptions {
  // Bucket width. 0 selects the Meyer-Sanders heuristic
  // delta = max(1, max_weight / max_degree).
  graph::Distance delta = 0;
};

SsspResult delta_stepping(const graph::CsrGraph& graph,
                          graph::VertexId source,
                          const DeltaSteppingOptions& options = {});

}  // namespace sssp::algo
