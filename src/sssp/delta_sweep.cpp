#include "sssp/delta_sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/run.hpp"
#include "sssp/near_far.hpp"

namespace sssp::algo {

DeltaSweepResult sweep_delta(const graph::CsrGraph& graph,
                             graph::VertexId source,
                             const sim::DeviceSpec& device,
                             const sim::DvfsPolicy& policy,
                             const DeltaSweepOptions& options) {
  if (options.min_delta == 0 || options.min_delta > options.max_delta)
    throw std::invalid_argument("sweep_delta: bad delta range");
  if (options.ratio <= 1.0)
    throw std::invalid_argument("sweep_delta: ratio must be > 1");

  DeltaSweepResult result;
  double best_seconds = 0.0;

  double delta_f = static_cast<double>(options.min_delta);
  graph::Distance previous = 0;
  while (true) {
    const auto delta = static_cast<graph::Distance>(delta_f);
    if (delta > options.max_delta) break;
    if (delta != previous) {  // geometric grid may repeat after rounding
      previous = delta;

      NearFarOptions nf;
      nf.delta = delta;
      const SsspResult run = near_far(graph, source, nf);
      sim::SimulateOptions sim_opts;
      sim_opts.keep_iteration_reports = false;
      const sim::RunReport report =
          sim::simulate_run(device, policy, run.to_workload(""), sim_opts);

      DeltaSweepPoint point;
      point.delta = delta;
      point.simulated_seconds = report.total_seconds;
      point.average_parallelism = run.average_parallelism();
      point.average_power_w = report.average_power_w;
      point.iterations = run.num_iterations();
      point.improving_relaxations = run.improving_relaxations;
      for (const auto& it : run.iterations)
        point.max_x2 = std::max(point.max_x2, it.x2);
      result.points.push_back(point);

      if (result.best_delta == 0 || point.simulated_seconds < best_seconds) {
        best_seconds = point.simulated_seconds;
        result.best_delta = delta;
      }
    }
    delta_f *= options.ratio;
  }
  return result;
}

}  // namespace sssp::algo
