#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace sssp::algo {
namespace {

graph::Distance heuristic_delta(const graph::CsrGraph& graph) {
  graph::Weight max_weight = 1;
  std::size_t max_degree = 1;
  for (const graph::Weight w : graph.weights())
    max_weight = std::max(max_weight, w);
  for (std::size_t v = 0; v < graph.num_vertices(); ++v)
    max_degree = std::max(max_degree,
                          graph.out_degree(static_cast<graph::VertexId>(v)));
  return std::max<graph::Distance>(1, max_weight / max_degree);
}

}  // namespace

SsspResult delta_stepping(const graph::CsrGraph& graph,
                          graph::VertexId source,
                          const DeltaSteppingOptions& options) {
  if (source >= graph.num_vertices())
    throw std::invalid_argument("delta_stepping: source out of range");

  const graph::Distance delta =
      options.delta > 0 ? options.delta : heuristic_delta(graph);

  const std::size_t n = graph.num_vertices();
  std::vector<graph::Distance> dist(n, graph::kInfiniteDistance);
  std::vector<graph::VertexId> parent(n, graph::kInvalidVertex);
  dist[source] = 0;
  parent[source] = source;

  // Cyclic bucket array; bucket index = dist / delta mod num_buckets.
  // num_buckets only needs to exceed (max_weight / delta) + 1 so that
  // in-flight relaxations never wrap onto the active bucket.
  graph::Weight max_weight = 1;
  for (const graph::Weight w : graph.weights())
    max_weight = std::max(max_weight, w);
  const std::size_t num_buckets =
      static_cast<std::size_t>(max_weight / delta) + 2;
  std::vector<std::vector<graph::VertexId>> buckets(num_buckets);

  auto bucket_of = [&](graph::Distance d) {
    return static_cast<std::size_t>((d / delta) % num_buckets);
  };
  buckets[bucket_of(0)].push_back(source);

  SsspResult result;
  result.algorithm = "delta-stepping";
  result.source = source;

  std::size_t current = bucket_of(0);
  std::uint64_t base_bucket = 0;  // absolute index of `current`
  std::size_t remaining = 1;      // total vertices across buckets (upper bound)

  std::vector<graph::VertexId> deleted;  // settled-this-phase set
  while (remaining > 0) {
    // Find next non-empty bucket (cyclic scan).
    std::size_t scanned = 0;
    while (buckets[current].empty() && scanned < num_buckets) {
      current = (current + 1) % num_buckets;
      ++base_bucket;
      ++scanned;
    }
    if (buckets[current].empty()) break;

    const graph::Distance phase_lo =
        static_cast<graph::Distance>(base_bucket) * delta;
    const graph::Distance phase_hi = phase_lo + delta;

    deleted.clear();
    // Inner loop: relax light edges (w < delta) until the bucket stops
    // refilling; collect unique settled vertices in `deleted`.
    while (!buckets[current].empty()) {
      std::vector<graph::VertexId> request =
          std::move(buckets[current]);
      buckets[current].clear();

      frontier::IterationStats stats;
      stats.delta = static_cast<double>(delta);
      std::uint64_t processed = 0;
      for (const graph::VertexId u : request) {
        const graph::Distance du = dist[u];
        if (du < phase_lo || du >= phase_hi) continue;  // stale or moved on
        ++processed;
        deleted.push_back(u);
        const auto neighbors = graph.neighbors(u);
        const auto weights = graph.weights_of(u);
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          if (weights[i] >= delta) continue;  // heavy: postponed
          ++stats.x2;
          const graph::VertexId v = neighbors[i];
          const graph::Distance nd = du + weights[i];
          if (nd < dist[v]) {
            dist[v] = nd;
            parent[v] = u;
            ++stats.improving_relaxations;
            buckets[bucket_of(nd)].push_back(v);
            ++remaining;
          }
        }
      }
      stats.x1 = processed;
      stats.x3 = stats.improving_relaxations;
      stats.x4 = buckets[current].size();
      result.improving_relaxations += stats.improving_relaxations;
      if (processed > 0) result.iterations.push_back(stats);
      remaining = remaining > request.size() ? remaining - request.size() : 0;
    }

    // Phase end: relax heavy edges of everything settled this phase.
    frontier::IterationStats heavy_stats;
    heavy_stats.delta = static_cast<double>(delta);
    heavy_stats.x1 = deleted.size();
    for (const graph::VertexId u : deleted) {
      const graph::Distance du = dist[u];
      if (du < phase_lo || du >= phase_hi) continue;
      const auto neighbors = graph.neighbors(u);
      const auto weights = graph.weights_of(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (weights[i] < delta) continue;
        ++heavy_stats.x2;
        const graph::VertexId v = neighbors[i];
        const graph::Distance nd = du + weights[i];
        if (nd < dist[v]) {
          dist[v] = nd;
          parent[v] = u;
          ++heavy_stats.improving_relaxations;
          buckets[bucket_of(nd)].push_back(v);
          ++remaining;
        }
      }
    }
    if (heavy_stats.x2 > 0) {
      heavy_stats.x3 = heavy_stats.improving_relaxations;
      result.improving_relaxations += heavy_stats.improving_relaxations;
      result.iterations.push_back(heavy_stats);
    }
  }

  result.distances = std::move(dist);
  result.parents = std::move(parent);
  return result;
}

}  // namespace sssp::algo
