// Multi-source experiment aggregation. Published SSSP numbers average
// over several sources (a single source is noisy: a hub start and a
// periphery start behave very differently); this helper runs any SSSP
// callable over a deterministic source sample and aggregates the
// quantities the evaluation reports.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr.hpp"
#include "sssp/batch_engine.hpp"
#include "sssp/result.hpp"

namespace sssp::algo {

struct MultiSourceOptions {
  std::size_t num_sources = 8;
  std::uint64_t seed = 1;
  // Only accept sources that reach at least this fraction of vertices
  // (skips isolated pockets; 0 accepts anything). Rejected draws are
  // redrawn, up to 16x num_sources attempts.
  double min_reach_fraction = 0.25;
};

struct MultiSourceSummary {
  std::vector<graph::VertexId> sources;
  // Per-source values, index-aligned with `sources`.
  std::vector<double> average_parallelism;
  std::vector<std::size_t> iteration_counts;
  std::vector<std::uint64_t> improving_relaxations;
  // Aggregates.
  double mean_average_parallelism = 0.0;
  double mean_iterations = 0.0;
  double mean_improving_relaxations = 0.0;
  // Concatenated per-iteration traces from every run (for distribution
  // figures aggregated over sources, as in Fig. 5).
  std::vector<frontier::IterationStats> all_iterations;
};

using SsspRunner =
    std::function<SsspResult(const graph::CsrGraph&, graph::VertexId)>;

// Samples sources deterministically from `seed` and runs `runner` on
// each. Throws std::invalid_argument for an empty graph, num_sources == 0,
// or when no acceptable source can be found.
MultiSourceSummary run_multi_source(const graph::CsrGraph& graph,
                                    const SsspRunner& runner,
                                    const MultiSourceOptions& options = {});

// Batched variant: same deterministic source sample (identical draws
// for a given seed), but the runs go through the batched multi-source
// engine (batch_engine.hpp) in groups of up to kMaxBatchLanes instead
// of one solve per source. Per-source aggregates are taken from each
// lane's SsspResult; under BatchStrategy::kFused the lanes of one group
// share the union-frontier trace, so iteration counts describe the
// shared sweep rather than an isolated run (docs/PERFORMANCE.md).
MultiSourceSummary run_multi_source(const graph::CsrGraph& graph,
                                    const BatchOptions& batch,
                                    const MultiSourceOptions& options = {});

}  // namespace sssp::algo
