#include "sssp/dijkstra.hpp"

#include <queue>
#include <stdexcept>
#include <utility>

#include "util/weight_math.hpp"

namespace sssp::algo {

std::vector<graph::Distance> dijkstra_distances(const graph::CsrGraph& graph,
                                                graph::VertexId source) {
  if (source >= graph.num_vertices())
    throw std::invalid_argument("dijkstra: source out of range");

  std::vector<graph::Distance> dist(graph.num_vertices(),
                                    graph::kInfiniteDistance);
  using Item = std::pair<graph::Distance, graph::VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // lazy-deleted stale entry
    const auto neighbors = graph.neighbors(u);
    const auto weights = graph.weights_of(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::VertexId v = neighbors[i];
      const graph::Distance nd = util::saturating_add(d, weights[i]);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.emplace(nd, v);
      }
    }
  }
  return dist;
}

SsspResult dijkstra(const graph::CsrGraph& graph, graph::VertexId source) {
  if (source >= graph.num_vertices())
    throw std::invalid_argument("dijkstra: source out of range");

  SsspResult result;
  result.algorithm = "dijkstra";
  result.source = source;
  result.distances.assign(graph.num_vertices(), graph::kInfiniteDistance);
  result.parents.assign(graph.num_vertices(), graph::kInvalidVertex);

  using Item = std::pair<graph::Distance, graph::VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  result.distances[source] = 0;
  result.parents[source] = source;
  heap.emplace(0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != result.distances[u]) continue;
    const auto neighbors = graph.neighbors(u);
    const auto weights = graph.weights_of(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::VertexId v = neighbors[i];
      const graph::Distance nd = util::saturating_add(d, weights[i]);
      if (nd < result.distances[v]) {
        result.distances[v] = nd;
        result.parents[v] = u;
        ++result.improving_relaxations;
        heap.emplace(nd, v);
      }
    }
  }
  return result;
}

}  // namespace sssp::algo
