// Batched multi-source SSSP: K queries amortized over one graph sweep
// (docs/PERFORMANCE.md, "Batched multi-source").
//
// Real traffic against a resident graph is many sources; running each
// query alone pays a full frontier sweep per source even though the
// relax inner loop is memory-bound on the CSR arrays. Two strategies,
// behind one knob:
//
//   kFused        one shared run: the union of the per-source frontiers
//                 is planned edge-balanced by the shared prefix-sum
//                 planner (frontier/plan.hpp) and every CSR edge is
//                 fetched once per union-frontier visit for all K
//                 sources. Distances live in structure-of-arrays lanes,
//                 lane-contiguous per vertex (dist[v*K + l]), so each
//                 edge's K relaxations walk one contiguous row and the
//                 inner loop over lanes vectorizes in the serial path.
//   kIndependent  K independent single-source runs sharing the CSR and
//                 the global thread pool: each lane is a serial
//                 near-far run, and the pool's dynamic chunk claiming
//                 IS the work-stealing between lanes. Wins when K
//                 saturates the cores and the per-source frontiers do
//                 not overlap (bench/multi_source measures both per
//                 graph class).
//
// Determinism contract (the PR 3 bar): every lane's distances are
// bit-identical to the corresponding single-source run at any thread
// count and under either strategy — shortest distances are unique, and
// both strategies compute exact ones by schedule-independent pipelines.
// Per-lane parents are a canonical derivation from the final distances
// (result.hpp derive_parents), so they too are thread-count- and
// strategy-independent, and every lane passes the certifier.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "frontier/stats.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "sssp/result.hpp"
#include "util/run_control.hpp"

namespace sssp::algo {

enum class BatchStrategy : std::uint8_t { kFused = 0, kIndependent = 1 };

const char* to_string(BatchStrategy strategy) noexcept;
// Parses "fused" / "independent"; throws std::invalid_argument.
BatchStrategy parse_batch_strategy(std::string_view name);

// Hard lane cap: the fused engine tracks per-vertex lane activity in a
// 64-bit mask. Callers with more sources run several batches.
inline constexpr std::size_t kMaxBatchLanes = 64;

struct BatchOptions {
  BatchStrategy strategy = BatchStrategy::kFused;
  // Shared phase width. 0 selects mean edge weight (the near-far
  // default, so batched lanes walk the same phase ladder as a
  // single-source run with default delta).
  graph::Distance delta = 0;
  // Safety valve (0 = unlimited): shared iterations for kFused,
  // per-lane iterations for kIndependent.
  std::size_t max_iterations = 0;
  // kFused: relax union frontiers at or above this size on the host
  // pool; smaller ones relax serially (same snapshot semantics either
  // way, so the trajectory is identical — only wall-clock differs).
  bool parallel = true;
  std::size_t parallel_threshold = 4096;
  // Cooperative cancellation shared by every lane; polled at fused
  // phase boundaries and inside independent lanes' serial advances.
  // Not owned; may be null.
  util::RunControl* control = nullptr;
};

struct BatchResult {
  BatchStrategy strategy = BatchStrategy::kFused;
  // Index-aligned with the `sources` span. Each lane carries exact
  // distances, canonical derived parents, and per-lane improving
  // counts. kIndependent lanes carry their own full iteration traces;
  // kFused lanes all reference the shared union-frontier trace (also
  // in batch_iterations), whose x1/x2 count the union once — not per
  // lane.
  std::vector<SsspResult> lanes;
  // kFused: the shared union-frontier iteration trace. Empty for
  // kIndependent.
  std::vector<frontier::IterationStats> batch_iterations;
  // kFused: CSR edge fetches across the run — each counted once for
  // all K lanes (the amortization the batch exists for). Equals the
  // sum of per-lane x2 for kIndependent.
  std::uint64_t edges_fetched = 0;
};

// Runs K = sources.size() queries under `options`. Throws
// std::invalid_argument for an empty source list, more than
// kMaxBatchLanes sources, or an out-of-range source. Duplicate sources
// are legal (lanes are computed independently of each other's
// presence).
BatchResult run_batch(const graph::CsrGraph& graph,
                      std::span<const graph::VertexId> sources,
                      const BatchOptions& options = {});

}  // namespace sssp::algo
