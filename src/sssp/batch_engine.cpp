#include "sssp/batch_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fault/failpoint.hpp"
#include "frontier/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "res/budget.hpp"
#include "sssp/near_far.hpp"
#include "util/thread_pool.hpp"
#include "util/weight_math.hpp"

namespace sssp::algo {

const char* to_string(BatchStrategy strategy) noexcept {
  switch (strategy) {
    case BatchStrategy::kFused: return "fused";
    case BatchStrategy::kIndependent: return "independent";
  }
  return "unknown";
}

BatchStrategy parse_batch_strategy(std::string_view name) {
  if (name == "fused") return BatchStrategy::kFused;
  if (name == "independent") return BatchStrategy::kIndependent;
  throw std::invalid_argument("unknown batch strategy '" + std::string(name) +
                              "' (expected fused or independent)");
}

namespace {

struct BatchMetrics {
  obs::Counter& runs;
  obs::Counter& advances;
  obs::Counter& edges_fetched;
  obs::Histogram& lanes;

  static BatchMetrics& get() {
    static BatchMetrics m{
        obs::MetricsRegistry::global().counter("batch.runs"),
        obs::MetricsRegistry::global().counter("batch.advance.calls"),
        obs::MetricsRegistry::global().counter("batch.advance.edges"),
        obs::MetricsRegistry::global().histogram("batch.lanes")};
    return m;
  }
};

// The fused engine: one union frontier, K structure-of-arrays distance
// lanes laid out lane-contiguous per vertex (dist_[v*K + l]). Every
// iteration relaxes ALL K lanes of every union-frontier vertex from an
// iteration-start snapshot:
//
//   - each CSR edge is fetched once and its weight applied to a
//     contiguous K-row of distances (the memory-bound amortization);
//   - the snapshot makes the set of improved (vertex, lane) pairs a
//     pure function of iteration-start state, so the update set, the
//     pending lane masks, and the post-iteration distances are
//     schedule-independent; the union frontier is canonicalized by
//     sorting on vertex id, so the whole trajectory — per-iteration
//     stats included — is bit-identical at any thread count;
//   - lanes for which the vertex is not "active" simply relax from
//     their current labels (INF rows are absorbing no-ops). This does
//     strictly more relaxation work per visit than K isolated runs,
//     in exchange for touching the adjacency arrays once — and may
//     propagate a lane's labels earlier than its own phase ladder
//     would, which is harmless: improvements always re-enter the
//     pipeline, so exactness is unaffected.
//
// Near/far bookkeeping is per (vertex, lane): a lane below the shared
// threshold keeps its vertex in the union frontier; a lane at or above
// it is postponed as a (vertex, lane, distance) far entry with the
// usual staleness rule (stored != current means a fresher copy
// re-entered the pipeline).
class FusedBatchEngine {
 public:
  FusedBatchEngine(const graph::CsrGraph& graph,
                   std::span<const graph::VertexId> sources,
                   const BatchOptions& options)
      : graph_(graph),
        options_(options),
        lanes_(sources.size()),
        dist_(graph.num_vertices() * sources.size(),
              graph::kInfiniteDistance),
        pending_(graph.num_vertices(), 0),
        mark_(graph.num_vertices(), 0),
        lane_improving_(sources.size(), 0) {
    for (std::size_t l = 0; l < lanes_; ++l)
      dist_[static_cast<std::size_t>(sources[l]) * lanes_ + l] = 0;
    frontier_.assign(sources.begin(), sources.end());
    std::sort(frontier_.begin(), frontier_.end());
    frontier_.erase(std::unique(frontier_.begin(), frontier_.end()),
                    frontier_.end());
  }

  void run(graph::Distance delta) {
    graph::Distance threshold = delta;
    while (!frontier_.empty()) {
      if (options_.max_iterations != 0 &&
          iterations_.size() >= options_.max_iterations)
        break;
      if (options_.control != nullptr) {
        const util::StopReason reason =
            options_.control->poll_iteration(total_improving_);
        if (reason != util::StopReason::kNone)
          throw util::StopRequested(reason);
      }

      frontier::IterationStats stats;
      stats.delta = static_cast<double>(threshold);
      stats.x1 = frontier_.size();
      stats.x2 = advance();
      edges_fetched_ += stats.x2;
      stats.x3 = updated_.size();
      std::uint64_t iteration_improving = 0;
      stats.x4 = bisect(threshold, iteration_improving);
      stats.improving_relaxations = iteration_improving;
      total_improving_ += iteration_improving;

      if (frontier_.empty() && !far_.empty()) {
        stats.rebalance_items += advance_phase(delta, threshold);
      }
      stats.far_queue_size = far_.size();
      iterations_.push_back(stats);
      if (obs::metrics_enabled()) {
        BatchMetrics& m = BatchMetrics::get();
        m.advances.add();
        m.edges_fetched.add(stats.x2);
      }
    }
  }

  std::size_t num_lanes() const noexcept { return lanes_; }
  std::uint64_t edges_fetched() const noexcept { return edges_fetched_; }
  std::uint64_t lane_improving(std::size_t l) const {
    return lane_improving_[l];
  }
  const graph::Distance* lane_row(graph::VertexId v) const {
    return &dist_[static_cast<std::size_t>(v) * lanes_];
  }
  std::vector<frontier::IterationStats> take_iterations() {
    return std::move(iterations_);
  }

 private:
  struct FarEntry {
    graph::VertexId vertex;
    std::uint32_t lane;
    graph::Distance distance;  // tentative distance when enqueued
  };

  // Opens a fresh dedup epoch (reset-free except on 2^32 wraparound).
  void fresh_epoch() {
    ++epoch_;
    if (epoch_ == 0) {
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
  }

  void abort_if_stopped() {
    if (options_.control != nullptr && options_.control->should_abort())
      throw util::StopRequested(options_.control->reason());
  }

  // Relaxes all K lanes of every union-frontier vertex from the
  // iteration-start snapshot. Consumes the frontier; leaves the
  // improved vertex set in updated_ (sorted) and the improved lane
  // masks in pending_. Returns X2 (CSR edges fetched, counted once
  // for all lanes).
  std::uint64_t advance() {
    SSSP_TRACE_SPAN("batch.advance");
    updated_.clear();
    fresh_epoch();
    abort_if_stopped();
    const std::uint64_t x2 =
        options_.parallel && frontier_.size() >= options_.parallel_threshold
            ? advance_parallel()
            : advance_serial();
    std::sort(updated_.begin(), updated_.end());
    frontier_.clear();
    return x2;
  }

  std::uint64_t advance_serial() {
    const std::size_t x1 = frontier_.size();
    fsnap_.resize(x1 * lanes_);
    for (std::size_t i = 0; i < x1; ++i)
      std::memcpy(&fsnap_[i * lanes_], lane_row_mutable(frontier_[i]),
                  lanes_ * sizeof(graph::Distance));
    std::uint64_t x2 = 0;
    for (std::size_t i = 0; i < x1; ++i) {
      if ((i & 2047u) == 0) abort_if_stopped();
      const graph::VertexId u = frontier_[i];
      const graph::Distance* row = &fsnap_[i * lanes_];
      const auto neighbors = graph_.neighbors(u);
      const auto weights = graph_.weights_of(u);
      x2 += neighbors.size();
      for (std::size_t e = 0; e < neighbors.size(); ++e) {
        const graph::VertexId v = neighbors[e];
        const graph::Distance w = weights[e];
        graph::Distance* dv = lane_row_mutable(v);
        std::uint64_t improved = 0;
        for (std::size_t l = 0; l < lanes_; ++l) {
          const graph::Distance nd = util::saturating_add(row[l], w);
          if (nd < dv[l]) {
            dv[l] = nd;
            improved |= std::uint64_t{1} << l;
          }
        }
        if (improved != 0) {
          pending_[v] |= improved;
          if (mark_[v] != epoch_) {
            mark_[v] = epoch_;
            updated_.push_back(v);
          }
        }
      }
    }
    return x2;
  }

  std::uint64_t advance_parallel() {
    util::ThreadPool& pool = util::ThreadPool::global();
    const std::size_t x1 = frontier_.size();
    fsnap_.resize(x1 * lanes_);
    const frontier::PlanParams params;  // edge-balanced defaults
    const std::uint64_t x2 = frontier::build_frontier_plan(
        graph_, frontier_, params, edge_prefix_, chunk_begin_, range_base_,
        [&](std::size_t i, graph::VertexId u) {
          std::memcpy(&fsnap_[i * lanes_], lane_row_mutable(u),
                      lanes_ * sizeof(graph::Distance));
        });
    abort_if_stopped();
    const std::size_t num_chunks = chunk_begin_.size() - 1;
    chunk_updated_.resize(std::max(chunk_updated_.size(), num_chunks));
    pool.for_each_chunk(num_chunks, [&](std::size_t c, std::size_t) {
      auto& local_updated = chunk_updated_[c];
      local_updated.clear();
      const std::size_t begin = chunk_begin_[c];
      const std::size_t end = chunk_begin_[c + 1];
      for (std::size_t i = begin; i < end; ++i) {
        const graph::VertexId u = frontier_[i];
        const graph::Distance* row = &fsnap_[i * lanes_];
        const auto neighbors = graph_.neighbors(u);
        const auto weights = graph_.weights_of(u);
        for (std::size_t e = 0; e < neighbors.size(); ++e) {
          const graph::VertexId v = neighbors[e];
          const graph::Distance w = weights[e];
          graph::Distance* dv = lane_row_mutable(v);
          std::uint64_t improved = 0;
          for (std::size_t l = 0; l < lanes_; ++l) {
            const graph::Distance nd = util::saturating_add(row[l], w);
            std::atomic_ref<graph::Distance> slot(dv[l]);
            graph::Distance current = slot.load(std::memory_order_relaxed);
            while (nd < current) {
              if (slot.compare_exchange_weak(current, nd,
                                             std::memory_order_relaxed)) {
                improved |= std::uint64_t{1} << l;
                break;
              }
            }
          }
          if (improved == 0) continue;
          std::atomic_ref<std::uint64_t> lane_mask(pending_[v]);
          lane_mask.fetch_or(improved, std::memory_order_relaxed);
          std::atomic_ref<std::uint32_t> mark(mark_[v]);
          std::uint32_t seen = mark.load(std::memory_order_relaxed);
          while (seen != epoch_) {
            if (mark.compare_exchange_weak(seen, epoch_,
                                           std::memory_order_relaxed)) {
              local_updated.push_back(v);
              break;
            }
          }
        }
      }
    });
    for (std::size_t c = 0; c < num_chunks; ++c)
      updated_.insert(updated_.end(), chunk_updated_[c].begin(),
                      chunk_updated_[c].end());
    return x2;
  }

  // Per (vertex, lane) near/far split of the improved set: near lanes
  // keep the vertex in the union frontier, far lanes are postponed as
  // entries. Also tallies per-lane improving counts (the improved-pair
  // set is schedule-independent, so the counts are too). Consumes
  // updated_ and the pending masks; returns X4.
  std::uint64_t bisect(graph::Distance threshold,
                       std::uint64_t& iteration_improving) {
    SSSP_TRACE_SPAN("batch.bisect");
    abort_if_stopped();
    for (const graph::VertexId v : updated_) {
      std::uint64_t mask = pending_[v];
      pending_[v] = 0;
      iteration_improving +=
          static_cast<std::uint64_t>(std::popcount(mask));
      const graph::Distance* dv = lane_row_mutable(v);
      bool near = false;
      while (mask != 0) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        ++lane_improving_[l];
        const graph::Distance d = dv[l];
        if (d < threshold) {
          near = true;
        } else {
          far_.push_back({v, l, d});
        }
      }
      if (near) frontier_.push_back(v);
    }
    updated_.clear();
    return frontier_.size();
  }

  // Stage 4 over the lane-aware far queue: find the first phase with
  // live work, drain its live entries into the union frontier (dedup
  // by vertex), drop stale entries, retain the rest. Returns the
  // number of entries scanned.
  std::uint64_t advance_phase(graph::Distance delta,
                              graph::Distance& threshold) {
    std::uint64_t scanned = far_.size();
    graph::Distance next_live = graph::kInfiniteDistance;
    for (const FarEntry& entry : far_) {
      if (lane_row_mutable(entry.vertex)[entry.lane] == entry.distance)
        next_live = std::min(next_live, entry.distance);
    }
    if (next_live == graph::kInfiniteDistance) {
      far_.clear();  // everything stale: drop it
      return scanned;
    }
    const std::uint64_t phase =
        static_cast<std::uint64_t>(next_live / delta);
    threshold = static_cast<graph::Distance>(phase + 1) * delta;
    fresh_epoch();
    std::size_t kept = 0;
    scanned += far_.size();
    for (const FarEntry& entry : far_) {
      const graph::Distance current =
          lane_row_mutable(entry.vertex)[entry.lane];
      if (current != entry.distance) continue;  // stale
      if (entry.distance < threshold) {
        if (mark_[entry.vertex] != epoch_) {
          mark_[entry.vertex] = epoch_;
          frontier_.push_back(entry.vertex);
        }
      } else {
        far_[kept++] = entry;
      }
    }
    far_.resize(kept);
    std::sort(frontier_.begin(), frontier_.end());
    return scanned;
  }

  graph::Distance* lane_row_mutable(graph::VertexId v) {
    return &dist_[static_cast<std::size_t>(v) * lanes_];
  }

  const graph::CsrGraph& graph_;
  const BatchOptions options_;
  const std::size_t lanes_;
  std::vector<graph::Distance> dist_;    // n*K, lane-contiguous per vertex
  std::vector<std::uint64_t> pending_;   // per-vertex improved-lane masks
  std::vector<std::uint32_t> mark_;      // epoch-stamped dedup marks
  std::uint32_t epoch_ = 0;
  std::vector<graph::VertexId> frontier_;  // union frontier, sorted
  std::vector<graph::VertexId> updated_;
  std::vector<graph::Distance> fsnap_;   // iteration-start |F|*K snapshot
  std::vector<FarEntry> far_;
  std::vector<std::uint64_t> lane_improving_;
  std::vector<frontier::IterationStats> iterations_;
  std::uint64_t total_improving_ = 0;
  std::uint64_t edges_fetched_ = 0;
  // Shared-planner artifacts + per-chunk output scratch.
  std::vector<std::uint64_t> edge_prefix_;
  std::vector<std::size_t> chunk_begin_;
  std::vector<std::uint64_t> range_base_;
  std::vector<std::vector<graph::VertexId>> chunk_updated_;
};

BatchResult run_fused(const graph::CsrGraph& graph,
                      std::span<const graph::VertexId> sources,
                      const BatchOptions& options, graph::Distance delta) {
  FusedBatchEngine engine(graph, sources, options);
  engine.run(delta);

  BatchResult out;
  out.strategy = BatchStrategy::kFused;
  out.batch_iterations = engine.take_iterations();
  out.edges_fetched = engine.edges_fetched();
  out.lanes.resize(sources.size());
  const std::size_t n = graph.num_vertices();
  util::ThreadPool::global().for_each_chunk(
      sources.size(), [&](std::size_t l, std::size_t) {
        SsspResult& lane = out.lanes[l];
        lane.algorithm = "near-far";
        lane.source = sources[l];
        lane.distances.resize(n);
        for (std::size_t v = 0; v < n; ++v)
          lane.distances[v] =
              engine.lane_row(static_cast<graph::VertexId>(v))[l];
        lane.parents = derive_parents(graph, lane.distances, lane.source);
        lane.improving_relaxations = engine.lane_improving(l);
      });
  for (SsspResult& lane : out.lanes) lane.iterations = out.batch_iterations;
  return out;
}

BatchResult run_independent(const graph::CsrGraph& graph,
                            std::span<const graph::VertexId> sources,
                            const BatchOptions& options,
                            graph::Distance delta) {
  BatchResult out;
  out.strategy = BatchStrategy::kIndependent;
  out.lanes.resize(sources.size());
  // One serial near-far run per lane; the pool's dynamic chunk
  // claiming over lanes is the work-stealing. Lanes must not re-enter
  // the pool themselves (run_on_all is serialized per pool — a nested
  // parallel advance from a worker thread would deadlock), hence
  // parallel = false per lane.
  util::ThreadPool::global().for_each_chunk(
      sources.size(), [&](std::size_t l, std::size_t) {
        NearFarOptions nf;
        nf.delta = delta;
        nf.max_iterations = options.max_iterations;
        nf.parallel = false;
        nf.control = options.control;
        nf.iteration_poll = false;  // shared control: stall bookkeeping
                                    // is not thread-safe
        SsspResult lane = near_far(graph, sources[l], nf);
        // Canonical parents, identical under either strategy.
        lane.parents = derive_parents(graph, lane.distances, lane.source);
        out.lanes[l] = std::move(lane);
      });
  for (const SsspResult& lane : out.lanes)
    for (const frontier::IterationStats& it : lane.iterations)
      out.edges_fetched += it.x2;
  return out;
}

}  // namespace

BatchResult run_batch(const graph::CsrGraph& graph,
                      std::span<const graph::VertexId> sources,
                      const BatchOptions& options) {
  if (sources.empty())
    throw std::invalid_argument("run_batch: no sources");
  if (sources.size() > kMaxBatchLanes)
    throw std::invalid_argument(
        "run_batch: more than kMaxBatchLanes (" +
        std::to_string(kMaxBatchLanes) + ") sources");
  for (const graph::VertexId source : sources)
    if (source >= graph.num_vertices())
      throw std::invalid_argument("run_batch: source out of range");

  graph::Distance delta = options.delta;
  if (delta == 0) {
    delta = static_cast<graph::Distance>(
        std::max(1.0, std::round(graph.mean_edge_weight())));
  }

  // Memory-budget degrade: shrink K (docs/ROBUSTNESS.md, "Resource
  // budgets & exhaustion"). The dominant batch footprint is the
  // per-lane state — SoA distances (u64) + parents (u32) per vertex
  // per lane, plus the fused engine's per-vertex lane masks — and it
  // scales linearly with K, so when the whole batch does not fit the
  // budget we split the sources in half and run two sub-batches
  // sequentially. Lanes are computed independently of each other's
  // presence (header contract), so the per-lane results are identical
  // to the unsplit batch; only amortization is lost. A single lane is
  // never refused: K=1 is the service's baseline footprint.
  if (sources.size() > 1) {
    const std::uint64_t lane_bytes =
        static_cast<std::uint64_t>(graph.num_vertices()) *
        (sizeof(graph::Distance) + sizeof(graph::VertexId));
    const std::uint64_t batch_bytes =
        lane_bytes * sources.size() +
        static_cast<std::uint64_t>(graph.num_vertices()) *
            sizeof(std::uint64_t);
    if (!res::ResourceBudget::global().check_memory(batch_bytes,
                                                    "res.batch.alloc")) {
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("batch.split.memory").add(1);
      const std::size_t mid = sources.size() / 2;
      BatchResult left = run_batch(graph, sources.subspan(0, mid), options);
      BatchResult right = run_batch(graph, sources.subspan(mid), options);
      left.lanes.insert(left.lanes.end(),
                        std::make_move_iterator(right.lanes.begin()),
                        std::make_move_iterator(right.lanes.end()));
      left.batch_iterations.insert(left.batch_iterations.end(),
                                   right.batch_iterations.begin(),
                                   right.batch_iterations.end());
      left.edges_fetched += right.edges_fetched;
      return left;
    }
  }

  BatchResult out = options.strategy == BatchStrategy::kFused
                        ? run_fused(graph, sources, options, delta)
                        : run_independent(graph, sources, options, delta);

  // Single-lane mutation drill: corrupts lane 0's distance array after
  // parents were derived, so the per-lane certifier must fail exactly
  // that lane (tests/sssp/batch_engine_test.cpp, soak batched leg).
  if (SSSP_FAILPOINT("batch.lane.flip_dist")) {
    SsspResult& lane = out.lanes.front();
    for (std::size_t v = 0; v < lane.distances.size(); ++v) {
      if (v == lane.source) continue;
      if (lane.distances[v] == 0 ||
          lane.distances[v] == graph::kInfiniteDistance)
        continue;
      lane.distances[v] ^= 1;
      break;
    }
  }

  if (obs::metrics_enabled()) {
    BatchMetrics& m = BatchMetrics::get();
    m.runs.add();
    m.lanes.record(static_cast<double>(sources.size()));
  }
  return out;
}

}  // namespace sssp::algo
