// Frontier-based Bellman-Ford — the "maximum parallelism, maximum
// redundant work" end of the SSSP design space, used as a comparison
// point and as a stress test for the relaxation machinery. Optionally
// runs rounds in parallel on the host thread pool with atomic-min
// relaxations (the final distances are interleaving-independent).
#pragma once

#include "graph/csr.hpp"
#include "sssp/result.hpp"

namespace sssp::algo {

struct BellmanFordOptions {
  // Use the global host thread pool for each relaxation round.
  bool parallel = false;
};

SsspResult bellman_ford(const graph::CsrGraph& graph, graph::VertexId source,
                        const BellmanFordOptions& options = {});

}  // namespace sssp::algo
