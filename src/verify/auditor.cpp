#include "verify/auditor.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "verify/flight_recorder.hpp"

namespace sssp::verify {

const char* to_string(AuditCheck check) noexcept {
  switch (check) {
    case AuditCheck::kFrontierAccounting: return "frontier-accounting";
    case AuditCheck::kBoundaryMonotone: return "boundary-monotone";
    case AuditCheck::kDistanceRegression: return "distance-regression";
    case AuditCheck::kControllerFinite: return "controller-finite";
  }
  return "unknown";
}

void InvariantAuditor::report(std::uint64_t iteration, AuditCheck check,
                              std::string detail, std::size_t& fresh) {
  ++violations_;
  ++fresh;
  if (findings_.size() < options_.max_findings)
    findings_.push_back({iteration, check, std::move(detail)});
}

std::size_t InvariantAuditor::audit(const IterationAudit& it) {
  ++audits_;
  std::size_t fresh = 0;

  // A1: frontier conservation. Every vertex the filter kept improved at
  // least once, every improvement is one of the X2 edge items, and the
  // bisect only splits the filtered frontier.
  if (it.improving_relaxations > it.x2) {
    std::ostringstream detail;
    detail << "improving=" << it.improving_relaxations << " > x2=" << it.x2;
    report(it.iteration, AuditCheck::kFrontierAccounting, detail.str(), fresh);
  }
  if (it.x3 > it.improving_relaxations) {
    std::ostringstream detail;
    detail << "x3=" << it.x3 << " > improving=" << it.improving_relaxations;
    report(it.iteration, AuditCheck::kFrontierAccounting, detail.str(), fresh);
  }
  if (it.x4 > it.x3) {
    std::ostringstream detail;
    detail << "x4=" << it.x4 << " > x3=" << it.x3;
    report(it.iteration, AuditCheck::kFrontierAccounting, detail.str(), fresh);
  }

  // A2: Eq. 7 boundary shape. Bounds strictly ascend to a final INF and
  // never dip below the floor.
  if (!it.far_bounds.empty()) {
    if (it.far_bounds.back() != graph::kInfiniteDistance)
      report(it.iteration, AuditCheck::kBoundaryMonotone,
             "last far-queue bound is not INF", fresh);
    if (it.far_floor > it.far_bounds.front()) {
      std::ostringstream detail;
      detail << "floor=" << it.far_floor << " above first bound "
             << it.far_bounds.front();
      report(it.iteration, AuditCheck::kBoundaryMonotone, detail.str(),
             fresh);
    }
    for (std::size_t i = 1; i < it.far_bounds.size(); ++i) {
      if (it.far_bounds[i] > it.far_bounds[i - 1]) continue;
      std::ostringstream detail;
      detail << "bound[" << i << "]=" << it.far_bounds[i]
             << " <= bound[" << i - 1 << "]=" << it.far_bounds[i - 1];
      report(it.iteration, AuditCheck::kBoundaryMonotone, detail.str(),
             fresh);
      break;  // one ordering finding per audit is enough signal
    }
  }

  // A3: settled distances never regress. Fixed probe set, O(probes) per
  // audit; the certifier covers the full array at the end.
  if (!it.distances.empty()) {
    if (probe_vertices_.empty()) {
      const std::size_t n = it.distances.size();
      const std::size_t count = std::min(options_.distance_probes, n);
      const std::size_t stride = count > 0 ? n / count : 1;
      probe_vertices_.reserve(count);
      probe_distances_.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const auto v = static_cast<graph::VertexId>(i * stride);
        probe_vertices_.push_back(v);
        probe_distances_.push_back(it.distances[v]);
      }
    } else {
      for (std::size_t i = 0; i < probe_vertices_.size(); ++i) {
        const graph::VertexId v = probe_vertices_[i];
        if (v >= it.distances.size()) continue;
        const graph::Distance now = it.distances[v];
        if (now > probe_distances_[i]) {
          std::ostringstream detail;
          detail << "dist[" << v << "] regressed " << probe_distances_[i]
                 << " -> " << now;
          report(it.iteration, AuditCheck::kDistanceRegression, detail.str(),
                 fresh);
        }
        probe_distances_[i] = now;
      }
    }
  }

  // A4: controller state stays finite. A NaN/inf delta or model estimate
  // poisons every subsequent plan; catch it the iteration it appears.
  if (!std::isfinite(it.delta) || it.delta <= 0.0) {
    std::ostringstream detail;
    detail << "delta=" << it.delta;
    report(it.iteration, AuditCheck::kControllerFinite, detail.str(), fresh);
  }
  if (!std::isfinite(it.degree_estimate) || it.degree_estimate < 0.0) {
    std::ostringstream detail;
    detail << "degree_estimate=" << it.degree_estimate;
    report(it.iteration, AuditCheck::kControllerFinite, detail.str(), fresh);
  }
  if (!std::isfinite(it.alpha_estimate) || it.alpha_estimate < 0.0) {
    std::ostringstream detail;
    detail << "alpha_estimate=" << it.alpha_estimate;
    report(it.iteration, AuditCheck::kControllerFinite, detail.str(), fresh);
  }

  if (fresh > 0) {
    const char* note = findings_.empty()
                           ? "violation"
                           : to_string(findings_.back().check);
    record_event(FlightEventKind::kAudit, it.iteration, note, fresh);
  }
  return fresh;
}

void InvariantAuditor::reset() {
  audits_ = 0;
  violations_ = 0;
  findings_.clear();
  probe_vertices_.clear();
  probe_distances_.clear();
}

}  // namespace sssp::verify
