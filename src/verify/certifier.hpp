// Result certifier — O(V+E) validation of a finished SsspResult as a
// self-contained certificate (docs/ROBUSTNESS.md, "Verification &
// post-mortem").
//
// The checks together are *complete*: a result that passes carries a
// proof that its labels are the exact shortest-path distances, without
// re-running any solver.
//   - edge consistency: dist[v] <= dist[u] + w for every edge (u,v) —
//     by induction along any shortest path, dist[v] <= true_dist(v),
//     and no edge can leave the reached set into an INF label;
//   - parent tightness: every reached non-source v has a parent edge
//     with dist[parent] + w == dist[v], and the parent pointers are
//     acyclic — so a real path of length dist[v] exists, giving
//     dist[v] >= true_dist(v);
//   - exact labels at the endpoints: dist[source] == 0 with the source
//     its own parent, unreached vertices labelled INF with no parent.
// Equality follows for every vertex. The optional strict mode
// re-derives distances with sssp/dijkstra and cross-checks — defense in
// depth against a bug in the certifier itself, affordable on small
// graphs.
//
// The edge/vertex sweep runs on the thread pool (per-chunk counters and
// violation samples merged in chunk order, so the report is
// deterministic at any thread count). Distance arithmetic uses the same
// saturating add as the relaxation kernels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "sssp/result.hpp"

namespace sssp::verify {

enum class ViolationKind : std::uint8_t {
  kShape = 0,             // result arrays do not match the graph
  kSourceLabel = 1,       // dist/parent wrong at the source
  kEdgeRelaxation = 2,    // dist[v] > dist[u] + w(u,v)
  kParentRange = 3,       // parent id out of range or missing
  kParentEdge = 4,        // no tight edge parent(v) -> v
  kParentCycle = 5,       // parent pointers do not reach the source
  kUnreachableLabel = 6,  // INF label with a parent, or vice versa
  kCrossCheck = 7,        // strict mode: label differs from Dijkstra
};

const char* to_string(ViolationKind kind) noexcept;

struct Violation {
  ViolationKind kind = ViolationKind::kShape;
  graph::VertexId vertex = graph::kInvalidVertex;  // primary vertex
  std::string detail;
};

struct CertifyOptions {
  // Run the edge/vertex sweeps on the thread pool above this vertex
  // count (results are identical either way).
  bool parallel = true;
  std::size_t parallel_threshold = 1 << 14;
  // Violation samples retained in the certificate (the total count is
  // always exact).
  std::size_t max_violations = 16;
  // Strict mode: additionally cross-check every label against
  // sssp/dijkstra — skipped (cross_checked == false) above
  // strict_max_vertices, where the O((V+E) log V) re-solve stops being
  // a cheap double-check.
  bool strict = false;
  std::size_t strict_max_vertices = std::size_t{1} << 22;
};

struct Certificate {
  bool certified = false;
  std::uint64_t vertices_checked = 0;
  std::uint64_t edges_checked = 0;
  std::uint64_t violations = 0;       // exact total
  std::vector<Violation> samples;     // capped at max_violations
  bool cross_checked = false;         // strict Dijkstra pass ran
  double seconds = 0.0;

  // One-line human summary ("certified, 1024 vertices / 4096 edges" or
  // "FAILED: 3 violations (first: edge-relaxation at v=17: ...)").
  std::string summary() const;
};

// Validates `result` against `graph`. Never throws on a bad result —
// every defect lands in the certificate; throws std::invalid_argument
// only when the inputs are unusable (source out of range).
Certificate certify(const graph::CsrGraph& graph,
                    const algo::SsspResult& result,
                    const CertifyOptions& options = {});

}  // namespace sssp::verify
