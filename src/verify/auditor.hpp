// Online invariant auditor — cheap per-iteration checks at pipeline
// phase boundaries (docs/ROBUSTNESS.md, "Verification & post-mortem").
//
// Where the certifier proves the *final* answer, the auditor watches the
// run while it is still cheap to stop: a corrupted distance array or a
// broken far-queue boundary caught at iteration k costs k iterations,
// not a full run plus a failed certification. The checks are O(probes +
// partitions) per audit — independent of graph size — so sampling every
// N iterations keeps overhead under the 2% budget even at N = 1 on
// non-trivial graphs.
//
// Invariant catalog (IDs match docs/ROBUSTNESS.md):
//   A1 frontier accounting   — improving <= X2, X3 <= improving,
//                              X4 <= X3 (each filtered vertex improved
//                              at least once; bisect only splits).
//   A2 boundary monotone     — far-queue bounds strictly ascending,
//                              last == INF, floor below the first
//                              (Eq. 7 only ever tightens).
//   A3 distance regression   — settled labels never increase between
//                              audits, verified on a fixed probe set.
//   A4 controller finite     — delta/degree/alpha finite, delta > 0
//                              (a NaN here poisons every later plan).
//
// The auditor takes plain data (spans + scalars), not engine/controller
// objects: verify sits below core in the library graph, so core can
// feed it and react (quarantine / abort) without a dependency cycle.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace sssp::verify {

// Thrown by the run loop in audit-abort mode when an invariant trips at
// an iteration boundary (the state is still snapshottable, so the
// checkpoint layer can persist it before unwinding).
class AuditViolation : public std::runtime_error {
 public:
  AuditViolation(std::uint64_t iteration, const std::string& detail)
      : std::runtime_error("invariant audit failed at iteration " +
                           std::to_string(iteration) + ": " + detail),
        iteration_(iteration) {}
  std::uint64_t iteration() const noexcept { return iteration_; }

 private:
  std::uint64_t iteration_;
};

enum class AuditCheck : std::uint8_t {
  kFrontierAccounting = 0,  // A1
  kBoundaryMonotone = 1,    // A2
  kDistanceRegression = 2,  // A3
  kControllerFinite = 3,    // A4
};

const char* to_string(AuditCheck check) noexcept;

struct AuditFinding {
  std::uint64_t iteration = 0;
  AuditCheck check = AuditCheck::kFrontierAccounting;
  std::string detail;
};

// One iteration's observable state, sampled at the end of
// SelfTuningRun::step(). Spans alias engine/queue storage and are only
// read during the audit call.
struct IterationAudit {
  std::uint64_t iteration = 0;
  double delta = 0.0;
  std::uint64_t x1 = 0;
  std::uint64_t x2 = 0;
  std::uint64_t x3 = 0;
  std::uint64_t x4 = 0;
  std::uint64_t improving_relaxations = 0;
  std::uint64_t far_size = 0;
  double degree_estimate = 0.0;
  double alpha_estimate = 0.0;
  // Far-queue partition bounds, ascending, last == kInfiniteDistance.
  std::span<const graph::Distance> far_bounds;
  graph::Distance far_floor = 0;
  // Full tentative-distance array (probed, not swept).
  std::span<const graph::Distance> distances;
};

class InvariantAuditor {
 public:
  struct Options {
    std::size_t distance_probes = 64;  // A3 sample size
    std::size_t max_findings = 16;     // retained detail records
  };

  InvariantAuditor() = default;
  explicit InvariantAuditor(Options options) : options_(options) {}

  // Runs every invariant against one iteration. Returns the number of
  // violations found by THIS call (0 == clean); cumulative counters and
  // capped findings are retained for the run report. Never throws —
  // the caller decides whether a trip quarantines or aborts.
  std::size_t audit(const IterationAudit& iteration);

  std::uint64_t audits_run() const noexcept { return audits_; }
  std::uint64_t violations() const noexcept { return violations_; }
  const std::vector<AuditFinding>& findings() const noexcept {
    return findings_;
  }

  void reset();

 private:
  void report(std::uint64_t iteration, AuditCheck check, std::string detail,
              std::size_t& fresh);

  Options options_{};
  std::uint64_t audits_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<AuditFinding> findings_;
  // A3 probe set: fixed vertex ids (chosen on the first audit) and the
  // labels they held last time.
  std::vector<graph::VertexId> probe_vertices_;
  std::vector<graph::Distance> probe_distances_;
};

}  // namespace sssp::verify
