#include "verify/flight_recorder.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "fault/failpoint.hpp"
#include "obs/json.hpp"
#include "util/atomic_file.hpp"

namespace sssp::verify {

namespace {

std::atomic<bool> g_flight_enabled{false};

const char* mode_name(fault::Failpoint::Mode mode) noexcept {
  switch (mode) {
    case fault::Failpoint::Mode::kDisarmed: return "disarmed";
    case fault::Failpoint::Mode::kAlways: return "always";
    case fault::Failpoint::Mode::kProbability: return "probability";
    case fault::Failpoint::Mode::kEveryNth: return "every-nth";
  }
  return "unknown";
}

}  // namespace

bool flight_enabled() noexcept {
  return g_flight_enabled.load(std::memory_order_relaxed);
}

void set_flight_enabled(bool enabled) noexcept {
  g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kIteration: return "iteration";
    case FlightEventKind::kHealth: return "health";
    case FlightEventKind::kCheckpoint: return "checkpoint";
    case FlightEventKind::kAudit: return "audit";
    case FlightEventKind::kStop: return "stop";
    case FlightEventKind::kCertify: return "certify";
    case FlightEventKind::kNote: return "note";
  }
  return "unknown";
}

void FlightEvent::set_note(const char* text) noexcept {
  if (text == nullptr) {
    note[0] = '\0';
    return;
  }
  std::strncpy(note, text, sizeof(note) - 1);
  note[sizeof(note) - 1] = '\0';
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(FlightEvent event) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  event.seq = seq;
  Slot& slot = slots_[seq % kCapacity];
  // Invalidate -> write payload -> publish. A reader that observes the
  // slot mid-write sees stamp 0 (or a stamp that changed across its
  // copy) and skips it.
  slot.stamp.store(0, std::memory_order_release);
  slot.event = event;
  slot.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before == 0) continue;  // never completed a write
    FlightEvent copy = slot.event;
    const std::uint64_t after = slot.stamp.load(std::memory_order_acquire);
    if (after != before || copy.seq + 1 != before) continue;  // torn
    events.push_back(copy);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return events;
}

void FlightRecorder::dump_json(std::ostream& out,
                               const std::string& reason) const {
  const std::vector<FlightEvent> events = snapshot();
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("tunesssp.flight.v1");
  w.key("reason").value(reason);
  w.key("events_recorded").value(total_recorded());
  w.key("events_retained").value(static_cast<std::uint64_t>(events.size()));
  w.key("events").begin_array();
  for (const FlightEvent& event : events) {
    w.begin_object();
    w.key("seq").value(event.seq);
    w.key("kind").value(to_string(event.kind));
    w.key("iter").value(event.iteration);
    w.key("delta").value(event.delta);
    w.key("a").value(event.a);
    w.key("b").value(event.b);
    w.key("c").value(event.c);
    w.key("d").value(event.d);
    w.key("e").value(event.e);
    w.key("note").value(event.note);
    w.end_object();
  }
  w.end_array();
  // The "last failpoint hits" a post-mortem wants next to the events:
  // every registered failpoint with its arming and counters.
  w.key("failpoints").begin_array();
  for (const auto& fp : fault::FailpointRegistry::global().status()) {
    if (fp.mode == fault::Failpoint::Mode::kDisarmed && fp.hits == 0)
      continue;
    w.begin_object();
    w.key("name").value(fp.name);
    w.key("mode").value(mode_name(fp.mode));
    w.key("hits").value(fp.hits);
    w.key("fires").value(fp.fires);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

std::string FlightRecorder::dump_json_string(const std::string& reason) const {
  std::ostringstream out;
  dump_json(out, reason);
  return out.str();
}

bool FlightRecorder::save(const std::string& path,
                          const std::string& reason) const noexcept {
  try {
    std::ostringstream out;
    dump_json(out, reason);
    // The flight dump is often written from a failure path — an
    // atomic tmp+rename means a second failure (ENOSPC, crash) can
    // never leave a truncated dump masquerading as evidence.
    util::atomic_write_file(path, out.str());
    return true;
  } catch (...) {
    return false;
  }
}

void FlightRecorder::reset() noexcept {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) slot.stamp.store(0, std::memory_order_relaxed);
}

void record_iteration(std::uint64_t iteration, double delta, std::uint64_t x1,
                      std::uint64_t x2, std::uint64_t x3, std::uint64_t x4,
                      std::uint64_t far_queue_size) noexcept {
  if (!flight_enabled()) return;
  FlightEvent event;
  event.kind = FlightEventKind::kIteration;
  event.iteration = iteration;
  event.delta = delta;
  event.a = x1;
  event.b = x2;
  event.c = x3;
  event.d = x4;
  event.e = far_queue_size;
  FlightRecorder::global().record(event);
}

void record_event(FlightEventKind kind, std::uint64_t iteration,
                  const char* note, std::uint64_t a) noexcept {
  if (!flight_enabled()) return;
  FlightEvent event;
  event.kind = kind;
  event.iteration = iteration;
  event.a = a;
  event.set_note(note);
  FlightRecorder::global().record(event);
}

}  // namespace sssp::verify
