#include "verify/certifier.hpp"

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "prof/profiler.hpp"
#include "sssp/dijkstra.hpp"
#include "util/thread_pool.hpp"
#include "util/weight_math.hpp"
#include "verify/flight_recorder.hpp"

namespace sssp::verify {

namespace {

// Per-chunk findings, merged in chunk order so the certificate is
// byte-identical at every thread count.
struct ChunkFindings {
  std::uint64_t violations = 0;
  std::vector<Violation> samples;
};

void add_violation(ChunkFindings& findings, std::size_t sample_cap,
                   ViolationKind kind, graph::VertexId vertex,
                   std::string detail) {
  ++findings.violations;
  if (findings.samples.size() < sample_cap)
    findings.samples.push_back({kind, vertex, std::move(detail)});
}

void merge_findings(Certificate& cert, std::size_t sample_cap,
                    std::vector<ChunkFindings>& chunks) {
  for (ChunkFindings& chunk : chunks) {
    cert.violations += chunk.violations;
    for (Violation& violation : chunk.samples) {
      if (cert.samples.size() >= sample_cap) break;
      cert.samples.push_back(std::move(violation));
    }
  }
}

std::string label(const std::string& what, graph::Distance value) {
  std::ostringstream out;
  out << what << "=";
  if (value == graph::kInfiniteDistance)
    out << "inf";
  else
    out << value;
  return out.str();
}

}  // namespace

const char* to_string(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kShape: return "shape";
    case ViolationKind::kSourceLabel: return "source-label";
    case ViolationKind::kEdgeRelaxation: return "edge-relaxation";
    case ViolationKind::kParentRange: return "parent-range";
    case ViolationKind::kParentEdge: return "parent-edge";
    case ViolationKind::kParentCycle: return "parent-cycle";
    case ViolationKind::kUnreachableLabel: return "unreachable-label";
    case ViolationKind::kCrossCheck: return "cross-check";
  }
  return "unknown";
}

std::string Certificate::summary() const {
  std::ostringstream out;
  if (certified) {
    out << "certified, " << vertices_checked << " vertices / "
        << edges_checked << " edges";
    if (cross_checked) out << ", cross-checked vs dijkstra";
  } else {
    out << "FAILED: " << violations << " violation"
        << (violations == 1 ? "" : "s");
    if (!samples.empty()) {
      out << " (first: " << to_string(samples.front().kind) << " at v="
          << samples.front().vertex;
      if (!samples.front().detail.empty())
        out << ": " << samples.front().detail;
      out << ")";
    }
  }
  return out.str();
}

Certificate certify(const graph::CsrGraph& graph,
                    const algo::SsspResult& result,
                    const CertifyOptions& options) {
  SSSP_PROF_PHASE("verify");
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = graph.num_vertices();
  if (result.source >= n && n > 0)
    throw std::invalid_argument("certify: source out of range");
  if (n == 0 && result.source != 0)
    throw std::invalid_argument("certify: source out of range");

  Certificate cert;

  // Shape first: the sweeps below index both arrays by vertex id, so a
  // size mismatch is unrecoverable and reported alone.
  const bool has_parents = !result.parents.empty();
  if (result.distances.size() != n ||
      (has_parents && result.parents.size() != n)) {
    cert.violations = 1;
    std::ostringstream detail;
    detail << "expected " << n << " vertices, got " << result.distances.size()
           << " distances / " << result.parents.size() << " parents";
    cert.samples.push_back(
        {ViolationKind::kShape, graph::kInvalidVertex, detail.str()});
    cert.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    record_event(FlightEventKind::kCertify, 0, "fail:shape", cert.violations);
    return cert;
  }

  const graph::VertexId source = result.source;
  const std::vector<graph::Distance>& dist = result.distances;
  const std::vector<graph::VertexId>& parents = result.parents;

  if (n > 0) {
    if (dist[source] != 0) {
      cert.violations++;
      cert.samples.push_back({ViolationKind::kSourceLabel, source,
                              label("dist[source]", dist[source])});
    }
    if (has_parents && parents[source] != source) {
      cert.violations++;
      cert.samples.push_back({ViolationKind::kSourceLabel, source,
                              "source is not its own parent"});
    }
  }

  // tight[v] records whether the vertex-sweep saw a tight edge into v —
  // from its claimed parent when parents were recorded, from anywhere
  // otherwise (existence is what the lower-bound argument needs). Set
  // with relaxed atomics: any write is "true", order is irrelevant.
  std::vector<std::uint8_t> tight(n, 0);

  const bool parallel = options.parallel && n >= options.parallel_threshold;
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t num_chunks =
      parallel ? std::min<std::size_t>(pool.size() * 4, n ? n : 1) : 1;
  const std::size_t chunk_size = (n + num_chunks - 1) / std::max<std::size_t>(
                                                            num_chunks, 1);
  std::vector<ChunkFindings> chunks(num_chunks);

  auto sweep_chunk = [&](std::size_t chunk, std::size_t) {
    ChunkFindings& findings = chunks[chunk];
    const std::size_t begin = chunk * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    for (std::size_t ui = begin; ui < end; ++ui) {
      const auto u = static_cast<graph::VertexId>(ui);
      const graph::Distance du = dist[u];

      // Label/parent consistency for u itself.
      if (du == graph::kInfiniteDistance) {
        if (has_parents && parents[u] != graph::kInvalidVertex)
          add_violation(findings, options.max_violations,
                        ViolationKind::kUnreachableLabel, u,
                        "unreached vertex has a parent");
      } else if (u != source && has_parents) {
        const graph::VertexId p = parents[u];
        if (p == graph::kInvalidVertex)
          add_violation(findings, options.max_violations,
                        ViolationKind::kParentRange, u,
                        "reached vertex has no parent");
        else if (p >= n)
          add_violation(findings, options.max_violations,
                        ViolationKind::kParentRange, u,
                        "parent id out of range");
        else if (dist[p] == graph::kInfiniteDistance)
          add_violation(findings, options.max_violations,
                        ViolationKind::kParentRange, u,
                        "parent is unreached");
      }

      // Edge consistency out of u. An unreached u imposes nothing
      // (inf + w saturates to inf).
      if (du == graph::kInfiniteDistance) continue;
      const auto neighbors = graph.neighbors(u);
      const auto weights = graph.weights_of(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const graph::VertexId v = neighbors[i];
        const graph::Distance through =
            util::saturating_add(du, weights[i]);
        if (dist[v] > through)
          add_violation(findings, options.max_violations,
                        ViolationKind::kEdgeRelaxation, v,
                        label("dist", dist[v]) + " > " +
                            label("via " + std::to_string(u) + " bound",
                                  through));
        const bool tightens =
            dist[v] == through &&
            (!has_parents || (v < n && parents[v] == u));
        if (tightens && v < n && v != source) {
          std::atomic_ref<std::uint8_t> flag(tight[v]);
          flag.store(1, std::memory_order_relaxed);
        }
      }
    }
  };

  if (parallel)
    pool.for_each_chunk(num_chunks, sweep_chunk);
  else
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk)
      sweep_chunk(chunk, 0);

  merge_findings(cert, options.max_violations, chunks);

  // Lower-bound half: every reached non-source vertex needs the tight
  // edge the sweep looked for. Range violations were reported above;
  // re-reporting them here as missing-edge would double count.
  for (std::size_t vi = 0; vi < n; ++vi) {
    const auto v = static_cast<graph::VertexId>(vi);
    if (v == source || dist[v] == graph::kInfiniteDistance) continue;
    if (has_parents &&
        (parents[v] == graph::kInvalidVertex || parents[v] >= n))
      continue;
    if (tight[v]) continue;
    ++cert.violations;
    if (cert.samples.size() < options.max_violations)
      cert.samples.push_back(
          {ViolationKind::kParentEdge, v,
           has_parents
               ? "dist[parent] + w(parent, v) != " + label("dist", dist[v])
               : "no incoming edge closes " + label("dist", dist[v])});
  }

  // Acyclicity of the parent forest: tight edges alone admit zero-weight
  // cycles, which would "certify" labels no real path achieves. Serial
  // three-color walk, every vertex visited once.
  if (has_parents && n > 0) {
    std::vector<std::uint8_t> color(n, 0);  // 0 new, 1 on path, 2 done
    color[source] = 2;
    std::vector<graph::VertexId> path;
    for (std::size_t vi = 0; vi < n; ++vi) {
      const auto v = static_cast<graph::VertexId>(vi);
      if (dist[v] == graph::kInfiniteDistance || color[v] != 0) continue;
      path.clear();
      graph::VertexId u = v;
      bool broken = false;
      while (color[u] == 0) {
        color[u] = 1;
        path.push_back(u);
        const graph::VertexId p = parents[u];
        if (p == graph::kInvalidVertex || p >= n ||
            dist[p] == graph::kInfiniteDistance) {
          broken = true;  // already reported as kParentRange
          break;
        }
        u = p;
      }
      if (!broken && color[u] == 1) {
        ++cert.violations;
        if (cert.samples.size() < options.max_violations)
          cert.samples.push_back({ViolationKind::kParentCycle, u,
                                  "parent chain loops back to " +
                                      std::to_string(u)});
      }
      for (const graph::VertexId w : path) color[w] = 2;
    }
  }

  // Strict mode: independent re-derivation. Catches a certifier bug as
  // well as a result bug, at re-solve cost.
  if (options.strict && n <= options.strict_max_vertices && n > 0) {
    const std::vector<graph::Distance> expected =
        algo::dijkstra_distances(graph, source);
    for (std::size_t vi = 0; vi < n; ++vi) {
      if (dist[vi] == expected[vi]) continue;
      ++cert.violations;
      if (cert.samples.size() < options.max_violations)
        cert.samples.push_back(
            {ViolationKind::kCrossCheck, static_cast<graph::VertexId>(vi),
             label("got", dist[vi]) + ", dijkstra " +
                 label("expected", expected[vi])});
    }
    cert.cross_checked = true;
  }

  cert.vertices_checked = n;
  cert.edges_checked = graph.num_edges();
  cert.certified = cert.violations == 0;
  cert.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  record_event(FlightEventKind::kCertify, 0,
               cert.certified ? "pass" : "fail", cert.violations);
  return cert;
}

}  // namespace sssp::verify
