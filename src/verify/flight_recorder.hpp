// Flight recorder — the post-mortem half of the verification layer
// (docs/ROBUSTNESS.md, "Verification & post-mortem").
//
// A fixed-size lock-free ring buffer of recent engine/controller events:
// per-iteration summaries (delta, X1-X4, queue sizes), controller
// health transitions, checkpoint writes, audit verdicts, and stop
// requests. Recording is wait-free for writers (one fetch_add + a slot
// write) and gated like the metrics registry — with the gate off, a
// record site costs one relaxed load and a branch.
//
// When a run dies — invariant trip, certification failure, signal/abort
// path — the ring is dumped as JSON ("tunesssp.flight.v1", schema in
// docs/ROBUSTNESS.md) together with the armed failpoints' hit counters,
// answering "what was the engine doing just before it died" without
// re-running anything. Readers tolerate concurrent writers: a slot that
// changes under the snapshot is skipped, never torn.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sssp::verify {

// Recording gate (mirrors obs::metrics_enabled()).
bool flight_enabled() noexcept;
void set_flight_enabled(bool enabled) noexcept;

enum class FlightEventKind : std::uint8_t {
  kIteration = 0,   // end of a pipeline iteration (a=x1 b=x2 c=x3 d=x4)
  kHealth = 1,      // controller degrade/recover (note says which)
  kCheckpoint = 2,  // checkpoint written (a=bytes)
  kAudit = 3,       // invariant audit verdict (a=violations this audit)
  kStop = 4,        // run-control stop observed (note = reason)
  kCertify = 5,     // certification verdict (a=violations)
  kNote = 6,        // free-form marker
};

const char* to_string(FlightEventKind kind) noexcept;

struct FlightEvent {
  std::uint64_t seq = 0;  // assigned by record(); global event order
  FlightEventKind kind = FlightEventKind::kNote;
  std::uint64_t iteration = 0;
  double delta = 0.0;
  // Kind-specific payload slots (see the kind enum). kIteration uses
  // a..d for X1..X4 and e for the far-queue population.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  std::uint64_t e = 0;
  // Short label, always NUL-terminated. set_note() truncates safely.
  char note[32] = {};

  void set_note(const char* text) noexcept;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 256;  // power of two

  static FlightRecorder& global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends the event (seq is assigned here), overwriting the oldest
  // entry once the ring is full. Wait-free; safe from pool workers.
  void record(FlightEvent event) noexcept;

  // Events ever recorded (>= the ring's current population).
  std::uint64_t total_recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  // Consistent copy of the ring, oldest first. Slots being overwritten
  // mid-snapshot are dropped rather than returned torn.
  std::vector<FlightEvent> snapshot() const;

  // "tunesssp.flight.v1" JSON: dump reason, the event list, and every
  // registered failpoint's hit/fire counters (the "last failpoint hits"
  // a post-mortem wants next to the event stream).
  void dump_json(std::ostream& out, const std::string& reason) const;
  std::string dump_json_string(const std::string& reason) const;
  // Writes the dump to `path`; returns false on I/O failure (the abort
  // path must not throw over the original failure).
  bool save(const std::string& path, const std::string& reason) const noexcept;

  // Drops all events and restarts seq at 0 (tests and tool re-runs).
  void reset() noexcept;

 private:
  struct Slot {
    // 0 = never written; otherwise event.seq + 1, stored with release
    // after the payload so readers can detect torn slots.
    std::atomic<std::uint64_t> stamp{0};
    FlightEvent event;
  };

  std::atomic<std::uint64_t> head_{0};
  Slot slots_[kCapacity];
};

// Convenience wrappers: cost one relaxed load when the gate is off.
void record_iteration(std::uint64_t iteration, double delta, std::uint64_t x1,
                      std::uint64_t x2, std::uint64_t x3, std::uint64_t x4,
                      std::uint64_t far_queue_size) noexcept;
void record_event(FlightEventKind kind, std::uint64_t iteration,
                  const char* note, std::uint64_t a = 0) noexcept;

}  // namespace sssp::verify
