#include "obs/run_report.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/atomic_file.hpp"

namespace sssp::obs {

namespace {

// Counter fields shared by the profile totals, phases, and iteration
// records (written into an already-open object).
void write_counter_fields(JsonWriter& w, const prof::CounterValues& c) {
  w.key("task_seconds").value(c.task_seconds);
  w.key("cycles").value(c.cycles);
  w.key("instructions").value(c.instructions);
  w.key("llc_misses").value(c.llc_misses);
  w.key("branch_misses").value(c.branch_misses);
  w.key("context_switches").value(c.context_switches);
}

void write_profile_blocks(JsonWriter& w, const RunReportMeta& meta,
                          const prof::RunProfile& p) {
  const prof::EnergyReport& e = p.energy;
  w.key("energy").begin_object();
  w.key("backend").value(prof::to_string(e.backend));
  w.key("backend_detail").value(e.backend_detail);
  w.key("joules").value(e.joules);
  w.key("package_joules").value(e.package_joules);
  w.key("dram_joules").value(e.dram_joules);
  w.key("seconds").value(e.seconds);
  w.key("average_watts").value(e.average_watts);
  w.key("joules_per_relaxation")
      .value(meta.improving_relaxations > 0
                 ? e.joules /
                       static_cast<double>(meta.improving_relaxations)
                 : 0.0);
  w.key("energy_delay_product").value(e.energy_delay_product);
  w.end_object();

  w.key("profile").begin_object();
  w.key("counter_backend").value(prof::to_string(p.counter_backend));
  w.key("counter_backend_detail").value(p.counter_backend_detail);
  w.key("wall_seconds").value(p.wall_seconds);
  w.key("totals").begin_object();
  write_counter_fields(w, p.totals);
  w.key("ipc").value(p.totals.cycles > 0
                         ? static_cast<double>(p.totals.instructions) /
                               static_cast<double>(p.totals.cycles)
                         : 0.0);
  w.key("llc_misses_per_kilo_instruction")
      .value(p.totals.instructions > 0
                 ? 1000.0 * static_cast<double>(p.totals.llc_misses) /
                       static_cast<double>(p.totals.instructions)
                 : 0.0);
  w.key("branch_miss_rate")
      .value(p.totals.instructions > 0
                 ? static_cast<double>(p.totals.branch_misses) /
                       static_cast<double>(p.totals.instructions)
                 : 0.0);
  w.end_object();
  w.key("phases").begin_object();
  for (const auto& [name, phase] : p.phases) {
    w.key(name).begin_object();
    w.key("seconds").value(phase.seconds);
    w.key("joules").value(phase.joules);
    w.key("entries").value(phase.entries);
    write_counter_fields(w, phase.counters);
    w.end_object();
  }
  w.end_object();
  w.key("iterations").begin_array();
  // "iteration", not "iter": consumers (and sssp_tool's self-check)
  // count '{"iter":' to tally the top-level per-iteration records, and
  // these profile samples must not collide with that.
  for (const prof::IterationSample& s : p.iterations) {
    w.begin_object();
    w.key("iteration").value(s.iteration);
    w.key("seconds").value(s.seconds);
    w.key("joules").value(s.joules);
    write_counter_fields(w, s.counters);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_run_report(std::ostream& out, const RunReportMeta& meta,
                      std::span<const frontier::IterationStats> iterations,
                      const sim::RunReport* sim_report,
                      const prof::RunProfile* profile) {
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("tunesssp.run_report.v1");

  w.key("meta").begin_object();
  w.key("tool").value(meta.tool);
  w.key("algorithm").value(meta.algorithm);
  w.key("dataset").value(meta.dataset);
  w.key("source").value(meta.source);
  w.key("set_point").value(meta.set_point);
  if (meta.device.empty()) {
    w.key("device").null();
    w.key("dvfs").null();
  } else {
    w.key("device").value(meta.device);
    w.key("dvfs").value(meta.dvfs);
  }
  w.key("interrupted").value(meta.interrupted);
  w.key("outcome").value(meta.outcome);
  w.end_object();

  const std::size_t sim_iterations =
      sim_report != nullptr ? sim_report->iterations.size() : 0;
  const std::size_t records = std::max(iterations.size(), sim_iterations);

  w.key("totals").begin_object();
  w.key("iterations").value(static_cast<std::uint64_t>(records));
  w.key("num_vertices").value(meta.num_vertices);
  w.key("reached").value(meta.reached);
  w.key("improving_relaxations").value(meta.improving_relaxations);
  w.key("threads").value(meta.threads);
  w.key("host_seconds").value(meta.host_seconds);
  w.key("controller_seconds").value(meta.controller_seconds);
  w.key("controller_health").begin_object();
  w.key("degradations").value(meta.controller_degradations);
  w.key("recoveries").value(meta.controller_recoveries);
  w.key("rejected_inputs").value(meta.controller_rejected_inputs);
  w.end_object();
  w.key("checkpoint").begin_object();
  w.key("written").value(meta.checkpoints_written);
  w.key("bytes").value(meta.checkpoint_bytes);
  w.key("resumed").value(meta.resumed);
  w.key("resumed_from_iteration").value(meta.resumed_from_iteration);
  w.end_object();
  w.end_object();

  w.key("verification");
  if (!meta.verification.requested) {
    w.null();
  } else {
    const RunReportVerification& v = meta.verification;
    w.begin_object();
    w.key("mode").value(v.mode);
    w.key("certified").value(v.certified);
    w.key("vertices_checked").value(v.vertices_checked);
    w.key("edges_checked").value(v.edges_checked);
    w.key("violations").value(v.violations);
    w.key("samples").begin_array();
    for (const std::string& sample : v.samples) w.value(sample);
    w.end_array();
    w.key("seconds").value(v.seconds);
    w.key("audits").begin_object();
    w.key("run").value(v.audits_run);
    w.key("violations").value(v.audit_violations);
    w.end_object();
    w.key("flight_recorder");
    if (v.flight_recorder_path.empty())
      w.null();
    else
      w.value(v.flight_recorder_path);
    w.end_object();
  }

  w.key("sim");
  if (sim_report == nullptr) {
    w.null();
  } else {
    w.begin_object();
    w.key("total_seconds").value(sim_report->total_seconds);
    w.key("energy_joules").value(sim_report->energy_joules);
    w.key("average_power_w").value(sim_report->average_power_w);
    w.key("peak_power_w").value(sim_report->peak_power_w);
    w.key("controller_seconds").value(sim_report->controller_seconds);
    w.end_object();
  }

  if (profile != nullptr) write_profile_blocks(w, meta, *profile);

  w.key("iterations").begin_array();
  for (std::size_t i = 0; i < records; ++i) {
    w.begin_object();
    w.key("iter").value(static_cast<std::uint64_t>(i));
    if (i < iterations.size()) {
      const frontier::IterationStats& it = iterations[i];
      w.key("x1").value(it.x1);
      w.key("x2").value(it.x2);
      w.key("x3").value(it.x3);
      w.key("x4").value(it.x4);
      w.key("improving_relaxations").value(it.improving_relaxations);
      w.key("far_queue_size").value(it.far_queue_size);
      w.key("rebalance_items").value(it.rebalance_items);
      w.key("delta").value(it.delta);
      w.key("degree_estimate").value(it.degree_estimate);
      w.key("alpha_estimate").value(it.alpha_estimate);
      w.key("controller_seconds").value(it.controller_seconds);
      w.key("controller_degraded").value(it.controller_degraded);
    }
    if (i < sim_iterations) {
      const sim::IterationReport& sim_it = sim_report->iterations[i];
      w.key("sim").begin_object();
      w.key("seconds").value(sim_it.seconds);
      w.key("average_power_w").value(sim_it.average_power_w);
      w.key("core_utilization").value(sim_it.core_utilization);
      w.key("mem_utilization").value(sim_it.mem_utilization);
      w.key("core_mhz").value(std::uint64_t{sim_it.frequencies.core_mhz});
      w.key("mem_mhz").value(std::uint64_t{sim_it.frequencies.mem_mhz});
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string run_report_json(
    const RunReportMeta& meta,
    std::span<const frontier::IterationStats> iterations,
    const sim::RunReport* sim_report, const prof::RunProfile* profile) {
  std::ostringstream out;
  write_run_report(out, meta, iterations, sim_report, profile);
  return out.str();
}

void save_run_report(const std::string& path, const RunReportMeta& meta,
                     std::span<const frontier::IterationStats> iterations,
                     const sim::RunReport* sim_report,
                     const prof::RunProfile* profile) {
  std::ostringstream out;
  write_run_report(out, meta, iterations, sim_report, profile);
  out << '\n';
  // Crash/ENOSPC-safe: the report either appears whole or not at all
  // (util/atomic_file.hpp) — a half-written JSON document would poison
  // every downstream consumer (bench baselines, CI parsers).
  util::atomic_write_file(path, out.str());
}

}  // namespace sssp::obs
