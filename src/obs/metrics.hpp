// Thread-safe metrics registry for the whole stack: counters, gauges,
// and log-bucketed histograms with percentile estimation, exported as
// JSON or Prometheus text (summary style: quantiles + sum + count).
//
// Design constraints (see docs/OBSERVABILITY.md):
//  - The disabled path costs one relaxed atomic load + branch per event:
//    every instrumentation site is guarded by `if (metrics_enabled())`.
//  - Instruments are created once and the returned references are
//    stable for the registry's lifetime, so hot paths can cache them in
//    a function-local static and skip the name lookup afterwards.
//  - All mutation is lock-free (relaxed atomics); only instrument
//    creation and export take the registry mutex. Safe under
//    util::ThreadPool's parallel engine.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace sssp::obs {

// Global gate. Off by default: experiments pay nothing unless a tool or
// bench opts in (e.g. via --metrics-out).
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-bucketed histogram over non-negative values. Buckets are
// quarter-powers-of-two (4 sub-buckets per binary order of magnitude)
// covering [2^-16, 2^47); values outside clamp into the edge buckets
// and zeros go into a dedicated bucket. Percentiles are reported as the
// geometric midpoint of the bucket holding the rank, so the relative
// error is bounded by the bucket ratio 2^(1/8) - 1 ≈ 9%.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;          // per power of two
  static constexpr int kMinExponent = -16;       // 2^-16 ≈ 1.5e-5
  static constexpr int kMaxExponent = 47;        // 2^47 ≈ 1.4e14
  static constexpr int kBuckets =
      (kMaxExponent - kMinExponent) * kSubBuckets + 1;  // +1 zero bucket

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  // p in [0, 100]. Returns 0 for an empty histogram.
  double percentile(double p) const noexcept;

  void reset() noexcept;

  // Representative value (geometric midpoint) of bucket `index`;
  // exposed for the exporter and percentile tests.
  static double bucket_value(int index) noexcept;
  static int bucket_index(double v) noexcept;
  // Exclusive upper edge of bucket `index` (the Prometheus `le` bound;
  // 0 for the zero bucket).
  static double bucket_upper_bound(int index) noexcept;
  // Raw count in bucket `index` (exporter + tests).
  std::uint64_t bucket_count(int index) const noexcept {
    return buckets_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; returned references remain valid for the registry's
  // lifetime (instruments are never removed, reset() only zeroes them).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  //  mean,max,p50,p90,p95,p99}}} — keys sorted (std::map),
  //  deterministic.
  std::string to_json() const;
  // Prometheus text exposition following the naming conventions:
  // families get a `sssp_` prefix, non-[a-zA-Z0-9_] chars become '_',
  // counters get a `_total` suffix (unless already present), and
  // histograms export as native Prometheus histograms — cumulative
  // `_bucket{le="..."}` lines over the non-empty log buckets plus
  // `le="+Inf"`, then `_sum` and `_count`.
  std::string to_prometheus() const;

  // Zeroes every instrument (instances stay valid).
  void reset();

  // Process-wide registry used by the library's instrumentation.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sssp::obs
