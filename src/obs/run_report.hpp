// Run-report JSON: one machine-readable document per run, merging the
// engine's per-iteration statistics (frontier::IterationStats, which
// already carries the controller internals delta / degree_estimate /
// alpha_estimate), run-level totals, and — when a device replay was
// performed — the simulator's power/energy report, iteration-aligned.
//
// Schema "tunesssp.run_report.v1":
//   {
//     "schema": "tunesssp.run_report.v1",
//     "meta":   { tool, algorithm, dataset, source, set_point,
//                 device, dvfs, interrupted, outcome },
//     "totals": { iterations, num_vertices, reached,
//                 improving_relaxations, threads, host_seconds,
//                 controller_seconds,
//                 controller_health: { degradations, recoveries,
//                                      rejected_inputs },
//                 checkpoint: { written, bytes, resumed,
//                               resumed_from_iteration } },
//     "verification": { mode, certified, vertices_checked,
//                       edges_checked, violations, samples: [string],
//                       seconds,
//                       audits: { run, violations },
//                       flight_recorder: path | null } | null,
//     "sim":    { total_seconds, energy_joules, average_power_w,
//                 peak_power_w, controller_seconds } | null,
//     "iterations": [ { iter, x1, x2, x3, x4, improving_relaxations,
//                       far_queue_size, rebalance_items, delta,
//                       degree_estimate, alpha_estimate,
//                       controller_seconds, controller_degraded,
//                       sim: { seconds, average_power_w,
//                              core_utilization, mem_utilization,
//                              core_mhz, mem_mhz }? } ]
//   }
//
// Consumers should key on "schema" and ignore unknown fields.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "frontier/stats.hpp"
#include "prof/report.hpp"
#include "sim/run.hpp"

namespace sssp::obs {

// Result-verification outcome for the "verification" block. Plain data
// (obs sits below verify in the library graph): the producing tool
// copies the certifier/auditor outputs in.
struct RunReportVerification {
  bool requested = false;  // false => "verification": null
  std::string mode;        // "certify" or "certify+dijkstra"
  bool certified = false;
  std::uint64_t vertices_checked = 0;
  std::uint64_t edges_checked = 0;
  std::uint64_t violations = 0;
  std::vector<std::string> samples;  // human-readable, capped upstream
  double seconds = 0.0;
  // Online invariant-audit totals (0/0 when auditing was off).
  std::uint64_t audits_run = 0;
  std::uint64_t audit_violations = 0;
  // Cross-link to the flight-recorder dump written for this run (empty
  // = none).
  std::string flight_recorder_path;
};

struct RunReportMeta {
  std::string tool;       // producing binary, e.g. "sssp_tool"
  std::string algorithm;  // e.g. "self-tuning"
  std::string dataset;    // graph path or dataset name
  std::uint64_t source = 0;
  double set_point = 0.0;  // 0 when the algorithm has none
  std::string device;      // empty = no device replay
  std::string dvfs;
  // Run totals (0 when unknown to the producer).
  std::uint64_t num_vertices = 0;
  std::uint64_t reached = 0;
  std::uint64_t improving_relaxations = 0;
  // Effective host thread-pool size (0 when the tool ran no parallel
  // pipeline work, e.g. pure replay).
  std::uint64_t threads = 0;
  double host_seconds = 0.0;
  double controller_seconds = 0.0;
  // Self-healing control-plane event counts (docs/ROBUSTNESS.md).
  std::uint64_t controller_degradations = 0;
  std::uint64_t controller_recoveries = 0;
  std::uint64_t controller_rejected_inputs = 0;
  // Run-control outcome (docs/ROBUSTNESS.md, "Checkpoint & recovery").
  // outcome is "completed" or the stop reason ("deadline" / "stall" /
  // "interrupt"); interrupted mirrors outcome != "completed" so
  // consumers can filter partial reports with one boolean.
  bool interrupted = false;
  std::string outcome = "completed";
  // Checkpoint accounting for totals.checkpoint.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;
  bool resumed = false;
  std::uint64_t resumed_from_iteration = 0;
  // Certification / audit outcome (docs/ROBUSTNESS.md, "Verification &
  // post-mortem").
  RunReportVerification verification;
};

// Emits one record per iteration: engine/controller fields come from
// `iterations`, the nested "sim" object from `sim_report` (aligned by
// index). Either side may be absent (replay_tool has no engine stats);
// the record count is the larger of the two.
//
// When `profile` is non-null (the tool ran with --profile) the
// document additionally carries the host measurements
// (docs/OBSERVABILITY.md, "Hardware profiling & energy"):
//   "energy":  { backend, backend_detail, joules, package_joules,
//                dram_joules, seconds, average_watts,
//                joules_per_relaxation, energy_delay_product },
//   "profile": { counter_backend, counter_backend_detail, wall_seconds,
//                totals: { task_seconds, cycles, instructions,
//                          llc_misses, branch_misses, context_switches,
//                          ipc, llc_misses_per_kilo_instruction,
//                          branch_miss_rate },
//                phases: { name: { seconds, joules, entries,
//                                  <counters> } },
//                iterations: [ { iteration, seconds, joules,
//                                <counters> } ] }
// Both blocks are omitted (not null) when profiling was off, keeping
// schema v1 byte-stable for existing consumers. joules_per_relaxation
// is derived here from meta.improving_relaxations.
void write_run_report(std::ostream& out, const RunReportMeta& meta,
                      std::span<const frontier::IterationStats> iterations,
                      const sim::RunReport* sim_report = nullptr,
                      const prof::RunProfile* profile = nullptr);

std::string run_report_json(
    const RunReportMeta& meta,
    std::span<const frontier::IterationStats> iterations,
    const sim::RunReport* sim_report = nullptr,
    const prof::RunProfile* profile = nullptr);

// Writes the document to `path` (throws std::runtime_error on I/O
// failure).
void save_run_report(const std::string& path, const RunReportMeta& meta,
                     std::span<const frontier::IterationStats> iterations,
                     const sim::RunReport* sim_report = nullptr,
                     const prof::RunProfile* profile = nullptr);

}  // namespace sssp::obs
