#include "obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace sssp::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::uint32_t> g_next_thread_ordinal{1};

}  // namespace

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint32_t thread_ordinal() noexcept {
  thread_local const std::uint32_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::push(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_.is_open()) {
    events_.push_back(event);
    ++recorded_;
    if (events_.size() >= batch_size_) flush_locked();
    return;
  }
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
  ++recorded_;
}

void Tracer::complete(const char* name, double ts_us, double dur_us) {
  push({name, Phase::kComplete, thread_ordinal(), ts_us, dur_us, 0.0});
}

void Tracer::counter(const char* name, double ts_us, double value) {
  push({name, Phase::kCounter, thread_ordinal(), ts_us, 0.0, value});
}

void Tracer::instant(const char* name, double ts_us) {
  push({name, Phase::kInstant, thread_ordinal(), ts_us, 0.0, 0.0});
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(recorded_);
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::set_max_events(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  max_events_ = cap;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

// One complete event object; `out` must already be positioned inside
// the traceEvents array (the caller manages commas so the same body
// serves the in-memory writer and the batch streamer).
void Tracer::write_event(std::ostream& out, const Event& e) {
  JsonWriter w(out);
  w.begin_object();
  w.key("name").value(e.name);
  w.key("cat").value("sssp");
  w.key("pid").value(std::uint64_t{1});
  w.key("ts").value(e.ts_us);
  switch (e.phase) {
    case Phase::kComplete:
      w.key("ph").value("X");
      w.key("tid").value(e.tid);
      w.key("dur").value(e.dur_us);
      break;
    case Phase::kCounter:
      // Counter tracks are process-scoped; pin them to tid 0 so each
      // name renders as a single track regardless of emitting thread.
      w.key("ph").value("C");
      w.key("tid").value(std::uint64_t{0});
      w.key("args").begin_object().key("value").value(e.value).end_object();
      break;
    case Phase::kInstant:
      w.key("ph").value("i");
      w.key("tid").value(e.tid);
      w.key("s").value("t");  // thread-scoped instant
      break;
  }
  w.end_object();
}

void Tracer::flush_locked() {
  for (const Event& e : events_) {
    if (!stream_first_event_) stream_ << ',';
    stream_first_event_ = false;
    write_event(stream_, e);
  }
  events_.clear();
}

void Tracer::open_stream(const std::string& path, std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_.is_open())
    throw std::logic_error("Tracer::open_stream: stream already open");
  stream_.open(path, std::ios::binary);
  if (!stream_)
    throw std::runtime_error("Tracer::open_stream: cannot open " + path);
  stream_path_ = path;
  batch_size_ = batch_size > 0 ? batch_size : kDefaultBatchSize;
  stream_first_event_ = true;
  stream_ << "{\"traceEvents\":[";
  // Any events buffered before the stream opened ride along.
  flush_locked();
}

void Tracer::finish_stream() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!stream_.is_open()) return;
  flush_locked();
  stream_ << "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":" << dropped_
          << "}\n";
  stream_.close();
  if (stream_.fail())
    throw std::runtime_error("Tracer::finish_stream: write failed: " +
                             stream_path_);
  stream_path_.clear();
}

bool Tracer::streaming() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_.is_open();
}

void Tracer::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_.is_open())
    throw std::logic_error(
        "Tracer::write_json: events are streaming to disk");
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out << ',';
    first = false;
    write_event(out, e);
  }
  out << "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":" << dropped_ << "}";
}

void Tracer::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Tracer::save: cannot open " + path);
  write_json(out);
  out << '\n';
  if (!out) throw std::runtime_error("Tracer::save: write failed: " + path);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace sssp::obs
