// Scoped-span tracer emitting Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Three event kinds are recorded:
//  - complete spans (ph "X"): a named duration on a thread track, used
//    for the engine phases (advance, filter, bisect, rebalance) and the
//    controller;
//  - counter tracks (ph "C"): one sample per iteration for X1-X4,
//    delta, degree_estimate, alpha_estimate, far_queue_size;
//  - instants (ph "i"): point markers (e.g. forced-progress jumps).
//
// Gating mirrors the metrics registry: `trace_enabled()` is a relaxed
// atomic load, and a ScopedSpan constructed while tracing is disabled
// does nothing but that one test. Event names must be string literals
// (or otherwise outlive the tracer) — events store the pointer.
//
// Recording appends to an in-memory buffer under a short mutex hold;
// phase-level spans fire a few times per iteration, so contention is
// negligible even with the parallel engine enabled.
//
// Two sinks (docs/OBSERVABILITY.md, "Tracing"):
//  - streaming (open_stream/finish_stream): events flush to disk in
//    batches, so memory stays bounded at the batch size no matter how
//    long the run — the mode the CLI tools use for --trace-out;
//  - in-memory (the default, used by tests and the bench atexit sink):
//    the buffer is capped (set_max_events); past the cap new events are
//    counted as dropped rather than recorded, and the count appears as
//    "droppedEvents" in the written document.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sssp::obs {

bool trace_enabled() noexcept;
void set_trace_enabled(bool enabled) noexcept;

// Small sequential id for the calling thread (stable per thread for the
// process lifetime); doubles as the trace "tid".
std::uint32_t thread_ordinal() noexcept;

class Tracer {
 public:
  // In-memory buffer cap: ~56 MB of events before dropping. Soak runs
  // should stream instead (open_stream).
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;
  // Streaming flush batch: small enough to bound memory, large enough
  // to amortize the file write.
  static constexpr std::size_t kDefaultBatchSize = 8192;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since this tracer's epoch (steady clock).
  double now_us() const noexcept;

  // `name` must outlive the tracer (string literal).
  void complete(const char* name, double ts_us, double dur_us);
  void counter(const char* name, double ts_us, double value);
  void instant(const char* name, double ts_us);

  // Events recorded (retained in memory or already streamed to disk);
  // excludes dropped ones.
  std::size_t num_events() const;
  // Events discarded because the in-memory buffer hit its cap.
  std::uint64_t dropped_events() const;
  // Caps the in-memory buffer (streaming mode is unaffected). Applies
  // to future events only.
  void set_max_events(std::size_t cap);
  // Drops buffered events and zeroes the recorded/dropped counts.
  void clear();

  // Switches to streaming: the JSON document head is written to `path`
  // immediately and events flush there in `batch_size` batches.
  // Throws std::runtime_error on open failure, std::logic_error if a
  // stream is already open.
  void open_stream(const std::string& path,
                   std::size_t batch_size = kDefaultBatchSize);
  // Flushes the tail, completes the document, closes the file, and
  // returns to in-memory mode. No-op when not streaming.
  void finish_stream();
  bool streaming() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms","droppedEvents":N} from
  // the in-memory buffer. Throws std::logic_error while streaming (the
  // events are on disk, not here).
  void write_json(std::ostream& out) const;
  void save(const std::string& path) const;  // throws on I/O failure

  static Tracer& global();

 private:
  enum class Phase : std::uint8_t { kComplete, kCounter, kInstant };
  struct Event {
    const char* name;
    Phase phase;
    std::uint32_t tid;
    double ts_us;
    double dur_us;  // complete spans
    double value;   // counters
  };

  void push(const Event& event);
  void flush_locked();
  static void write_event(std::ostream& out, const Event& event);

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::ofstream stream_;
  std::string stream_path_;
  std::size_t batch_size_ = kDefaultBatchSize;
  bool stream_first_event_ = true;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

// RAII span against the global tracer; ~free when tracing is disabled
// (one relaxed load + branch in the constructor, one branch in the
// destructor).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      start_us_ = Tracer::global().now_us();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::global();
      tracer.complete(name_, start_us_, tracer.now_us() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

#define SSSP_OBS_CONCAT_INNER(a, b) a##b
#define SSSP_OBS_CONCAT(a, b) SSSP_OBS_CONCAT_INNER(a, b)
// Scoped phase span: SSSP_TRACE_SPAN("advance");
#define SSSP_TRACE_SPAN(name) \
  ::sssp::obs::ScopedSpan SSSP_OBS_CONCAT(sssp_obs_span_, __LINE__)(name)

}  // namespace sssp::obs
