#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "obs/json.hpp"

namespace sssp::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (v > current &&
         !target.compare_exchange_weak(current, v,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zeros, negatives, NaN
  const double e = std::log2(v) * kSubBuckets;
  const long idx =
      1 + static_cast<long>(std::floor(e)) - kMinExponent * kSubBuckets;
  if (idx < 1) return 1;
  if (idx >= kBuckets) return kBuckets - 1;
  return static_cast<int>(idx);
}

double Histogram::bucket_value(int index) noexcept {
  if (index <= 0) return 0.0;
  // Geometric midpoint of [2^(k/s), 2^((k+1)/s)).
  const double k =
      static_cast<double>(index - 1) + kMinExponent * kSubBuckets;
  return std::exp2((k + 0.5) / kSubBuckets);
}

double Histogram::bucket_upper_bound(int index) noexcept {
  if (index <= 0) return 0.0;
  const double k =
      static_cast<double>(index - 1) + kMinExponent * kSubBuckets;
  return std::exp2((k + 1.0) / kSubBuckets);
}

void Histogram::record(double v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    atomic_add(sum_, v);
    atomic_max(max_, v);
  }
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the p-th percentile in a sorted sample (nearest-rank).
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen >= rank) return bucket_value(i);
  }
  return max();  // racing concurrent records; best effort
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("mean").value(h->mean());
    w.key("max").value(h->max());
    w.key("p50").value(h->percentile(50.0));
    w.key("p90").value(h->percentile(90.0));
    w.key("p95").value(h->percentile(95.0));
    w.key("p99").value(h->percentile(99.0));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return out.str();
}

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "sssp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// Counter families carry the conventional `_total` suffix; instrument
// names that already end in it (or in a unit suffix that implies an
// accumulating total, like `_seconds_total`) are left alone.
std::string prometheus_counter_name(std::string_view name) {
  std::string out = prometheus_name(name);
  if (!ends_with(out, "_total")) out += "_total";
  return out;
}

void prometheus_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string p = prometheus_counter_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " ";
    prometheus_number(out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " histogram\n";
    // Native histogram: cumulative counts at the upper edge of every
    // non-empty log bucket (emitting all ~250 bucket edges per family
    // would bloat the exposition for no resolution gain).
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t in_bucket = h->bucket_count(i);
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      out += p + "_bucket{le=\"";
      prometheus_number(out, Histogram::bucket_upper_bound(i));
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += p + "_sum ";
    prometheus_number(out, h->sum());
    out += "\n";
    out += p + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace sssp::obs
