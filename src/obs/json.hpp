// Minimal JSON support for the observability layer: a streaming writer
// (used by the metrics exporter, the trace sink, and the run report)
// and a strict validator (used by tests and by tools that re-check the
// documents they just wrote).
//
// The writer tracks nesting in a small state stack and inserts commas
// automatically, so call sites read like the document they produce:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("x1").value(42);
//   w.key("iterations").begin_array(); ... w.end_array();
//   w.end_object();
//
// Non-finite doubles serialize as null (JSON has no inf/nan).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace sssp::obs {

// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member name; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(int v) { return value(std::int64_t{v}); }
  JsonWriter& value(bool b);
  JsonWriter& null();

 private:
  void before_value();

  std::ostream* out_;
  // One char of state per nesting level: 'o'/'O' object (empty/non-empty),
  // 'a'/'A' array (empty/non-empty), 'k' key emitted awaiting value.
  std::string stack_;
};

// Strict recursive-descent validation of a complete JSON document
// (single value, arbitrary nesting; depth-capped to keep the validator
// itself safe on adversarial input). Returns true iff `text` parses.
bool json_valid(std::string_view text);

}  // namespace sssp::obs
