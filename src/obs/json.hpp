// Minimal JSON support for the observability layer: a streaming writer
// (used by the metrics exporter, the trace sink, and the run report)
// and a strict validator (used by tests and by tools that re-check the
// documents they just wrote).
//
// The writer tracks nesting in a small state stack and inserts commas
// automatically, so call sites read like the document they produce:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("x1").value(42);
//   w.key("iterations").begin_array(); ... w.end_array();
//   w.end_object();
//
// Non-finite doubles serialize as null (JSON has no inf/nan).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sssp::obs {

// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member name; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(int v) { return value(std::int64_t{v}); }
  JsonWriter& value(bool b);
  JsonWriter& null();

 private:
  void before_value();

  std::ostream* out_;
  // One char of state per nesting level: 'o'/'O' object (empty/non-empty),
  // 'a'/'A' array (empty/non-empty), 'k' key emitted awaiting value.
  std::string stack_;
};

// Strict recursive-descent validation of a complete JSON document
// (single value, arbitrary nesting; depth-capped to keep the validator
// itself safe on adversarial input). Returns true iff `text` parses.
bool json_valid(std::string_view text);

// Parsed JSON document tree — enough for tools that read back the
// documents this layer writes (bench_tool's baseline comparison, report
// round-trip tests). Numbers are doubles (fine for our payloads:
// counters fit in 53 bits, everything else is already a double).
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    const auto it = object.find(std::string(key));
    return it != object.end() ? &it->second : nullptr;
  }
  double number_or(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
  }
  std::string string_or(std::string_view key, std::string fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->type == Type::kString ? v->string
                                                    : std::move(fallback);
  }
};

// Parses a complete JSON document (same strictness and depth cap as
// json_valid). Returns false leaving `out` unspecified on malformed
// input; \uXXXX escapes outside ASCII are replaced with '?' (our
// documents never emit them).
bool parse_json(std::string_view text, JsonValue& out);

}  // namespace sssp::obs
