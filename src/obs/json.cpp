#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sssp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  char& top = stack_.back();
  if (top == 'k') {
    stack_.pop_back();  // key consumed by this value
  } else if (top == 'a') {
    top = 'A';
  } else if (top == 'A') {
    *out_ << ',';
  }
  // 'o'/'O' without a pending key is a misuse; the validator in tests
  // catches the malformed output rather than crashing the writer here.
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *out_ << '{';
  stack_.push_back('o');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (!stack_.empty()) stack_.pop_back();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *out_ << '[';
  stack_.push_back('a');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (!stack_.empty()) stack_.pop_back();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!stack_.empty()) {
    char& top = stack_.back();
    if (top == 'o') {
      top = 'O';
    } else if (top == 'O') {
      *out_ << ',';
    }
  }
  *out_ << '"' << json_escape(name) << "\":";
  stack_.push_back('k');
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  *out_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  if (!std::isfinite(d)) return null();
  before_value();
  char buf[40];
  // %.17g round-trips doubles; shorter forms are emitted when exact.
  std::snprintf(buf, sizeof buf, "%.17g", d);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  *out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *out_ << "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos;
      else
        break;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
                return false;
              ++pos;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.eof();
}

}  // namespace sssp::obs
