#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sssp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  char& top = stack_.back();
  if (top == 'k') {
    stack_.pop_back();  // key consumed by this value
  } else if (top == 'a') {
    top = 'A';
  } else if (top == 'A') {
    *out_ << ',';
  }
  // 'o'/'O' without a pending key is a misuse; the validator in tests
  // catches the malformed output rather than crashing the writer here.
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *out_ << '{';
  stack_.push_back('o');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (!stack_.empty()) stack_.pop_back();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *out_ << '[';
  stack_.push_back('a');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (!stack_.empty()) stack_.pop_back();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!stack_.empty()) {
    char& top = stack_.back();
    if (top == 'o') {
      top = 'O';
    } else if (top == 'O') {
      *out_ << ',';
    }
  }
  *out_ << '"' << json_escape(name) << "\":";
  stack_.push_back('k');
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  *out_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  if (!std::isfinite(d)) return null();
  before_value();
  char buf[40];
  // %.17g round-trips doubles; shorter forms are emitted when exact.
  std::snprintf(buf, sizeof buf, "%.17g", d);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  *out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *out_ << "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos;
      else
        break;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
                return false;
              ++pos;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.eof();
}

// ---------------------------------------------------------------------------
// Tree parser
// ---------------------------------------------------------------------------

namespace {

// Builds a JsonValue tree on top of the validating primitives: each
// leaf is validated by the Parser machinery first, then decoded from
// the consumed slice, so both entry points accept exactly the same
// language.
struct TreeParser : Parser {
  explicit TreeParser(std::string_view t) : Parser{t} {}

  // Unescapes the contents of a string token already validated by
  // Parser::string() (pos range excludes the quotes).
  std::string decode_string(std::size_t begin, std::size_t end) const {
    std::string out;
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const char c = text[i];
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = text[++i];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const unsigned code = static_cast<unsigned>(
              std::stoul(std::string(text.substr(i + 1, 4)), nullptr, 16));
          out += code < 0x80 ? static_cast<char>(code) : '?';
          i += 4;
          break;
        }
      }
    }
    return out;
  }

  bool parse_value(JsonValue& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"': {
        const std::size_t begin = pos + 1;
        ok = string();
        if (ok) {
          out.type = JsonValue::Type::kString;
          out.string = decode_string(begin, pos - 1);
        }
        break;
      }
      case 't':
        ok = literal("true");
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        break;
      case 'f':
        ok = literal("false");
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        break;
      case 'n':
        ok = literal("null");
        out.type = JsonValue::Type::kNull;
        break;
      default: {
        const std::size_t begin = pos;
        ok = number();
        if (ok) {
          out.type = JsonValue::Type::kNumber;
          out.number = std::strtod(
              std::string(text.substr(begin, pos - begin)).c_str(), nullptr);
        }
        break;
      }
    }
    --depth;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      const std::size_t begin = pos + 1;
      if (!string()) return false;
      std::string key = decode_string(begin, pos - 1);
      skip_ws();
      if (!consume(':')) return false;
      if (!parse_value(out.object[std::move(key)])) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      out.array.emplace_back();
      if (!parse_value(out.array.back())) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out) {
  out = JsonValue{};
  TreeParser p(text);
  if (!p.parse_value(out)) return false;
  p.skip_ws();
  return p.eof();
}

}  // namespace sssp::obs
