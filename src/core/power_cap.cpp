#include "core/power_cap.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/self_tuning.hpp"
#include "sim/run.hpp"

namespace sssp::core {

PowerCapResult choose_set_point_for_power_cap(const graph::CsrGraph& graph,
                                              graph::VertexId source,
                                              const sim::DeviceSpec& device,
                                              const sim::DvfsPolicy& policy,
                                              const PowerCapOptions& options) {
  if (options.power_budget_w <= 0.0)
    throw std::invalid_argument("power cap: budget must be positive");

  std::vector<double> candidates = options.candidate_set_points;
  if (candidates.empty()) {
    // Geometric grid from tiny to edge-count-scale parallelism.
    const double top = std::max(1024.0, static_cast<double>(graph.num_edges()));
    for (double p = 256.0; p <= top; p *= 4.0) candidates.push_back(p);
  }

  PowerCapResult result;
  double best_time = 0.0;
  double lowest_power = 0.0;

  for (const double p : candidates) {
    SelfTuningOptions st;
    st.set_point = p;
    st.measure_controller_time = false;  // deterministic sweep
    const algo::SsspResult run = self_tuning_sssp(graph, source, st);
    sim::SimulateOptions sim_opts;
    sim_opts.keep_iteration_reports = false;
    const sim::RunReport report =
        sim::simulate_run(device, policy, run.to_workload(""), sim_opts);

    PowerCapPoint point;
    point.set_point = p;
    point.average_power_w = report.average_power_w;
    point.simulated_seconds = report.total_seconds;
    point.within_budget = report.average_power_w <= options.power_budget_w;
    result.sweep.push_back(point);

    if (point.within_budget &&
        (result.chosen_set_point == 0.0 ||
         point.simulated_seconds < best_time)) {
      best_time = point.simulated_seconds;
      result.chosen_set_point = p;
    }
    if (result.best_effort_set_point == 0.0 ||
        point.average_power_w < lowest_power) {
      lowest_power = point.average_power_w;
      result.best_effort_set_point = p;
    }
  }
  return result;
}

}  // namespace sssp::core
