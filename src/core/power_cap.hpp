// Power-cap mode — the paper's proposed future extension (Section 5.2,
// Figure 8 discussion): instead of a parallelism set-point P, the user
// supplies a board power budget in watts; the controller inverts the
// (simulated) power response by sweeping candidate set-points and picks
// the fastest one that stays under the cap.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "sssp/result.hpp"

namespace sssp::core {

struct PowerCapOptions {
  double power_budget_w = 0.0;  // required, > 0
  // Candidate P values; empty selects a geometric default grid scaled
  // to the graph size.
  std::vector<double> candidate_set_points;
};

struct PowerCapPoint {
  double set_point = 0.0;
  double average_power_w = 0.0;
  double simulated_seconds = 0.0;
  bool within_budget = false;
};

struct PowerCapResult {
  // 0 when no candidate met the budget (best_effort then holds the
  // lowest-power candidate).
  double chosen_set_point = 0.0;
  double best_effort_set_point = 0.0;
  std::vector<PowerCapPoint> sweep;
};

PowerCapResult choose_set_point_for_power_cap(const graph::CsrGraph& graph,
                                              graph::VertexId source,
                                              const sim::DeviceSpec& device,
                                              const sim::DvfsPolicy& policy,
                                              const PowerCapOptions& options);

}  // namespace sssp::core
