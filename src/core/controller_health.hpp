// Controller health monitor — the detection half of the self-healing
// control plane (docs/ROBUSTNESS.md).
//
// The DeltaController trusts two SGD models; this class watches the
// signals that say that trust is misplaced:
//   - rejected inputs: non-finite X4 / far-queue stats reaching
//     plan_delta (a corrupted stats pipeline);
//   - non-finite model state: a NaN/Inf degree or alpha estimate;
//   - pinning: delta parked at its min/max bound for many consecutive
//     plans (a divergent model pushing against the clamp);
//   - oscillation: large alternating-sign delta steps (an unstable
//     feedback gain).
// Any of these degrades the control plane: the controller quarantines
// and resets its models and falls back to a static mean-edge-weight
// delta policy. While degraded, every well-formed plan counts toward a
// probation streak; once the streak completes, adaptive control
// resumes with the freshly reset (and since retrained) models.
//
// The monitor is pure bookkeeping — it never touches the models itself;
// DeltaController acts on the returned events.
#pragma once

#include <cstdint>

namespace sssp::core {

enum class ControlState : std::uint8_t {
  kAdaptive = 0,  // Eq. 6 planning with learned models
  kDegraded = 1,  // static fallback delta policy, models in quarantine
};

enum class HealthEvent : std::uint8_t {
  kNone = 0,
  kDegraded = 1,   // transition kAdaptive -> kDegraded just happened
  kRecovered = 2,  // transition kDegraded -> kAdaptive just happened
};

struct HealthConfig {
  // Consecutive non-finite controller inputs before degrading.
  std::uint64_t reject_limit = 3;
  // Consecutive plans with delta pinned at min/max before degrading.
  std::uint64_t pin_limit = 16;
  // Consecutive alternating-sign full-magnitude steps (|step| >= delta)
  // before degrading.
  std::uint64_t oscillation_limit = 8;
  // Consecutive healthy plans while degraded before readmitting the
  // adaptive controller.
  std::uint64_t probation = 5;
};

class ControllerHealth {
 public:
  explicit ControllerHealth(const HealthConfig& config) : config_(config) {}

  // A non-finite input reached the controller (the plan was suppressed).
  // Returns kDegraded when the consecutive-reject streak crosses the
  // limit.
  HealthEvent record_rejected_input();

  // An external watchdog (the invariant auditor, verify/auditor.hpp)
  // observed a tripped runtime invariant. Unlike the streak heuristics
  // this degrades immediately — the caller has positive evidence, not a
  // suspicion. No-op (beyond restarting probation) when already
  // degraded.
  HealthEvent record_external_fault();

  // A plan completed. `at_bound` — the resulting delta sits at the
  // min/max clamp; `step` — the delta change taken; `relative_step` —
  // step / max(previous delta, 1); `model_state_finite` — degree and
  // alpha estimates are both finite. Returns kDegraded on a detected
  // divergence, kRecovered when a degraded controller finishes
  // probation.
  HealthEvent record_plan(bool at_bound, double step, double relative_step,
                          bool model_state_finite);

  ControlState state() const noexcept { return state_; }
  bool degraded() const noexcept { return state_ == ControlState::kDegraded; }

  // Lifetime event counts (run-report and metrics fodder).
  std::uint64_t degradations() const noexcept { return degradations_; }
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  std::uint64_t rejected_inputs() const noexcept { return rejected_inputs_; }
  std::uint64_t model_resets() const noexcept { return model_resets_; }
  // Called by the controller when it resets a model (for accounting).
  void count_model_reset() noexcept { ++model_resets_; }

  const HealthConfig& config() const noexcept { return config_; }

  // Complete serializable monitor state (checkpoint/resume): the event
  // counters plus the detection streaks, so a resumed run degrades and
  // recovers at exactly the iterations the uninterrupted run would.
  struct State {
    std::uint8_t control_state = 0;  // ControlState
    std::uint64_t degradations = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t rejected_inputs = 0;
    std::uint64_t model_resets = 0;
    std::uint64_t reject_streak = 0;
    std::uint64_t pin_streak = 0;
    std::uint64_t oscillation_streak = 0;
    std::uint64_t healthy_streak = 0;
    std::int32_t last_step_sign = 0;  // -1, 0, or +1

    friend bool operator==(const State&, const State&) = default;
  };
  State save_state() const noexcept;
  // Throws std::invalid_argument on out-of-range enum/sign fields.
  void restore(const State& state);

 private:
  HealthEvent degrade();

  HealthConfig config_;
  ControlState state_ = ControlState::kAdaptive;
  std::uint64_t degradations_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t rejected_inputs_ = 0;
  std::uint64_t model_resets_ = 0;
  // Detection streaks.
  std::uint64_t reject_streak_ = 0;
  std::uint64_t pin_streak_ = 0;
  std::uint64_t oscillation_streak_ = 0;
  std::uint64_t healthy_streak_ = 0;
  int last_step_sign_ = 0;
};

}  // namespace sssp::core
