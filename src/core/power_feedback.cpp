#include "core/power_feedback.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "sim/cost_model.hpp"
#include "sim/power_model.hpp"
#include "util/stats.hpp"

namespace sssp::core {
namespace {

// Times one recorded iteration at the given frequencies — the same
// stage composition simulate_run uses.
sim::IterationTiming time_iteration(const sim::DeviceSpec& device,
                                    const sim::FrequencyPair& freqs,
                                    const frontier::IterationStats& it) {
  sim::IterationTiming timing;
  const sim::IterationWork work = it.to_work();
  timing.accumulate(sim::time_stage(
      device, freqs, work.edges_relaxed,
      static_cast<double>(work.edges_relaxed) * device.bytes_per_edge));
  timing.accumulate(sim::time_stage(
      device, freqs, work.x2,
      static_cast<double>(work.x2) * device.bytes_per_vertex));
  timing.accumulate(sim::time_stage(
      device, freqs, work.x3,
      static_cast<double>(work.x3) * device.bytes_per_vertex));
  const std::uint64_t stage4 = work.x4 + work.rebalance_items;
  timing.accumulate(sim::time_stage(
      device, freqs, stage4,
      static_cast<double>(stage4) * device.bytes_per_vertex));
  timing.finalize();
  return timing;
}

}  // namespace

PowerFeedbackResult power_feedback_sssp(const graph::CsrGraph& graph,
                                        graph::VertexId source,
                                        const sim::DeviceSpec& device,
                                        const sim::DvfsPolicy& policy,
                                        const PowerFeedbackOptions& options) {
  if (options.power_budget_w <= 0.0)
    throw std::invalid_argument("power_feedback_sssp: budget must be > 0");
  if (options.gain <= 0.0)
    throw std::invalid_argument("power_feedback_sssp: gain must be > 0");
  if (options.min_set_point <= 0.0 ||
      options.min_set_point > options.max_set_point)
    throw std::invalid_argument("power_feedback_sssp: bad set-point bounds");

  SelfTuningOptions tuning = options.tuning;
  tuning.set_point = std::clamp(options.initial_set_point,
                                options.min_set_point, options.max_set_point);
  tuning.max_iterations = options.max_iterations;
  SelfTuningRun run(graph, source, tuning);

  auto live_policy = policy.clone();
  sim::FrequencyPair freqs = live_policy->initial(device);

  PowerFeedbackResult result;
  util::Ema power_ema(options.power_budget_w, options.power_ema_tau);
  double set_point = tuning.set_point;
  std::size_t compliant = 0;

  while (run.step()) {
    const frontier::IterationStats& it = run.last_iteration();
    const sim::IterationTiming timing = time_iteration(device, freqs, it);
    double watts = sim::board_power(
        device, freqs, timing.core_utilization, timing.mem_utilization);

    // Injected fault: a garbage meter sample on the feedback path.
    if (SSSP_FAILPOINT("sim.power.nan"))
      watts = std::numeric_limits<double>::quiet_NaN();
    // A non-finite reading must not reach the EMA — one NaN would stick
    // in the smoothed state and freeze the set-point loop for the rest
    // of the run. Drop the sample, hold the knob, keep the governor on
    // its last utilizations.
    if (!std::isfinite(watts)) {
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global()
            .counter("power_feedback.rejected_samples")
            .add();
      freqs = live_policy->next(device, timing);
      continue;
    }

    // The "PowerMon reading" for this iteration, smoothed.
    const double smoothed = power_ema.update(watts);
    if (smoothed <= options.power_budget_w) ++compliant;
    result.power_trace_w.push_back(watts);
    result.set_point_trace.push_back(set_point);

    // Multiplicative-increase / multiplicative-decrease on the knob.
    const double error =
        (options.power_budget_w - smoothed) / options.power_budget_w;
    set_point = std::clamp(set_point * std::exp(options.gain * error),
                           options.min_set_point, options.max_set_point);
    run.set_set_point(set_point);

    // The governor reacts to the same utilizations the simulator sees.
    freqs = live_policy->next(device, timing);
  }

  result.sssp = run.take_result();
  result.compliant_fraction =
      result.power_trace_w.empty()
          ? 1.0
          : static_cast<double>(compliant) /
                static_cast<double>(result.power_trace_w.size());

  // Full replay for the headline time/energy numbers (fresh policy so
  // the governor starts from its initial state, as simulate_run does).
  result.report = sim::simulate_run(device, policy,
                                    result.sssp.to_workload("power-feedback"),
                                    {.keep_iteration_reports = false});
  return result;
}

}  // namespace sssp::core
