#include "core/tunable_pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sssp::core {

TunablePageRankResult tunable_pagerank(const graph::CsrGraph& graph,
                                       const TunablePageRankOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0)
    throw std::invalid_argument("tunable_pagerank: damping must be in (0,1)");
  if (options.tolerance <= 0.0)
    throw std::invalid_argument("tunable_pagerank: tolerance must be > 0");
  if (options.gain <= 0.0)
    throw std::invalid_argument("tunable_pagerank: gain must be > 0");

  const std::size_t n = graph.num_vertices();
  TunablePageRankResult result;
  result.ranks.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Residual push formulation: rank absorbs residual, residual flows
  // along edges scaled by damping / out_degree.
  std::vector<double> residual(n, (1.0 - options.damping) /
                                      static_cast<double>(n));
  // `active` holds every vertex whose residual exceeds the tolerance;
  // epsilon partitions it into the frontier (pushed now) and the
  // postponed remainder — the near/far split on the residual metric.
  std::vector<graph::VertexId> active(n);
  std::vector<std::uint8_t> in_active(n, 1);
  for (graph::VertexId v = 0; v < n; ++v) active[v] = v;

  double epsilon = options.tolerance;
  std::vector<graph::VertexId> frontier, postponed;

  // Residual ties (e.g. the uniform start) make epsilon alone unable to
  // split a cohort; cap the admitted count so per-iteration edge work
  // stays near the set-point even then.
  const double avg_degree =
      std::max(1.0, static_cast<double>(graph.num_edges()) /
                        static_cast<double>(n));
  const std::size_t max_frontier =
      options.set_point > 0.0
          ? static_cast<std::size_t>(
                std::max(1.0, options.set_point / avg_degree))
          : std::numeric_limits<std::size_t>::max();

  while (!active.empty()) {
    if (options.max_iterations &&
        result.iterations.size() >= options.max_iterations)
      break;

    // Partition the active set by the current epsilon; if nothing
    // qualifies, relax epsilon toward the tolerance floor (forced
    // progress, as in the SSSP rebalancer).
    frontier.clear();
    postponed.clear();
    for (;;) {
      for (const graph::VertexId v : active) {
        (residual[v] > epsilon ? frontier : postponed).push_back(v);
      }
      if (!frontier.empty() || epsilon <= options.tolerance) break;
      epsilon = std::max(options.tolerance, epsilon / 4.0);
      postponed.clear();
    }
    if (frontier.empty()) break;  // every residual at/below tolerance

    // Tie-breaking cap: postpone the surplus beyond the admission count.
    if (frontier.size() > max_frontier) {
      postponed.insert(postponed.end(), frontier.begin() + max_frontier,
                       frontier.end());
      frontier.resize(max_frontier);
    }

    frontier::IterationStats stats;
    stats.delta = epsilon;
    stats.x1 = frontier.size();
    stats.x4 = postponed.size();

    for (const graph::VertexId v : frontier) {
      in_active[v] = 0;
      const double mass = residual[v];
      residual[v] = 0.0;
      result.ranks[v] += mass;
      const auto neighbors = graph.neighbors(v);
      stats.x2 += neighbors.size();
      if (neighbors.empty()) continue;  // dangling: mass retained in rank
      const double share = options.damping * mass /
                           static_cast<double>(neighbors.size());
      for (const graph::VertexId w : neighbors) {
        residual[w] += share;
        ++stats.improving_relaxations;
        if (!in_active[w] && residual[w] > options.tolerance) {
          in_active[w] = 1;
          postponed.push_back(w);
          ++stats.x3;
        }
      }
    }
    // Pushed vertices may have been re-activated by their own cohort;
    // keep those that crossed the tolerance again.
    active.clear();
    for (const graph::VertexId v : postponed) {
      if (residual[v] > options.tolerance) {
        in_active[v] = 1;
        active.push_back(v);
      } else {
        in_active[v] = 0;
      }
    }

    // The knob: multiplicative feedback holding edge work at P.
    if (options.set_point > 0.0 && stats.x2 > 0) {
      const double error =
          (static_cast<double>(stats.x2) - options.set_point) /
          options.set_point;
      epsilon = std::clamp(epsilon * std::exp(options.gain * error),
                           options.tolerance, 1.0);
    }

    stats.far_queue_size = active.size();
    result.iterations.push_back(stats);
  }

  result.converged = active.empty();
  double sum = 0.0;
  for (const auto& it : result.iterations)
    sum += static_cast<double>(it.x2);
  result.average_parallelism =
      result.iterations.empty()
          ? 0.0
          : sum / static_cast<double>(result.iterations.size());
  return result;
}

std::vector<double> pagerank_power_iteration(const graph::CsrGraph& graph,
                                             double damping,
                                             std::size_t iterations) {
  const std::size_t n = graph.num_vertices();
  std::vector<double> x(n, n ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> next(n);
  const double teleport = n ? (1.0 - damping) / static_cast<double>(n) : 0.0;
  for (std::size_t k = 0; k < iterations; ++k) {
    std::fill(next.begin(), next.end(), teleport);
    for (graph::VertexId u = 0; u < n; ++u) {
      const auto neighbors = graph.neighbors(u);
      if (neighbors.empty()) continue;  // dangling mass dropped, matching
                                        // the push formulation above
      const double share =
          damping * x[u] / static_cast<double>(neighbors.size());
      for (const graph::VertexId v : neighbors) next[v] += share;
    }
    x.swap(next);
  }
  return x;
}

}  // namespace sssp::core
