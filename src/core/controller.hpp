// DeltaController — the paper's feedback loop (Figure 4, Sections
// 4.1-4.5). Each iteration it:
//   1. observes (X1, X2) after advance and trains the ADVANCE-MODEL;
//      if the previous iteration changed delta, it also trains the
//      BISECT-MODEL with the realized frontier change;
//   2. after bisect, computes delta_{k+1} via Eq. 6:
//        delta_{k+1} = delta_k + (P/d - X4_k) / alpha
//      using the learned alpha once converged, the Eq. 8 bootstrap
//      before that.
// The caller (SelfTuningSssp) applies the returned delta through the
// rebalancer and reports forced progress jumps back via force_delta().
//
// Self-healing (docs/ROBUSTNESS.md): a ControllerHealth monitor watches
// for non-finite inputs, NaN/Inf model state, delta pinned at its
// bounds, and step oscillation. On detection the controller quarantines
// and resets both models and degrades to a static mean-edge-weight
// delta policy (delta advances by `fallback_delta` per plan, the
// classic delta-stepping bucket walk); after a probation streak of
// well-formed plans it recovers to adaptive control. Distances are
// exact in every state — only tracking quality is at stake.
#pragma once

#include <cstdint>

#include "core/advance_model.hpp"
#include "core/bisect_model.hpp"
#include "core/controller_health.hpp"

namespace sssp::core {

struct ControllerConfig {
  // The parallelism set-point P (required, > 0).
  double set_point = 0.0;
  // Initial delta; 0 lets the caller seed it (mean edge weight).
  double initial_delta = 0.0;
  double min_delta = 1.0;
  double max_delta = 1e15;
  // Stability clamp: |delta step| <= max_step_ratio * max(delta, 1).
  // Overshoot before the models converge is the failure mode the paper
  // mitigates with Eq. 8; the clamp bounds the worst case.
  double max_step_ratio = 4.0;
  // Deadband: no delta change while X4 is within this relative band of
  // the target frontier size. Without it the rebalancer ping-pongs a
  // slice of vertices between the frontier and the far queue every
  // iteration, paying stage-4 work for no tracking benefit.
  double deadband_ratio = 0.25;
  // Ablation: disable Algorithm 1's adaptive learning rate.
  bool adaptive_learning_rate = true;
  // SGD observations before trusting the learned alpha (paper: ~5).
  std::uint64_t bootstrap_observations = 5;
  // Seed for the ADVANCE-MODEL's degree estimate (graph mean degree).
  double initial_degree = 1.0;
  // Degraded-mode bucket width (the static delta policy's step per
  // plan). 0 falls back to max(initial_delta, min_delta); SelfTuningSssp
  // seeds it with the graph's mean edge weight.
  double fallback_delta = 0.0;
  // Health-monitor thresholds (see controller_health.hpp).
  HealthConfig health;
};

class DeltaController {
 public:
  explicit DeltaController(const ControllerConfig& config);

  // Phase A — after advance_and_filter of iteration k. Non-finite
  // observations are rejected by the models (see AdaptiveSgd::update).
  void observe_advance(double x1, double x2);

  // Phase B — after bisect of iteration k. far_total_size is the whole
  // far queue's population; far_partition_{size,bound} describe its
  // current partition (Eq. 8 inputs). Returns delta_{k+1}.
  //
  // When the far queue is empty, positive delta steps are suppressed:
  // raising the threshold cannot release any postponed work, and letting
  // delta run away from the distance range in play would poison the
  // Eq. 8 bootstrap (alpha = X4/delta) for the rest of the run.
  //
  // Non-finite inputs suppress planning entirely: the current delta is
  // returned unchanged (logged once per run, counted in
  // health().rejected_inputs()) instead of propagating garbage into
  // Eq. 6 / Eq. 8. Repeated rejects degrade the control plane.
  double plan_delta(double x4, double far_total_size,
                    double far_partition_size, double far_partition_bound);

  // The run loop overrode delta. inform_model controls whether the jump
  // is fed to the BISECT-MODEL: true for rebalancer pulls (the realized
  // frontier change carries alpha information), false for bookkeeping
  // snaps (e.g. re-anchoring delta to the wavefront after the far queue
  // drained — no vertices moved, so there is nothing to learn).
  void force_delta(double new_delta, double x4, bool inform_model = true);

  double delta() const noexcept { return delta_; }
  double set_point() const noexcept { return config_.set_point; }
  // Retargets the controller (power-feedback mode adjusts P from watts;
  // paper Section 5.2 / Figure 8 discussion). Must be positive.
  void set_set_point(double set_point);
  // P / d (Eq. 3).
  double target_frontier_size() const {
    return advance_.target_frontier_size(config_.set_point);
  }
  // alpha used by the last plan_delta() (diagnostics + Eq. 7 input).
  double last_alpha() const noexcept { return last_alpha_; }
  double deadband_ratio() const noexcept { return config_.deadband_ratio; }

  const AdvanceModel& advance_model() const noexcept { return advance_; }
  const BisectModel& bisect_model() const noexcept { return bisect_; }

  // Self-healing state (read-only; the controller manages transitions).
  const ControllerHealth& health() const noexcept { return health_; }
  ControlState control_state() const noexcept { return health_.state(); }

  // External-fault quarantine: the run loop's invariant auditor caught a
  // tripped invariant and no longer trusts the adaptive models. Resets
  // both models and degrades to the static fallback delta policy (same
  // path as a detected divergence); recovery goes through the usual
  // probation. Idempotent while already degraded.
  void quarantine();

  // Complete serializable controller state (checkpoint/resume): delta,
  // the pending BISECT-MODEL observation, both SGD models, and the
  // health monitor. Restoring a captured state onto a controller built
  // from the same config reproduces every subsequent plan bit-for-bit.
  struct State {
    double delta = 0.0;
    double last_alpha = 1.0;
    double pending_delta_change = 0.0;
    double pending_x4 = 0.0;
    bool has_pending = false;
    bool logged_nonfinite = false;
    AdaptiveSgd::State advance_sgd;
    AdaptiveSgd::State bisect_sgd;
    ControllerHealth::State health;

    friend bool operator==(const State&, const State&) = default;
  };
  State state() const noexcept;
  // Validated restore: delta must be finite and inside the configured
  // [min_delta, max_delta]; alpha/pending fields finite. Rejections are
  // counted through the existing input firewall
  // ("controller.health.rejected_inputs") and throw
  // std::invalid_argument — a corrupt checkpoint degrades to a load
  // error, never to a poisoned control plane.
  void restore(const State& state);

 private:
  double clamp_delta(double delta) const;
  double fallback_step() const;
  // Quarantine: discard both models' learned state and restart them from
  // the configured priors.
  void reset_models();
  void handle_event(HealthEvent event);

  ControllerConfig config_;
  AdvanceModel advance_;
  BisectModel bisect_;
  ControllerHealth health_;
  double delta_;
  double last_alpha_ = 1.0;
  // Pending (delta change, x4) awaiting the next iteration's X1.
  double pending_delta_change_ = 0.0;
  double pending_x4_ = 0.0;
  bool has_pending_ = false;
  bool logged_nonfinite_ = false;
};

}  // namespace sssp::core
