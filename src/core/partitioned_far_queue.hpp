// Recursively partitioned far queue (paper Section 4.6).
//
// The far queue is kept as a sequence of partitions ordered by vertex
// distance, partition i holding entries with B_{i-1} < d <= B_i. The
// first boundary is seeded with the average edge weight and the last is
// always MAX (kInfiniteDistance). The controller periodically tightens
// the current partition's upper bound to B_{i-1} + P/alpha (Eq. 7) so
// that no single rebalance pull exceeds the parallelism set-point; to
// preserve correctness the boundary updates are monotone (they only
// decrease). Pulling below a threshold then touches only the partitions
// that intersect the range instead of scanning the whole queue — the
// efficiency claim of the paper's rebalancer.
//
// Entries store their distance at insertion; stale entries (distance
// improved since) are dropped lazily during scans, exactly as in the
// flat frontier::FarQueue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "frontier/far_queue.hpp"
#include "graph/types.hpp"

namespace sssp::core {

class PartitionedFarQueue {
 public:
  // Seeds the boundary layout {first_bound, MAX} (Section 4.6: "two
  // partitions with their upper bounds initialized to average edge
  // weight and MAX_INT"). first_bound must be positive.
  explicit PartitionedFarQueue(graph::Distance first_bound);

  void push(graph::VertexId v, graph::Distance d);

  // Bulk push of an engine spill: entry i is (vertices[i],
  // current_distances[vertices[i]]). Equivalent to pushing in input
  // order — each partition receives its entries in the order they
  // appear in `vertices` — but runs the partition classification on the
  // thread pool (count → exclusive-prefix-sum → write) for large
  // spills, so the result is identical at any thread count.
  void push_bulk(std::span<const graph::VertexId> vertices,
                 std::span<const graph::Distance> current_distances);

  // Moves live entries with distance < threshold into `frontier`,
  // dropping stale entries met along the way. Only partitions whose
  // range intersects [0, threshold) are scanned; returns the number of
  // entries scanned (the stage-4 work the simulator charges).
  std::uint64_t pull_below(graph::Distance threshold,
                           std::span<const graph::Distance> current_distances,
                           std::vector<graph::VertexId>& frontier);

  // Drains the current (first) partition: live entries are appended to
  // `frontier` (up to max_live of them), stale ones dropped. When the
  // partition is fully consumed it is removed and the next becomes
  // current; a count-limited pull that stops early leaves the remainder
  // in place (exhausted == false). The limit matters when distance ties
  // make a partition indivisible by boundaries — e.g. a whole BFS level
  // on the hop metric — and the set-point calls for only part of it.
  // This is the self-tuning bisect-far-queue: "instead of searching all
  // vertices ... only the partitions with the desired boundaries are
  // searched".
  struct PullResult {
    graph::Distance bound = 0;
    std::uint64_t scanned = 0;
    std::uint64_t pulled = 0;
    bool exhausted = false;  // partition fully consumed and removed
  };
  PullResult pull_front_partition(
      std::span<const graph::Distance> current_distances,
      std::vector<graph::VertexId>& frontier,
      std::uint64_t max_live = std::numeric_limits<std::uint64_t>::max());

  // Eq. 7: tighten the current (first) partition's upper bound toward
  // lower_bound + set_point / alpha. Monotone: the bound never grows.
  // Entries displaced above the new bound move to the next partition
  // (appending a fresh MAX partition when the current one is the last).
  // Returns the number of entries that moved partitions.
  std::uint64_t update_boundary(double set_point, double alpha);

  std::size_t size() const noexcept { return total_entries_; }
  bool empty() const noexcept { return total_entries_ == 0; }
  std::size_t num_partitions() const noexcept { return partitions_.size(); }

  // Current (first) partition state, for the Eq. 8 bootstrap.
  std::size_t current_partition_size() const;
  graph::Distance current_partition_bound() const;
  graph::Distance current_lower_bound() const noexcept { return lower_bound_; }

  // Smallest live distance across all partitions (INF if none): the
  // progress guarantee when the frontier runs dry.
  graph::Distance min_live_distance(
      std::span<const graph::Distance> current_distances) const;

  // Lowers the structure's floor (the implicit lower bound of the first
  // partition). Called when the rebalancer demotes frontier vertices
  // whose distances lie below previously consumed boundaries — the
  // "released" region shrinks back, and Eq. 7 must be able to subdivide
  // it again. Monotone in the safe direction: never raises the floor.
  void lower_floor(graph::Distance new_floor) noexcept {
    lower_bound_ = std::min(lower_bound_, new_floor);
  }

  // Drops all entries (used when every remaining entry is stale).
  void clear();

  // Copies the partition upper bounds (ascending, last == MAX) into
  // `out` — the invariant auditor's Eq. 7 monotonicity input. O(P) with
  // no allocation once `out` has capacity; does not expose entries.
  void boundary_snapshot(std::vector<graph::Distance>& out) const {
    out.clear();
    out.reserve(partitions_.size());
    for (const Partition& partition : partitions_)
      out.push_back(partition.upper_bound);
  }

  // Invariant check for tests: boundaries strictly increasing, last is
  // MAX, every entry within its partition's range. Throws otherwise.
  void check_invariants() const;

  // Complete serializable queue state (checkpoint/resume): the floor,
  // every partition's upper bound, and every entry — boundaries
  // included, so Eq. 7 maintenance continues exactly where it left off.
  struct State {
    graph::Distance lower_bound = 0;
    std::vector<graph::Distance> bounds;  // one per partition, ascending
    std::vector<std::vector<frontier::FarEntry>> entries;  // aligned

    friend bool operator==(const State&, const State&) = default;
  };
  State state() const;
  // Validated restore: rebuilds the partitions and re-derives the entry
  // count, then runs check_invariants(). Throws std::invalid_argument
  // on any malformed snapshot (bound order, entries above their bound,
  // shape mismatch).
  void restore(State&& state);

 private:
  struct Partition {
    graph::Distance upper_bound;
    std::vector<frontier::FarEntry> entries;
  };

  // Removes consumed (empty, non-final) partitions from the front.
  void drop_empty_front();
  std::size_t partition_index_for(graph::Distance d) const;

  std::vector<Partition> partitions_;
  graph::Distance lower_bound_ = 0;  // B_{i-1} of the current partition
  std::size_t total_entries_ = 0;
};

}  // namespace sssp::core
