#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace sssp::core {

namespace {

struct ControllerMetrics {
  obs::Counter& observations;
  obs::Counter& plans;
  obs::Counter& deadband_holds;
  obs::Counter& forced_deltas;
  obs::Histogram& delta;

  static ControllerMetrics& get() {
    static ControllerMetrics m{
        obs::MetricsRegistry::global().counter("controller.observations"),
        obs::MetricsRegistry::global().counter("controller.plans"),
        obs::MetricsRegistry::global().counter("controller.deadband_holds"),
        obs::MetricsRegistry::global().counter("controller.forced_deltas"),
        obs::MetricsRegistry::global().histogram("controller.delta")};
    return m;
  }
};

}  // namespace

DeltaController::DeltaController(const ControllerConfig& config)
    : config_(config),
      advance_(AdvanceModel::Options{
          .initial_degree = config.initial_degree > 0 ? config.initial_degree : 1.0,
          .adaptive = config.adaptive_learning_rate}),
      bisect_(BisectModel::Options{
          .initial_alpha = 1.0,
          .adaptive = config.adaptive_learning_rate,
          .bootstrap_observations = config.bootstrap_observations}),
      delta_(config.initial_delta) {
  if (config.set_point <= 0.0)
    throw std::invalid_argument("DeltaController: set_point must be > 0");
  if (config.min_delta <= 0.0 || config.min_delta > config.max_delta)
    throw std::invalid_argument("DeltaController: bad delta bounds");
  if (config.max_step_ratio <= 0.0)
    throw std::invalid_argument("DeltaController: max_step_ratio must be > 0");
  if (delta_ <= 0.0) delta_ = config.min_delta;
  delta_ = clamp_delta(delta_);
}

double DeltaController::clamp_delta(double delta) const {
  return std::clamp(delta, config_.min_delta, config_.max_delta);
}

void DeltaController::observe_advance(double x1, double x2) {
  if (obs::metrics_enabled()) ControllerMetrics::get().observations.add();
  if (has_pending_) {
    bisect_.observe(pending_delta_change_, pending_x4_, x1);
    has_pending_ = false;
  }
  if (x1 > 0.0) advance_.observe(x1, x2);
}

double DeltaController::plan_delta(double x4, double far_total_size,
                                   double far_partition_size,
                                   double far_partition_bound) {
  BisectModel::BootstrapState state;
  state.x4 = x4;
  state.x1_target = target_frontier_size();
  state.delta = delta_;
  state.partition_size = far_partition_size;
  state.partition_bound = far_partition_bound;
  last_alpha_ = bisect_.alpha(state);

  // Eq. 6, with a deadband around the target.
  double step = (state.x1_target - x4) / last_alpha_;
  const bool in_deadband = std::abs(x4 - state.x1_target) <=
                           config_.deadband_ratio * state.x1_target;
  if (in_deadband) step = 0.0;
  if (far_total_size <= 0.0 && step > 0.0) step = 0.0;
  const double max_step = config_.max_step_ratio * std::max(delta_, 1.0);
  step = std::clamp(step, -max_step, max_step);

  const double new_delta = clamp_delta(delta_ + step);
  pending_delta_change_ = new_delta - delta_;
  pending_x4_ = x4;
  has_pending_ = pending_delta_change_ != 0.0;
  delta_ = new_delta;
  if (obs::metrics_enabled()) {
    ControllerMetrics& m = ControllerMetrics::get();
    m.plans.add();
    if (in_deadband) m.deadband_holds.add();
    m.delta.record(delta_);
  }
  return delta_;
}

void DeltaController::set_set_point(double set_point) {
  if (set_point <= 0.0)
    throw std::invalid_argument("DeltaController: set_point must be > 0");
  config_.set_point = set_point;
}

void DeltaController::force_delta(double new_delta, double x4,
                                  bool inform_model) {
  if (obs::metrics_enabled()) ControllerMetrics::get().forced_deltas.add();
  new_delta = clamp_delta(new_delta);
  if (inform_model) {
    pending_delta_change_ = new_delta - delta_;
    pending_x4_ = x4;
    has_pending_ = pending_delta_change_ != 0.0;
  } else {
    has_pending_ = false;
  }
  delta_ = new_delta;
}

}  // namespace sssp::core
