#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace sssp::core {

namespace {

struct ControllerMetrics {
  obs::Counter& observations;
  obs::Counter& plans;
  obs::Counter& deadband_holds;
  obs::Counter& forced_deltas;
  obs::Counter& rejected_inputs;
  obs::Counter& degradations;
  obs::Counter& recoveries;
  obs::Counter& model_resets;
  obs::Histogram& delta;

  static ControllerMetrics& get() {
    static ControllerMetrics m{
        obs::MetricsRegistry::global().counter("controller.observations"),
        obs::MetricsRegistry::global().counter("controller.plans"),
        obs::MetricsRegistry::global().counter("controller.deadband_holds"),
        obs::MetricsRegistry::global().counter("controller.forced_deltas"),
        obs::MetricsRegistry::global().counter(
            "controller.health.rejected_inputs"),
        obs::MetricsRegistry::global().counter(
            "controller.health.degradations"),
        obs::MetricsRegistry::global().counter("controller.health.recoveries"),
        obs::MetricsRegistry::global().counter(
            "controller.health.model_resets"),
        obs::MetricsRegistry::global().histogram("controller.delta")};
    return m;
  }
};

}  // namespace

DeltaController::DeltaController(const ControllerConfig& config)
    : config_(config),
      advance_(AdvanceModel::Options{
          .initial_degree = config.initial_degree > 0 ? config.initial_degree : 1.0,
          .adaptive = config.adaptive_learning_rate}),
      bisect_(BisectModel::Options{
          .initial_alpha = 1.0,
          .adaptive = config.adaptive_learning_rate,
          .bootstrap_observations = config.bootstrap_observations}),
      health_(config.health),
      delta_(config.initial_delta) {
  if (config.set_point <= 0.0)
    throw std::invalid_argument("DeltaController: set_point must be > 0");
  if (config.min_delta <= 0.0 || config.min_delta > config.max_delta)
    throw std::invalid_argument("DeltaController: bad delta bounds");
  if (config.max_step_ratio <= 0.0)
    throw std::invalid_argument("DeltaController: max_step_ratio must be > 0");
  if (!std::isfinite(config.fallback_delta) || config.fallback_delta < 0.0)
    throw std::invalid_argument(
        "DeltaController: fallback_delta must be finite and >= 0");
  if (delta_ <= 0.0) delta_ = config.min_delta;
  delta_ = clamp_delta(delta_);
}

double DeltaController::clamp_delta(double delta) const {
  return std::clamp(delta, config_.min_delta, config_.max_delta);
}

double DeltaController::fallback_step() const {
  if (config_.fallback_delta > 0.0) return config_.fallback_delta;
  return std::max(config_.initial_delta, config_.min_delta);
}

void DeltaController::reset_models() {
  advance_ = AdvanceModel(AdvanceModel::Options{
      .initial_degree =
          config_.initial_degree > 0 ? config_.initial_degree : 1.0,
      .adaptive = config_.adaptive_learning_rate});
  bisect_ = BisectModel(BisectModel::Options{
      .initial_alpha = 1.0,
      .adaptive = config_.adaptive_learning_rate,
      .bootstrap_observations = config_.bootstrap_observations});
  has_pending_ = false;
  last_alpha_ = 1.0;
  health_.count_model_reset();
  if (obs::metrics_enabled()) ControllerMetrics::get().model_resets.add();
}

void DeltaController::quarantine() {
  handle_event(health_.record_external_fault());
}

void DeltaController::handle_event(HealthEvent event) {
  switch (event) {
    case HealthEvent::kNone:
      return;
    case HealthEvent::kDegraded: {
      reset_models();
      SSSP_LOG(kWarn) << "controller degraded: models quarantined, "
                         "falling back to static delta policy (step "
                      << fallback_step() << ")";
      if (obs::metrics_enabled()) ControllerMetrics::get().degradations.add();
      if (obs::trace_enabled()) {
        obs::Tracer& tracer = obs::Tracer::global();
        tracer.instant("controller_degraded", tracer.now_us());
      }
      return;
    }
    case HealthEvent::kRecovered: {
      SSSP_LOG(kInfo) << "controller recovered: adaptive control resumed "
                         "after probation";
      if (obs::metrics_enabled()) ControllerMetrics::get().recoveries.add();
      if (obs::trace_enabled()) {
        obs::Tracer& tracer = obs::Tracer::global();
        tracer.instant("controller_recovered", tracer.now_us());
      }
      return;
    }
  }
}

void DeltaController::observe_advance(double x1, double x2) {
  if (obs::metrics_enabled()) ControllerMetrics::get().observations.add();
  if (has_pending_) {
    bisect_.observe(pending_delta_change_, pending_x4_, x1);
    has_pending_ = false;
  }
  if (x1 > 0.0) advance_.observe(x1, x2);
}

double DeltaController::plan_delta(double x4, double far_total_size,
                                   double far_partition_size,
                                   double far_partition_bound) {
  // Input firewall: garbage in the stats pipeline must not reach Eq. 6 /
  // Eq. 8. Suppress the plan, keep the current delta, and let the health
  // monitor decide whether the controller has to degrade.
  if (!std::isfinite(x4) || !std::isfinite(far_total_size) ||
      !std::isfinite(far_partition_size) ||
      !std::isfinite(far_partition_bound)) {
    if (!logged_nonfinite_) {
      SSSP_LOG(kWarn) << "controller: non-finite plan input (x4=" << x4
                      << ", far=" << far_total_size
                      << "); suppressing delta planning";
      logged_nonfinite_ = true;
    }
    if (obs::metrics_enabled()) ControllerMetrics::get().rejected_inputs.add();
    handle_event(health_.record_rejected_input());
    has_pending_ = false;
    return delta_;
  }

  const double previous_delta = delta_;

  if (health_.degraded()) {
    // Static mean-edge-weight policy: walk the threshold forward one
    // bucket per plan (delta-stepping's fixed-width behavior). No model
    // output is consulted while quarantined.
    const double new_delta = clamp_delta(delta_ + fallback_step());
    pending_delta_change_ = new_delta - delta_;
    pending_x4_ = x4;
    // Keep training the fresh models on realized outcomes so recovery
    // resumes from warm estimates.
    has_pending_ = pending_delta_change_ != 0.0;
    delta_ = new_delta;
    if (obs::metrics_enabled()) {
      ControllerMetrics& m = ControllerMetrics::get();
      m.plans.add();
      m.delta.record(delta_);
    }
    handle_event(health_.record_plan(
        /*at_bound=*/delta_ <= config_.min_delta || delta_ >= config_.max_delta,
        /*step=*/delta_ - previous_delta,
        /*relative_step=*/(delta_ - previous_delta) /
            std::max(previous_delta, 1.0),
        /*model_state_finite=*/true));
    return delta_;
  }

  BisectModel::BootstrapState state;
  state.x4 = x4;
  state.x1_target = target_frontier_size();
  state.delta = delta_;
  state.partition_size = far_partition_size;
  state.partition_bound = far_partition_bound;
  last_alpha_ = bisect_.alpha(state);

  // Eq. 6, with a deadband around the target.
  double step = (state.x1_target - x4) / last_alpha_;
  const bool in_deadband = std::abs(x4 - state.x1_target) <=
                           config_.deadband_ratio * state.x1_target;
  if (in_deadband) step = 0.0;
  if (far_total_size <= 0.0 && step > 0.0) step = 0.0;
  const double max_step = config_.max_step_ratio * std::max(delta_, 1.0);
  step = std::clamp(step, -max_step, max_step);
  // Belt and braces: the models guard their own inputs, but a non-finite
  // step must never reach delta.
  if (!std::isfinite(step)) step = 0.0;

  // "Pinned" means the clamp truncated the model's request — a diverging
  // model slams the bound plan after plan. Sitting at a bound through
  // deadband holds (step == 0) is healthy equilibrium, not divergence.
  const double attempted = delta_ + step;
  const bool pinned = step != 0.0 && (attempted < config_.min_delta ||
                                      attempted > config_.max_delta);

  const double new_delta = clamp_delta(attempted);
  pending_delta_change_ = new_delta - delta_;
  pending_x4_ = x4;
  has_pending_ = pending_delta_change_ != 0.0;
  delta_ = new_delta;
  if (obs::metrics_enabled()) {
    ControllerMetrics& m = ControllerMetrics::get();
    m.plans.add();
    if (in_deadband) m.deadband_holds.add();
    m.delta.record(delta_);
  }

  const bool model_state_finite =
      std::isfinite(advance_.degree()) && std::isfinite(last_alpha_);
  handle_event(health_.record_plan(
      pinned,
      /*step=*/delta_ - previous_delta,
      /*relative_step=*/(delta_ - previous_delta) /
          std::max(previous_delta, 1.0),
      model_state_finite));
  return delta_;
}

DeltaController::State DeltaController::state() const noexcept {
  State state;
  state.delta = delta_;
  state.last_alpha = last_alpha_;
  state.pending_delta_change = pending_delta_change_;
  state.pending_x4 = pending_x4_;
  state.has_pending = has_pending_;
  state.logged_nonfinite = logged_nonfinite_;
  state.advance_sgd = advance_.sgd_state();
  state.bisect_sgd = bisect_.sgd_state();
  state.health = health_.save_state();
  return state;
}

void DeltaController::restore(const State& state) {
  const bool well_formed =
      std::isfinite(state.delta) && state.delta >= config_.min_delta &&
      state.delta <= config_.max_delta && std::isfinite(state.last_alpha) &&
      state.last_alpha > 0.0 && std::isfinite(state.pending_delta_change) &&
      std::isfinite(state.pending_x4);
  if (!well_formed) {
    if (obs::metrics_enabled()) ControllerMetrics::get().rejected_inputs.add();
    throw std::invalid_argument(
        "DeltaController: rejected restore state (non-finite or "
        "out-of-range field)");
  }
  // The models and the monitor run their own firewalls; any rejection
  // propagates before this controller's fields are touched.
  advance_.restore_sgd(state.advance_sgd);
  bisect_.restore_sgd(state.bisect_sgd);
  health_.restore(state.health);
  delta_ = state.delta;
  last_alpha_ = state.last_alpha;
  pending_delta_change_ = state.pending_delta_change;
  pending_x4_ = state.pending_x4;
  has_pending_ = state.has_pending;
  logged_nonfinite_ = state.logged_nonfinite;
}

void DeltaController::set_set_point(double set_point) {
  if (set_point <= 0.0)
    throw std::invalid_argument("DeltaController: set_point must be > 0");
  config_.set_point = set_point;
}

void DeltaController::force_delta(double new_delta, double x4,
                                  bool inform_model) {
  if (obs::metrics_enabled()) ControllerMetrics::get().forced_deltas.add();
  // Forced jumps come from the run loop's own bookkeeping; a non-finite
  // override would bypass the plan-side firewall.
  if (!std::isfinite(new_delta) || !std::isfinite(x4)) {
    handle_event(health_.record_rejected_input());
    return;
  }
  new_delta = clamp_delta(new_delta);
  if (inform_model) {
    pending_delta_change_ = new_delta - delta_;
    pending_x4_ = x4;
    has_pending_ = pending_delta_change_ != 0.0;
  } else {
    has_pending_ = false;
  }
  delta_ = new_delta;
}

}  // namespace sssp::core
