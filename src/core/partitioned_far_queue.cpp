#include "core/partitioned_far_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace sssp::core {

using graph::Distance;
using graph::kInfiniteDistance;
using graph::VertexId;

namespace {

struct FarQueueMetrics {
  obs::Counter& pushes;
  obs::Counter& pulled;
  obs::Counter& scanned;
  obs::Counter& boundary_updates;
  obs::Counter& boundary_moved;
  obs::Gauge& partitions;

  static FarQueueMetrics& get() {
    static FarQueueMetrics m{
        obs::MetricsRegistry::global().counter("far_queue.pushes"),
        obs::MetricsRegistry::global().counter("far_queue.pulled"),
        obs::MetricsRegistry::global().counter("far_queue.scanned"),
        obs::MetricsRegistry::global().counter("far_queue.boundary_updates"),
        obs::MetricsRegistry::global().counter("far_queue.boundary_moved"),
        obs::MetricsRegistry::global().gauge("far_queue.partitions")};
    return m;
  }
};

}  // namespace

PartitionedFarQueue::PartitionedFarQueue(Distance first_bound) {
  if (first_bound == 0)
    throw std::invalid_argument("PartitionedFarQueue: first_bound must be > 0");
  if (first_bound != kInfiniteDistance)
    partitions_.push_back({first_bound, {}});
  partitions_.push_back({kInfiniteDistance, {}});
}

std::size_t PartitionedFarQueue::partition_index_for(Distance d) const {
  // First partition whose upper bound is >= d (entries satisfy
  // B_{i-1} < d <= B_i). Bounds are sorted, so binary search.
  std::size_t lo = 0, hi = partitions_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (partitions_[mid].upper_bound >= d) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void PartitionedFarQueue::push(VertexId v, Distance d) {
  partitions_[partition_index_for(d)].entries.push_back({v, d});
  ++total_entries_;
  if (obs::metrics_enabled()) FarQueueMetrics::get().pushes.add();
}

void PartitionedFarQueue::push_bulk(
    std::span<const VertexId> vertices,
    std::span<const Distance> current_distances) {
  const std::size_t n = vertices.size();
  if (n == 0) return;
  constexpr std::size_t kParallelThreshold = 4096;
  if (n < kParallelThreshold) {
    for (const VertexId v : vertices) {
      const Distance d = current_distances[v];
      partitions_[partition_index_for(d)].entries.push_back({v, d});
    }
  } else {
    // Count → exclusive-prefix-sum → write over (range × partition)
    // cells. Ranges are contiguous slices of the input and each
    // partition's slots are assigned range-major, so every partition
    // sees its entries in input order — bit-identical to the serial
    // push loop at any thread count.
    util::ThreadPool& pool = util::ThreadPool::global();
    const std::size_t num_parts = partitions_.size();
    const std::size_t ranges =
        std::max<std::size_t>(1, std::min(n, pool.size() * 4));
    const std::size_t per = (n + ranges - 1) / ranges;
    std::vector<std::size_t> counts(ranges * num_parts, 0);
    pool.for_each_chunk(ranges, [&](std::size_t r, std::size_t) {
      std::size_t* mine = counts.data() + r * num_parts;
      const std::size_t begin = std::min(n, r * per);
      const std::size_t end = std::min(n, begin + per);
      for (std::size_t i = begin; i < end; ++i)
        ++mine[partition_index_for(current_distances[vertices[i]])];
    });
    // Exclusive prefix per partition (partition-major over range-major
    // cells), offset by each partition's existing tail.
    for (std::size_t p = 0; p < num_parts; ++p) {
      std::size_t offset = partitions_[p].entries.size();
      for (std::size_t r = 0; r < ranges; ++r) {
        const std::size_t c = counts[r * num_parts + p];
        counts[r * num_parts + p] = offset;
        offset += c;
      }
      partitions_[p].entries.resize(offset);
    }
    pool.for_each_chunk(ranges, [&](std::size_t r, std::size_t) {
      std::size_t* cursor = counts.data() + r * num_parts;
      const std::size_t begin = std::min(n, r * per);
      const std::size_t end = std::min(n, begin + per);
      for (std::size_t i = begin; i < end; ++i) {
        const VertexId v = vertices[i];
        const Distance d = current_distances[v];
        const std::size_t p = partition_index_for(d);
        partitions_[p].entries[cursor[p]++] = {v, d};
      }
    });
  }
  total_entries_ += n;
  if (obs::metrics_enabled()) FarQueueMetrics::get().pushes.add(n);
}

void PartitionedFarQueue::drop_empty_front() {
  while (partitions_.size() > 1 && partitions_.front().entries.empty()) {
    lower_bound_ = partitions_.front().upper_bound;
    partitions_.erase(partitions_.begin());
  }
}

std::uint64_t PartitionedFarQueue::pull_below(
    Distance threshold, std::span<const Distance> current_distances,
    std::vector<VertexId>& frontier) {
  std::uint64_t scanned = 0;
  for (Partition& partition : partitions_) {
    // Partitions entirely at/above the threshold hold no candidates
    // (entries can only be stale-or-retained there); stop early. A
    // partition straddles when its lower range is below the threshold.
    // We track only the first partition's lower bound, but since bounds
    // are sorted it suffices to stop at the first partition whose
    // predecessor bound >= threshold; equivalently stop after the first
    // partition whose upper bound >= threshold (it straddles).
    const bool straddles = partition.upper_bound >= threshold;
    scanned += partition.entries.size();
    std::size_t keep = 0;
    for (const frontier::FarEntry& entry : partition.entries) {
      if (current_distances[entry.vertex] != entry.distance) continue;  // stale
      if (entry.distance < threshold) {
        frontier.push_back(entry.vertex);
      } else {
        partition.entries[keep++] = entry;
      }
    }
    total_entries_ -= partition.entries.size() - keep;
    partition.entries.resize(keep);
    if (straddles) break;
  }
  drop_empty_front();
  if (obs::metrics_enabled()) {
    FarQueueMetrics& m = FarQueueMetrics::get();
    m.scanned.add(scanned);
    m.partitions.set(static_cast<double>(partitions_.size()));
  }
  return scanned;
}

PartitionedFarQueue::PullResult PartitionedFarQueue::pull_front_partition(
    std::span<const Distance> current_distances,
    std::vector<VertexId>& frontier, std::uint64_t max_live) {
  Partition& front = partitions_.front();
  PullResult result;
  result.bound = front.upper_bound;

  std::size_t consumed = 0;
  for (; consumed < front.entries.size() && result.pulled < max_live;
       ++consumed) {
    const frontier::FarEntry& entry = front.entries[consumed];
    ++result.scanned;
    if (current_distances[entry.vertex] != entry.distance) continue;  // stale
    frontier.push_back(entry.vertex);
    ++result.pulled;
  }
  total_entries_ -= consumed;

  if (consumed == front.entries.size()) {
    result.exhausted = true;
    front.entries.clear();
    if (partitions_.size() > 1) {
      lower_bound_ = front.upper_bound;
      partitions_.erase(partitions_.begin());
    }
  } else {
    front.entries.erase(front.entries.begin(),
                        front.entries.begin() +
                            static_cast<std::ptrdiff_t>(consumed));
  }
  if (obs::metrics_enabled()) {
    FarQueueMetrics& m = FarQueueMetrics::get();
    m.scanned.add(result.scanned);
    m.pulled.add(result.pulled);
    m.partitions.set(static_cast<double>(partitions_.size()));
  }
  return result;
}

std::uint64_t PartitionedFarQueue::update_boundary(double set_point,
                                                   double alpha) {
  if (set_point <= 0.0 || alpha <= 0.0)
    throw std::invalid_argument(
        "PartitionedFarQueue: set_point and alpha must be positive");
  drop_empty_front();

  const double width = set_point / alpha;
  // Keep at least one unit of width so the partition stays non-empty-able.
  const double target_f =
      static_cast<double>(lower_bound_) + std::max(1.0, width);
  // 9e18 guards the llround against overflow (LLONG_MAX ~ 9.2e18).
  const Distance target = target_f >= 9e18
                              ? kInfiniteDistance
                              : static_cast<Distance>(std::llround(target_f));

  if (target >= partitions_.front().upper_bound) return 0;  // monotone

  // Tightening the last remaining (MAX-bounded) partition spawns a fresh
  // MAX partition to receive the displaced tail (Section 4.6's append
  // rule). push_back may reallocate, so take references only afterwards.
  if (partitions_.size() == 1) partitions_.push_back({kInfiniteDistance, {}});

  Partition& current = partitions_.front();
  Partition& next = partitions_[1];
  std::uint64_t moved = 0;
  std::size_t keep = 0;
  for (const frontier::FarEntry& entry : current.entries) {
    if (entry.distance > target) {
      next.entries.push_back(entry);
      ++moved;
    } else {
      current.entries[keep++] = entry;
    }
  }
  current.entries.resize(keep);
  current.upper_bound = target;
  // Injected fault: a boundary write that breaks the Eq. 7 ordering
  // (current bound raised to/above the next partition's). The invariant
  // auditor's A2 check is the intended detector.
  if (SSSP_FAILPOINT("far.boundary.corrupt"))
    current.upper_bound = next.upper_bound;
  if (obs::metrics_enabled()) {
    FarQueueMetrics& m = FarQueueMetrics::get();
    m.boundary_updates.add();
    m.boundary_moved.add(moved);
    m.partitions.set(static_cast<double>(partitions_.size()));
  }
  return moved;
}

std::size_t PartitionedFarQueue::current_partition_size() const {
  return partitions_.front().entries.size();
}

Distance PartitionedFarQueue::current_partition_bound() const {
  return partitions_.front().upper_bound;
}

Distance PartitionedFarQueue::min_live_distance(
    std::span<const Distance> current_distances) const {
  for (const Partition& partition : partitions_) {
    Distance best = kInfiniteDistance;
    for (const frontier::FarEntry& entry : partition.entries) {
      if (current_distances[entry.vertex] != entry.distance) continue;
      best = std::min(best, entry.distance);
    }
    if (best != kInfiniteDistance) return best;
  }
  return kInfiniteDistance;
}

void PartitionedFarQueue::clear() {
  for (Partition& partition : partitions_) partition.entries.clear();
  total_entries_ = 0;
  drop_empty_front();
}

PartitionedFarQueue::State PartitionedFarQueue::state() const {
  State state;
  state.lower_bound = lower_bound_;
  state.bounds.reserve(partitions_.size());
  state.entries.reserve(partitions_.size());
  for (const Partition& partition : partitions_) {
    state.bounds.push_back(partition.upper_bound);
    state.entries.push_back(partition.entries);
  }
  return state;
}

void PartitionedFarQueue::restore(State&& state) {
  if (state.bounds.empty() || state.bounds.size() != state.entries.size())
    throw std::invalid_argument(
        "PartitionedFarQueue: rejected restore state (shape mismatch)");
  std::vector<Partition> partitions;
  partitions.reserve(state.bounds.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < state.bounds.size(); ++i) {
    total += state.entries[i].size();
    partitions.push_back({state.bounds[i], std::move(state.entries[i])});
  }
  partitions_ = std::move(partitions);
  lower_bound_ = state.lower_bound;
  total_entries_ = total;
  try {
    check_invariants();
  } catch (const std::logic_error& e) {
    throw std::invalid_argument(
        std::string("PartitionedFarQueue: rejected restore state (") +
        e.what() + ")");
  }
}

void PartitionedFarQueue::check_invariants() const {
  if (partitions_.empty())
    throw std::logic_error("PartitionedFarQueue: no partitions");
  if (partitions_.back().upper_bound != kInfiniteDistance)
    throw std::logic_error("PartitionedFarQueue: last bound must be MAX");
  Distance prev = lower_bound_;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Partition& partition = partitions_[i];
    if (i > 0 && partition.upper_bound <= prev)
      throw std::logic_error("PartitionedFarQueue: bounds not increasing");
    for (const frontier::FarEntry& entry : partition.entries) {
      if (entry.distance > partition.upper_bound)
        throw std::logic_error(
            "PartitionedFarQueue: entry above its partition bound");
    }
    counted += partition.entries.size();
    prev = partition.upper_bound;
  }
  if (counted != total_entries_)
    throw std::logic_error("PartitionedFarQueue: size accounting mismatch");
}

}  // namespace sssp::core
