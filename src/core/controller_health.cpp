#include "core/controller_health.hpp"

#include <cmath>

namespace sssp::core {

HealthEvent ControllerHealth::degrade() {
  state_ = ControlState::kDegraded;
  ++degradations_;
  reject_streak_ = 0;
  pin_streak_ = 0;
  oscillation_streak_ = 0;
  healthy_streak_ = 0;
  last_step_sign_ = 0;
  return HealthEvent::kDegraded;
}

HealthEvent ControllerHealth::record_rejected_input() {
  ++rejected_inputs_;
  healthy_streak_ = 0;  // a degraded controller's probation restarts
  if (state_ == ControlState::kDegraded) return HealthEvent::kNone;
  if (++reject_streak_ >= config_.reject_limit) return degrade();
  return HealthEvent::kNone;
}

HealthEvent ControllerHealth::record_plan(bool at_bound, double step,
                                          double relative_step,
                                          bool model_state_finite) {
  if (state_ == ControlState::kDegraded) {
    // Probation: consecutive well-formed plans readmit the adaptive
    // controller (rejected inputs reset the streak elsewhere).
    if (++healthy_streak_ >= config_.probation) {
      state_ = ControlState::kAdaptive;
      ++recoveries_;
      healthy_streak_ = 0;
      return HealthEvent::kRecovered;
    }
    return HealthEvent::kNone;
  }

  reject_streak_ = 0;

  // A NaN/Inf model estimate is beyond repair by streak heuristics.
  if (!model_state_finite) return degrade();

  pin_streak_ = at_bound ? pin_streak_ + 1 : 0;
  if (pin_streak_ >= config_.pin_limit) return degrade();

  // Oscillation: alternating-sign steps of at least the delta's own
  // magnitude. Ordinary tracking (small corrections inside the clamp)
  // never sustains this; a diverging alpha estimate does.
  const int sign = step > 0.0 ? 1 : step < 0.0 ? -1 : 0;
  const bool large = std::abs(relative_step) >= 1.0;
  if (sign != 0 && large && sign == -last_step_sign_) {
    if (++oscillation_streak_ >= config_.oscillation_limit) return degrade();
  } else {
    // Any hold, small correction, or same-direction move breaks the
    // alternating pattern.
    oscillation_streak_ = 0;
  }
  if (sign != 0) last_step_sign_ = sign;

  return HealthEvent::kNone;
}

}  // namespace sssp::core
