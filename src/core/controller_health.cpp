#include "core/controller_health.hpp"

#include <cmath>
#include <stdexcept>

namespace sssp::core {

ControllerHealth::State ControllerHealth::save_state() const noexcept {
  return {static_cast<std::uint8_t>(state_),
          degradations_,
          recoveries_,
          rejected_inputs_,
          model_resets_,
          reject_streak_,
          pin_streak_,
          oscillation_streak_,
          healthy_streak_,
          last_step_sign_};
}

void ControllerHealth::restore(const State& state) {
  if (state.control_state > static_cast<std::uint8_t>(ControlState::kDegraded))
    throw std::invalid_argument(
        "ControllerHealth: rejected restore state (unknown control state)");
  if (state.last_step_sign < -1 || state.last_step_sign > 1)
    throw std::invalid_argument(
        "ControllerHealth: rejected restore state (step sign out of range)");
  state_ = static_cast<ControlState>(state.control_state);
  degradations_ = state.degradations;
  recoveries_ = state.recoveries;
  rejected_inputs_ = state.rejected_inputs;
  model_resets_ = state.model_resets;
  reject_streak_ = state.reject_streak;
  pin_streak_ = state.pin_streak;
  oscillation_streak_ = state.oscillation_streak;
  healthy_streak_ = state.healthy_streak;
  last_step_sign_ = state.last_step_sign;
}

HealthEvent ControllerHealth::degrade() {
  state_ = ControlState::kDegraded;
  ++degradations_;
  reject_streak_ = 0;
  pin_streak_ = 0;
  oscillation_streak_ = 0;
  healthy_streak_ = 0;
  last_step_sign_ = 0;
  return HealthEvent::kDegraded;
}

HealthEvent ControllerHealth::record_rejected_input() {
  ++rejected_inputs_;
  healthy_streak_ = 0;  // a degraded controller's probation restarts
  if (state_ == ControlState::kDegraded) return HealthEvent::kNone;
  if (++reject_streak_ >= config_.reject_limit) return degrade();
  return HealthEvent::kNone;
}

HealthEvent ControllerHealth::record_external_fault() {
  healthy_streak_ = 0;
  if (state_ == ControlState::kDegraded) return HealthEvent::kNone;
  return degrade();
}

HealthEvent ControllerHealth::record_plan(bool at_bound, double step,
                                          double relative_step,
                                          bool model_state_finite) {
  if (state_ == ControlState::kDegraded) {
    // Probation: consecutive well-formed plans readmit the adaptive
    // controller (rejected inputs reset the streak elsewhere).
    if (++healthy_streak_ >= config_.probation) {
      state_ = ControlState::kAdaptive;
      ++recoveries_;
      healthy_streak_ = 0;
      return HealthEvent::kRecovered;
    }
    return HealthEvent::kNone;
  }

  reject_streak_ = 0;

  // A NaN/Inf model estimate is beyond repair by streak heuristics.
  if (!model_state_finite) return degrade();

  pin_streak_ = at_bound ? pin_streak_ + 1 : 0;
  if (pin_streak_ >= config_.pin_limit) return degrade();

  // Oscillation: alternating-sign steps of at least the delta's own
  // magnitude. Ordinary tracking (small corrections inside the clamp)
  // never sustains this; a diverging alpha estimate does.
  const int sign = step > 0.0 ? 1 : step < 0.0 ? -1 : 0;
  const bool large = std::abs(relative_step) >= 1.0;
  if (sign != 0 && large && sign == -last_step_sign_) {
    if (++oscillation_streak_ >= config_.oscillation_limit) return degrade();
  } else {
    // Any hold, small correction, or same-direction move breaks the
    // alternating pattern.
    oscillation_streak_ = 0;
  }
  if (sign != 0) last_step_sign_ = sign;

  return HealthEvent::kNone;
}

}  // namespace sssp::core
