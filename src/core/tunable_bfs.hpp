// Controller generalization #1 (paper Section 6: "many of the other
// graph computations have a similar structure ... our controller might
// be adapted"): breadth-first search with self-tuned parallelism.
//
// BFS is SSSP with unit weights: the near-far delta becomes a depth
// window on the hop metric (KLA's k [21], tuned per iteration). Note
// the control is one-sided for BFS — discovery is inherently one level
// per advance, so the knob cannot create parallelism beyond a level's
// natural width; what it does is *cap* wide levels by postponing part
// of a level to later iterations (the burst-limiting half of the
// paper's mechanism, which is the half that matters for power).
#pragma once

#include <cstdint>
#include <vector>

#include "core/self_tuning.hpp"
#include "graph/csr.hpp"

namespace sssp::core {

struct TunableBfsOptions {
  double set_point = 0.0;  // required, > 0
  std::size_t max_iterations = 0;
};

struct TunableBfsResult {
  // Hop count per vertex; kInfiniteDistance when unreachable.
  std::vector<graph::Distance> levels;
  std::vector<frontier::IterationStats> iterations;
  double average_parallelism = 0.0;
};

// Self-tuning BFS. Levels are exact (property-tested against the plain
// level-synchronous reference below).
TunableBfsResult tunable_bfs(const graph::CsrGraph& graph,
                             graph::VertexId source,
                             const TunableBfsOptions& options);

// Reference: plain level-synchronous BFS (one level per iteration).
std::vector<graph::Distance> bfs_levels(const graph::CsrGraph& graph,
                                        graph::VertexId source);

}  // namespace sssp::core
