#include "core/adaptive_sgd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"

namespace sssp::core {

AdaptiveSgd::AdaptiveSgd(const AdaptiveSgdOptions& options)
    : options_(options),
      theta_(options.initial_parameter),
      v_bar_(options.epsilon),
      tau_((1.0 + options.epsilon) * 2.0) {
  if (options.epsilon <= 0.0)
    throw std::invalid_argument("AdaptiveSgd: epsilon must be positive");
  if (options.min_parameter > options.max_parameter)
    throw std::invalid_argument("AdaptiveSgd: min_parameter > max_parameter");
  if (!options.adaptive && options.fixed_learning_rate <= 0.0)
    throw std::invalid_argument(
        "AdaptiveSgd: fixed_learning_rate must be positive");
  set_parameter(theta_);
}

void AdaptiveSgd::set_parameter(double theta) noexcept {
  theta_ = std::clamp(theta, options_.min_parameter, options_.max_parameter);
}

AdaptiveSgd::State AdaptiveSgd::state() const noexcept {
  return {theta_, g_bar_, v_bar_, h_bar_, tau_, mu_, updates_, rejected_};
}

void AdaptiveSgd::restore(const State& state) {
  // Same firewall policy as update(): a state that could not have been
  // produced by this model (non-finite EMAs, theta outside the clamp,
  // impossible tau/variance) is rejected and counted, never installed.
  const bool well_formed =
      std::isfinite(state.theta) && std::isfinite(state.g_bar) &&
      std::isfinite(state.v_bar) && std::isfinite(state.h_bar) &&
      std::isfinite(state.tau) && std::isfinite(state.mu) &&
      state.theta >= options_.min_parameter &&
      state.theta <= options_.max_parameter && state.v_bar > 0.0 &&
      state.h_bar > 0.0 && state.tau >= 1.0 && state.mu >= 0.0;
  if (!well_formed) {
    ++rejected_;
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global()
          .counter("sgd.rejected_observations")
          .add();
    throw std::invalid_argument(
        "AdaptiveSgd: rejected restore state (non-finite or out-of-range "
        "field)");
  }
  theta_ = state.theta;
  g_bar_ = state.g_bar;
  v_bar_ = state.v_bar;
  h_bar_ = state.h_bar;
  tau_ = state.tau;
  mu_ = state.mu;
  updates_ = state.updates;
  rejected_ = state.rejected;
}

double AdaptiveSgd::update(double x, double y) {
  // Injected fault: a poisoned observation, as a glitched stats pipeline
  // or corrupted engine counter would produce.
  if (SSSP_FAILPOINT("sgd.observe.nan"))
    y = std::numeric_limits<double>::quiet_NaN();
  if (!std::isfinite(x) || !std::isfinite(y)) {
    ++rejected_;
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global()
          .counter("sgd.rejected_observations")
          .add();
    return theta_;  // keep theta and the EMA state untouched
  }
  if (x == 0.0) return theta_;  // no gradient information
  ++updates_;

  const double residual = y - theta_ * x;
  const double grad = -2.0 * residual * x;   // line 1
  const double grad2 = 2.0 * x * x;          // line 2

  if (!options_.adaptive) {
    // Normalize by curvature so the fixed rate is scale-free in x.
    set_parameter(theta_ - options_.fixed_learning_rate * grad / grad2);
    return theta_;
  }

  const double w = 1.0 / tau_;
  g_bar_ = (1.0 - w) * g_bar_ + w * grad;           // line 3
  v_bar_ = (1.0 - w) * v_bar_ + w * grad * grad;    // line 4
  h_bar_ = (1.0 - w) * h_bar_ + w * grad2;          // line 5

  const double g_sq = g_bar_ * g_bar_;
  const double denom = h_bar_ * v_bar_;
  // Guard: before the EMAs warm up, denom can underflow to ~0; skip the
  // parameter move but keep the EMA state.
  if (denom > 0.0 && std::isfinite(denom)) {
    mu_ = g_sq / denom;                             // line 6
  } else {
    mu_ = 0.0;
  }

  // line 7 — adapt memory: a consistent gradient direction (g^2 ~ v)
  // shortens memory, noise lengthens it. Clamped to >= 1.
  const double ratio = v_bar_ > 0.0 ? std::clamp(g_sq / v_bar_, 0.0, 1.0) : 0.0;
  tau_ = std::max(1.0, (1.0 - ratio) * tau_ + 1.0);

  set_parameter(theta_ - mu_ * grad);               // line 8
  return theta_;
}

}  // namespace sssp::core
