// Controller generalization #2: push-based ("residual") PageRank with a
// tunable activation threshold.
//
// The push formulation keeps a residual r[v] per vertex; vertices whose
// residual exceeds a threshold epsilon form the frontier, absorb their
// residual into their rank, and push damping * r[v] / out_degree(v) to
// their neighbors. Epsilon plays the role delta plays in near-far:
// lowering it admits more vertices per iteration (more parallelism),
// raising it postpones low-residual work. A multiplicative feedback loop
// on epsilon holds the per-iteration edge work (X2) at the set-point P —
// the same algorithmic-knob idea applied to a node-ranking primitive,
// exactly the extension the paper's conclusion proposes.
//
// Convergence: the algorithm terminates when every residual falls below
// `tolerance`; the resulting ranks match power iteration to within
// O(tolerance) in L1 (property-tested).
#pragma once

#include <cstdint>
#include <vector>

#include "frontier/stats.hpp"
#include "graph/csr.hpp"

namespace sssp::core {

struct TunablePageRankOptions {
  double damping = 0.85;
  // Residual convergence threshold (the floor below which work is never
  // admitted, so the run terminates).
  double tolerance = 1e-6;
  // Parallelism set-point on per-iteration edge work; 0 disables the
  // controller (plain epsilon = tolerance sweep, maximum parallelism).
  double set_point = 0.0;
  // Feedback gain of the multiplicative epsilon controller.
  double gain = 0.5;
  std::size_t max_iterations = 0;
};

struct TunablePageRankResult {
  std::vector<double> ranks;  // sums to ~1 over all vertices
  std::vector<frontier::IterationStats> iterations;
  double average_parallelism = 0.0;
  bool converged = false;
};

TunablePageRankResult tunable_pagerank(const graph::CsrGraph& graph,
                                       const TunablePageRankOptions& options);

// Reference: dense power iteration (for property tests).
std::vector<double> pagerank_power_iteration(const graph::CsrGraph& graph,
                                             double damping,
                                             std::size_t iterations);

}  // namespace sssp::core
