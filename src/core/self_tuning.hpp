// SelfTuningSssp — the paper's contribution end-to-end (Section 4): the
// near-far pipeline driven by the DeltaController, with the baseline
// bisect-far-queue stage replaced by the rebalancer over a partitioned
// far queue.
//
// Per iteration k:
//   1. advance + filter            (engine)        -> X1, X2, X3
//   2. controller.observe_advance  (train models)
//   3. bisect at delta_k           (engine)        -> X4, spill -> far
//   4. delta_{k+1} = plan_delta    (Eq. 6)
//      rebalance:
//        delta up   -> pull far partitions below delta_{k+1} into frontier
//        delta down -> demote frontier vertices >= delta_{k+1} to far
//      boundary maintenance        (Eq. 7)
//   5. forced progress: if the frontier is empty but live far work
//      remains, jump delta past the nearest live distance (the
//      controller is told via force_delta so the models stay honest).
//
// Controller compute is wall-clock timed and charged to the run (the
// paper reports 50-200 us per second of runtime; EXPERIMENTS.md
// compares).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "core/partitioned_far_queue.hpp"
#include "frontier/engine.hpp"
#include "frontier/stats.hpp"
#include "graph/csr.hpp"
#include "sssp/result.hpp"
#include "util/run_control.hpp"

namespace sssp::core {

struct SelfTuningOptions {
  // The parallelism set-point P (required, > 0).
  double set_point = 0.0;
  // 0 seeds delta with the graph's mean edge weight.
  double initial_delta = 0.0;
  // Safety valve (0 = unlimited).
  std::size_t max_iterations = 0;
  // Measure controller wall-clock and charge it to the workload. Off
  // gives bit-deterministic workloads for golden tests.
  bool measure_controller_time = true;
  // Relax large frontiers on the host thread pool. The parallel
  // pipeline is deterministic — frontier ordering, X1/X2/X3, parents,
  // and distances are bit-identical at any thread count (see
  // frontier::NearFarEngine::Options::parallel) — so this is on by
  // default; recorded workloads do not depend on the machine.
  bool parallel_advance = true;
  // Frontiers below this size relax serially (fork/join overhead
  // dominates the work).
  std::size_t parallel_threshold = 4096;
  // --- ablation knobs (DESIGN.md Section 6) ---
  bool adaptive_learning_rate = true;  // Algorithm 1 vs fixed-rate SGD
  bool rebalance_down = true;          // allow demoting when delta shrinks
  bool partition_boundaries = true;    // Eq. 7 maintenance on/off
  std::uint64_t bootstrap_observations = 5;
  // --- online invariant auditing (docs/ROBUSTNESS.md) ---
  // Run the verify-layer invariant audit (A1-A4: frontier accounting,
  // Eq. 7 boundary ordering, distance no-regression probes, finite
  // controller state) every N iterations; 0 disables. Each audit is
  // O(probes + partitions), so N = 1 stays well under 2% overhead on
  // non-trivial graphs. Like `control`, this is a host-side knob: it is
  // not serialized into checkpoints, and a resumed run restarts its
  // audit counters.
  std::uint64_t audit_every = 0;
  // On a tripped invariant: false (default) quarantines the controller
  // into the degraded static-delta policy and keeps running; true
  // throws verify::AuditViolation at the iteration boundary (the
  // checkpoint layer persists state before unwinding).
  bool audit_abort = false;
  // Cooperative cancellation, threaded into the engine: deadline /
  // signal / stall requests abort the run mid-iteration with
  // util::StopRequested. Not owned; must outlive the run. Not part of
  // checkpointed state.
  util::RunControl* control = nullptr;
};

// Runs self-tuning SSSP; distances are exact (verified by property
// tests against Dijkstra for arbitrary set-points).
algo::SsspResult self_tuning_sssp(const graph::CsrGraph& graph,
                                  graph::VertexId source,
                                  const SelfTuningOptions& options);

// Stepper form of the same algorithm, for callers that interleave their
// own control between iterations (e.g. the power-feedback loop in
// power_feedback.hpp adjusts the set-point from observed watts). The
// free function above is `while (run.step()) {}` over this class.
class SelfTuningRun {
 public:
  // Complete resumable run state at an iteration boundary: engine
  // arrays, far-queue partitions (boundaries included), controller
  // (both SGD models + health monitor), and the iteration history so a
  // resumed run's result is indistinguishable from an uninterrupted
  // one. Serialized by ckpt::serialize_checkpoint.
  struct Snapshot {
    graph::VertexId source = 0;
    frontier::NearFarEngine::State engine;
    PartitionedFarQueue::State far;
    DeltaController::State controller;
    std::vector<frontier::IterationStats> iterations;
    double controller_seconds = 0.0;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  // graph must outlive the run. Throws std::invalid_argument on a bad
  // source or non-positive set-point.
  SelfTuningRun(const graph::CsrGraph& graph, graph::VertexId source,
                const SelfTuningOptions& options);
  // Resume construction: rebuilds a run mid-flight from a Snapshot taken
  // at an iteration boundary. `options` must equal the original run's
  // options (the checkpoint layer stores and replays them); the snapshot
  // is validated against the graph (sizes, vertex ranges, queue
  // invariants, model firewalls) and any violation throws
  // std::invalid_argument before the run becomes steppable.
  SelfTuningRun(const graph::CsrGraph& graph, const SelfTuningOptions& options,
                Snapshot&& snapshot);
  ~SelfTuningRun();

  SelfTuningRun(const SelfTuningRun&) = delete;
  SelfTuningRun& operator=(const SelfTuningRun&) = delete;

  // Executes one pipeline iteration; returns false when the run is done
  // (nothing was executed). Iteration stats accumulate in result().
  bool step();
  bool done() const;

  // Retargets the controller mid-run (the power-feedback knob). The new
  // set-point takes effect from the next iteration.
  void set_set_point(double set_point);
  double set_point() const;

  // Live controller/engine state (diagnostics and feedback inputs).
  const DeltaController& controller() const;
  const frontier::IterationStats& last_iteration() const;

  // Iterations executed so far (restored history included on resume).
  std::size_t iterations_completed() const;
  // Monotone total-work counter, the stall watchdog's progress signal.
  std::uint64_t total_improving_relaxations() const;

  // Captures the complete resumable state. Only valid at an iteration
  // boundary (between step() calls) — a run abandoned mid-step via
  // StopRequested must not be snapshotted.
  Snapshot snapshot() const;

  // Finalizes and returns the result (distances + iteration trace).
  // The run must not be stepped afterwards.
  algo::SsspResult take_result();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sssp::core
