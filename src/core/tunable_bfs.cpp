#include "core/tunable_bfs.hpp"

#include <stdexcept>

namespace sssp::core {

TunableBfsResult tunable_bfs(const graph::CsrGraph& graph,
                             graph::VertexId source,
                             const TunableBfsOptions& options) {
  if (options.set_point <= 0.0)
    throw std::invalid_argument("tunable_bfs: set_point must be > 0");

  // Unit-weight view: same topology, hop metric.
  graph::CsrGraph unit(
      {graph.offsets().begin(), graph.offsets().end()},
      {graph.targets().begin(), graph.targets().end()},
      std::vector<graph::Weight>(graph.num_edges(), 1));

  SelfTuningOptions tuning;
  tuning.set_point = options.set_point;
  tuning.max_iterations = options.max_iterations;
  tuning.initial_delta = 1.0;  // start level-synchronous, let it adapt
  algo::SsspResult run = self_tuning_sssp(unit, source, tuning);

  TunableBfsResult result;
  result.levels = std::move(run.distances);
  result.iterations = std::move(run.iterations);
  double sum = 0.0;
  for (const auto& it : result.iterations)
    sum += static_cast<double>(it.x2);
  result.average_parallelism =
      result.iterations.empty()
          ? 0.0
          : sum / static_cast<double>(result.iterations.size());
  return result;
}

std::vector<graph::Distance> bfs_levels(const graph::CsrGraph& graph,
                                        graph::VertexId source) {
  if (source >= graph.num_vertices())
    throw std::invalid_argument("bfs_levels: source out of range");
  std::vector<graph::Distance> level(graph.num_vertices(),
                                     graph::kInfiniteDistance);
  std::vector<graph::VertexId> frontier{source};
  std::vector<graph::VertexId> next;
  level[source] = 0;
  graph::Distance depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const graph::VertexId u : frontier) {
      for (const graph::VertexId v : graph.neighbors(u)) {
        if (level[v] == graph::kInfiniteDistance) {
          level[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

}  // namespace sssp::core
