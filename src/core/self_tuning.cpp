#include "core/self_tuning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/partitioned_far_queue.hpp"
#include "fault/failpoint.hpp"
#include "frontier/engine.hpp"
#include "obs/metrics.hpp"
#include "prof/profiler.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "verify/auditor.hpp"
#include "verify/flight_recorder.hpp"

namespace sssp::core {
namespace {

using graph::Distance;
using graph::kInfiniteDistance;
using graph::VertexId;

Distance to_threshold(double delta) {
  if (delta >= 9e18) return kInfiniteDistance;
  return static_cast<Distance>(std::max(1.0, std::ceil(delta)));
}

struct SelfTuningMetrics {
  obs::Counter& iterations;
  obs::Histogram& controller_seconds;
  obs::Histogram& x2;

  static SelfTuningMetrics& get() {
    static SelfTuningMetrics m{
        obs::MetricsRegistry::global().counter("self_tuning.iterations"),
        obs::MetricsRegistry::global().histogram(
            "controller.seconds_per_iteration"),
        obs::MetricsRegistry::global().histogram("self_tuning.x2")};
    return m;
  }
};

// Per-iteration counter tracks in Perfetto (the paper's Figures 1-3
// signals: X1-X4, delta, and the two model estimates).
void emit_counter_tracks(const frontier::IterationStats& stats) {
  obs::Tracer& tracer = obs::Tracer::global();
  const double ts = tracer.now_us();
  tracer.counter("X1", ts, static_cast<double>(stats.x1));
  tracer.counter("X2", ts, static_cast<double>(stats.x2));
  tracer.counter("X3", ts, static_cast<double>(stats.x3));
  tracer.counter("X4", ts, static_cast<double>(stats.x4));
  tracer.counter("delta", ts, stats.delta);
  tracer.counter("degree_estimate", ts, stats.degree_estimate);
  tracer.counter("alpha_estimate", ts, stats.alpha_estimate);
  tracer.counter("far_queue_size", ts,
                 static_cast<double>(stats.far_queue_size));
}

}  // namespace

struct SelfTuningRun::Impl {
  Impl(const graph::CsrGraph& graph, VertexId source,
       const SelfTuningOptions& opts)
      : options(opts),
        graph_(&graph),
        controller(make_controller_config(graph, opts)),
        engine(graph, source,
               frontier::NearFarEngine::Options{
                   .parallel = opts.parallel_advance,
                   .parallel_threshold = opts.parallel_threshold,
                   .control = opts.control}),
        far(static_cast<Distance>(
            std::max(1.0, std::round(std::max(1.0, graph.mean_edge_weight()))))) {
    result.algorithm = "self-tuning";
    result.source = source;
  }

  static ControllerConfig make_controller_config(
      const graph::CsrGraph& graph, const SelfTuningOptions& options) {
    if (options.set_point <= 0.0)
      throw std::invalid_argument("self_tuning_sssp: set_point must be > 0");
    const double mean_weight = std::max(1.0, graph.mean_edge_weight());
    const double mean_degree =
        graph.num_vertices() > 0
            ? std::max(1.0, static_cast<double>(graph.num_edges()) /
                                static_cast<double>(graph.num_vertices()))
            : 1.0;
    ControllerConfig config;
    config.set_point = options.set_point;
    config.initial_delta =
        options.initial_delta > 0.0 ? options.initial_delta : mean_weight;
    config.adaptive_learning_rate = options.adaptive_learning_rate;
    config.bootstrap_observations = options.bootstrap_observations;
    config.initial_degree = mean_degree;
    // Degraded-mode bucket width: the classic delta-stepping choice.
    config.fallback_delta = mean_weight;
    return config;
  }

  bool done() const {
    return engine.frontier_empty() ||
           (options.max_iterations &&
            result.iterations.size() >= options.max_iterations);
  }

  bool step();
  void run_audit(const frontier::IterationStats& stats);
  void finalize() {
    result.improving_relaxations = engine.total_improving_relaxations();
    result.controller_degradations = controller.health().degradations();
    result.controller_recoveries = controller.health().recoveries();
    result.controller_rejected_inputs = controller.health().rejected_inputs();
    result.audits_run = auditor.audits_run();
    result.audit_violations = auditor.violations();
    result.distances = engine.distances();
    // The engine maintains parents deterministically in both serial and
    // parallel advances; no re-derivation pass is needed.
    result.parents = engine.parents();
  }

  SelfTuningOptions options;
  const graph::CsrGraph* graph_ = nullptr;
  DeltaController controller;
  frontier::NearFarEngine engine;
  PartitionedFarQueue far;
  algo::SsspResult result;
  std::vector<VertexId> refill;
  util::WallTimer controller_timer;
  verify::InvariantAuditor auditor;
  std::vector<Distance> audit_bounds;
  bool flight_degraded_seen = false;
};

// Feeds one completed iteration's observable state to the invariant
// auditor. A trip either aborts (audit_abort) or quarantines the
// adaptive controller — distances stay exact in both outcomes; only
// tracking quality is surrendered in the second.
void SelfTuningRun::Impl::run_audit(const frontier::IterationStats& stats) {
  verify::IterationAudit audit;
  audit.iteration = result.iterations.size() - 1;  // just pushed
  audit.delta = stats.delta;
  audit.x1 = stats.x1;
  audit.x2 = stats.x2;
  audit.x3 = stats.x3;
  audit.x4 = stats.x4;
  audit.improving_relaxations = stats.improving_relaxations;
  audit.far_size = far.size();
  audit.degree_estimate = stats.degree_estimate;
  audit.alpha_estimate = stats.alpha_estimate;
  far.boundary_snapshot(audit_bounds);
  audit.far_bounds = audit_bounds;
  audit.far_floor = far.current_lower_bound();
  audit.distances = engine.distances();
  if (auditor.audit(audit) == 0) return;

  const std::string detail =
      auditor.findings().empty()
          ? std::string("(details capped)")
          : std::string(verify::to_string(auditor.findings().back().check)) +
                ": " + auditor.findings().back().detail;
  if (options.audit_abort) {
    SSSP_LOG(kError) << "invariant audit tripped at iteration "
                     << audit.iteration << " (" << detail << "); aborting";
    throw verify::AuditViolation(audit.iteration, detail);
  }
  SSSP_LOG(kWarn) << "invariant audit tripped at iteration "
                  << audit.iteration << " (" << detail
                  << "); quarantining the adaptive controller";
  controller.quarantine();
}

bool SelfTuningRun::Impl::step() {
  if (done()) return false;

  SSSP_TRACE_SPAN("iteration");
  SSSP_PROF_PHASE("iteration");
  frontier::IterationStats stats;
  stats.delta = controller.delta();
  double controller_seconds = 0.0;

  // --- stages 1+2: advance + filter (device work) ---
  // The engine emits the "advance" and "filter" spans itself.
  const auto advance = engine.advance_and_filter();
  stats.x1 = advance.x1;
  stats.x2 = advance.x2;
  stats.x3 = advance.x3;
  stats.improving_relaxations = advance.improving_relaxations;

  // --- controller phase A (host work) ---
  {
    SSSP_TRACE_SPAN("controller");
    SSSP_PROF_PHASE("controller");
    controller_timer.reset();
    // Injected fault: a corrupted engine counter reaching the
    // ADVANCE-MODEL. The model rejects non-finite observations.
    double x1_obs = static_cast<double>(advance.x1);
    if (SSSP_FAILPOINT("controller.observe.nan"))
      x1_obs = std::numeric_limits<double>::quiet_NaN();
    controller.observe_advance(x1_obs, static_cast<double>(advance.x2));
    controller_seconds += controller_timer.elapsed_seconds();
  }

  // --- stage 3: bisect at delta_k (device work) ---
  const Distance threshold_k = to_threshold(controller.delta());
  stats.x4 = engine.bisect(threshold_k);
  {
    SSSP_TRACE_SPAN("rebalance");
    SSSP_PROF_PHASE("far_spill");
    far.push_bulk(engine.spill(), engine.distances());
    engine.clear_spill();
  }

  // --- controller phase B: plan delta_{k+1} (host work) ---
  double new_delta = 0.0;
  {
    SSSP_TRACE_SPAN("controller");
    SSSP_PROF_PHASE("controller");
    controller_timer.reset();
    // Injected faults: corrupted X4 / far-queue statistics reaching the
    // planner. The controller's input firewall suppresses the plan and
    // the health monitor degrades on a sustained streak.
    double x4_in = static_cast<double>(stats.x4);
    if (SSSP_FAILPOINT("controller.x4.nan"))
      x4_in = std::numeric_limits<double>::quiet_NaN();
    double far_total = static_cast<double>(far.size());
    if (SSSP_FAILPOINT("controller.far.nan"))
      far_total = std::numeric_limits<double>::infinity();
    new_delta = controller.plan_delta(
        x4_in, far_total,
        static_cast<double>(far.current_partition_size()),
        static_cast<double>(std::min<Distance>(far.current_partition_bound(),
                                               Distance{1} << 60)));
    controller_seconds += controller_timer.elapsed_seconds();
  }

  Distance threshold_next = to_threshold(new_delta);
  Distance reached = threshold_next;
  {
  SSSP_TRACE_SPAN("rebalance");
  SSSP_PROF_PHASE("rebalance");
  // Boundary maintenance moves entries between partitions: that is
  // device-side rebalance work (charged via rebalance_items), not host
  // controller compute.
  if (options.partition_boundaries && !far.empty()) {
    stats.rebalance_items += far.update_boundary(
        controller.target_frontier_size(), controller.last_alpha());
  }

  // --- stage 4: rebalancer (device work) ---
  // Upward delta moves are realized by the count-limited top-up below
  // (partitions are pulled in distance order up to the target), so a
  // planned increase needs no separate whole-range pull — that would
  // re-admit unbounded distance-tied cohorts past the set-point.
  if (threshold_next < threshold_k && options.rebalance_down) {
    // Demoted vertices may lie below boundaries the queue has already
    // consumed; lower the floor so Eq. 7 can subdivide that range.
    far.lower_floor(threshold_next);
    stats.rebalance_items += engine.demote(threshold_next);
    far.push_bulk(engine.spill(), engine.distances());
    engine.clear_spill();
  } else if (threshold_next <= threshold_k) {
    threshold_next = threshold_k;
  }

  // Tie-breaking demotion: when a distance-tied cohort (e.g. one BFS
  // level) blows the frontier far past the target, no distance
  // threshold can trim it — spill the surplus by count instead. The
  // spilled vertices re-enter through later top-ups. The 2x trigger
  // leaves ordinary wavefront overshoot (which Eq. 6 handles by
  // distance) alone and fires only on genuine tie bursts.
  if (options.rebalance_down) {
    const double overshoot_limit = 2.0 * controller.target_frontier_size();
    if (static_cast<double>(engine.frontier_size()) > overshoot_limit) {
      const auto keep = static_cast<std::size_t>(
          std::max(1.0, controller.target_frontier_size()));
      stats.rebalance_items += engine.demote_excess(keep);
      far.push_bulk(engine.spill(), engine.distances());
      engine.clear_spill();
    }
  }

  // Top-up: if the frontier is below the target X1 = P/d, consume far
  // partitions — each pre-sized to ~(P/d)/alpha distance units by Eq. 7 —
  // until the target is met or the queue is exhausted. This is both the
  // forced-progress guarantee (the frontier never stays dry while live
  // work remains) and the mechanism that holds X2 at the set-point.
  const double target_x1 = controller.target_frontier_size();
  // Refill to the low-water mark only; pulling all the way to the target
  // from inside the deadband would immediately trigger the demote side
  // (ping-pong).
  const double low_water = target_x1 * (1.0 - controller.deadband_ratio());
  reached = threshold_next;
  while (static_cast<double>(engine.frontier_size()) < low_water &&
         !far.empty()) {
    if (options.partition_boundaries) {
      stats.rebalance_items += far.update_boundary(
          controller.target_frontier_size(), controller.last_alpha());
      refill.clear();
      // Count-limited pull: distance ties (whole BFS levels on the hop
      // metric) can make a partition bigger than the target; admit only
      // what the set-point calls for and leave the rest postponed.
      const auto need = static_cast<std::uint64_t>(std::max(
          1.0, std::ceil(target_x1 -
                         static_cast<double>(engine.frontier_size()))));
      const auto pull =
          far.pull_front_partition(engine.distances(), refill, need);
      engine.inject(refill);
      stats.rebalance_items += pull.scanned;
      if (!pull.exhausted) break;  // partial pull: target met, delta holds
      if (pull.bound == kInfiniteDistance) {
        reached = kInfiniteDistance;
        break;
      }
      reached = std::max(reached, pull.bound + 1);
    } else {
      // Ablation: no partition structure — compute the pull threshold
      // directly and scan the whole queue (the cost the partitioning
      // exists to avoid shows up in rebalance_items).
      const Distance next_live = far.min_live_distance(engine.distances());
      stats.rebalance_items += far.size();
      if (next_live == kInfiniteDistance) {
        far.clear();
        break;
      }
      const double width =
          std::max(1.0, controller.set_point() / controller.last_alpha());
      const Distance forced =
          next_live + static_cast<Distance>(std::min(width, 9e18));
      refill.clear();
      stats.rebalance_items +=
          far.pull_below(forced, engine.distances(), refill);
      engine.inject(refill);
      reached = std::max(reached, forced);
    }
  }
  }  // rebalance span
  if (reached > threshold_next) {
    SSSP_TRACE_SPAN("controller");
    SSSP_PROF_PHASE("controller");
    if (obs::trace_enabled()) {
      obs::Tracer& tracer = obs::Tracer::global();
      tracer.instant("forced_progress", tracer.now_us());
    }
    SSSP_LOG(kDebug) << "forced progress: threshold " << threshold_next
                     << " -> " << reached;
    controller_timer.reset();
    controller.force_delta(
        reached == kInfiniteDistance ? 9e18 : static_cast<double>(reached),
        static_cast<double>(stats.x4));
    controller_seconds += controller_timer.elapsed_seconds();
  }

  // Re-anchor: any threshold above the frontier's maximum tentative
  // distance admits nothing extra by itself (admission is realized by
  // the count-limited top-up), but a runaway delta poisons the Eq. 8
  // bootstrap (alpha = X4/delta) and disarms future demotes. Keep delta
  // hugging the wavefront from above (the engine tracks the frontier
  // max inside its existing passes, so this costs no extra device
  // work).
  if (!engine.frontier_empty()) {
    const Distance snap = engine.frontier_max_distance() + 1;
    if (static_cast<double>(snap) < controller.delta()) {
      SSSP_TRACE_SPAN("controller");
      SSSP_PROF_PHASE("controller");
      controller_timer.reset();
      controller.force_delta(static_cast<double>(snap),
                             static_cast<double>(stats.x4),
                             /*inform_model=*/false);
      controller_seconds += controller_timer.elapsed_seconds();
    }
  }

  stats.far_queue_size = far.size();
  stats.degree_estimate = controller.advance_model().degree();
  stats.alpha_estimate = controller.last_alpha();
  stats.controller_degraded = controller.health().degraded();
  if (options.measure_controller_time) {
    stats.controller_seconds = controller_seconds;
    result.controller_seconds += controller_seconds;
  }
  if (obs::trace_enabled()) emit_counter_tracks(stats);
  if (obs::metrics_enabled()) {
    SelfTuningMetrics& m = SelfTuningMetrics::get();
    m.iterations.add();
    m.controller_seconds.record(controller_seconds);
    m.x2.record(static_cast<double>(stats.x2));
  }
  if (verify::flight_enabled()) {
    const std::uint64_t iteration = result.iterations.size();
    verify::record_iteration(iteration, stats.delta, stats.x1, stats.x2,
                             stats.x3, stats.x4, stats.far_queue_size);
    if (stats.controller_degraded != flight_degraded_seen) {
      flight_degraded_seen = stats.controller_degraded;
      verify::record_event(verify::FlightEventKind::kHealth, iteration,
                           stats.controller_degraded ? "degraded"
                                                     : "recovered");
    }
  }
  result.iterations.push_back(stats);
  if (prof::profiling_enabled())
    prof::Profiler::global().sample_iteration(result.iterations.size() - 1);
  // Audit at the iteration boundary: the state just pushed is exactly
  // what a checkpoint would persist, so an abort here unwinds from a
  // resumable point.
  if (options.audit_every > 0 &&
      result.iterations.size() % options.audit_every == 0)
    run_audit(stats);
  return true;
}

SelfTuningRun::SelfTuningRun(const graph::CsrGraph& graph,
                             graph::VertexId source,
                             const SelfTuningOptions& options)
    : impl_(std::make_unique<Impl>(graph, source, options)) {}

SelfTuningRun::SelfTuningRun(const graph::CsrGraph& graph,
                             const SelfTuningOptions& options,
                             Snapshot&& snapshot)
    : impl_(std::make_unique<Impl>(graph, snapshot.source, options)) {
  // Construction above built the iteration-0 state; overwrite every
  // stateful component from the snapshot. Each restore validates its
  // own inputs and throws std::invalid_argument before mutating, so a
  // corrupted snapshot can never yield a steppable run.
  impl_->engine.restore(std::move(snapshot.engine));
  impl_->far.restore(std::move(snapshot.far));
  impl_->controller.restore(snapshot.controller);
  impl_->result.iterations = std::move(snapshot.iterations);
  impl_->result.controller_seconds = snapshot.controller_seconds;
}

SelfTuningRun::~SelfTuningRun() = default;

SelfTuningRun::Snapshot SelfTuningRun::snapshot() const {
  Snapshot snapshot;
  snapshot.source = impl_->result.source;
  snapshot.engine = impl_->engine.state();
  snapshot.far = impl_->far.state();
  snapshot.controller = impl_->controller.state();
  snapshot.iterations = impl_->result.iterations;
  snapshot.controller_seconds = impl_->result.controller_seconds;
  return snapshot;
}

std::size_t SelfTuningRun::iterations_completed() const {
  return impl_->result.iterations.size();
}

std::uint64_t SelfTuningRun::total_improving_relaxations() const {
  return impl_->engine.total_improving_relaxations();
}

bool SelfTuningRun::step() { return impl_->step(); }

bool SelfTuningRun::done() const { return impl_->done(); }

void SelfTuningRun::set_set_point(double set_point) {
  impl_->controller.set_set_point(set_point);
}

double SelfTuningRun::set_point() const {
  return impl_->controller.set_point();
}

const DeltaController& SelfTuningRun::controller() const {
  return impl_->controller;
}

const frontier::IterationStats& SelfTuningRun::last_iteration() const {
  if (impl_->result.iterations.empty())
    throw std::logic_error("SelfTuningRun: no iterations executed yet");
  return impl_->result.iterations.back();
}

algo::SsspResult SelfTuningRun::take_result() {
  impl_->finalize();
  return std::move(impl_->result);
}

algo::SsspResult self_tuning_sssp(const graph::CsrGraph& graph,
                                  graph::VertexId source,
                                  const SelfTuningOptions& options) {
  SelfTuningRun run(graph, source, options);
  while (run.step()) {
  }
  return run.take_result();
}

}  // namespace sssp::core
