#include "core/advance_model.hpp"

namespace sssp::core {
namespace {

AdaptiveSgdOptions make_sgd_options(const AdvanceModel::Options& options) {
  AdaptiveSgdOptions sgd;
  sgd.initial_parameter = options.initial_degree;
  sgd.adaptive = options.adaptive;
  // Degrees live in [~0.1, ~10^5] on real graphs; clamp generously.
  sgd.min_parameter = 1e-3;
  sgd.max_parameter = 1e9;
  return sgd;
}

}  // namespace

AdvanceModel::AdvanceModel(const Options& options)
    : sgd_(make_sgd_options(options)) {}

}  // namespace sssp::core
