// Algorithm 1 of the paper: stochastic gradient descent with the
// adaptive learning rate of Schaul, Zhang & LeCun ("No More Pesky
// Learning Rates" [30]), specialized to scalar linear-through-origin
// models y ≈ theta * x.
//
// Per observation (x, y):
//   grad   = -2 (y - theta x) x            (first derivative)
//   grad2  =  2 x^2                        (second derivative)
//   g <- (1 - 1/tau) g + (1/tau) grad      (EMA of gradient)
//   v <- (1 - 1/tau) v + (1/tau) grad^2    (EMA of uncentered variance)
//   h <- (1 - 1/tau) h + (1/tau) grad2     (EMA of curvature)
//   mu  <- g^2 / (h v)                     (adaptive learning rate)
//   tau <- (1 - g^2 / v) tau + 1           (adaptive memory)
//   theta <- theta - mu grad
//
// Both the ADVANCE-MODEL (theta = d, x = X1, y = X2) and the
// BISECT-MODEL (theta = alpha, x = delta-change, y = frontier-size
// change) instantiate this class.
#pragma once

#include <cstdint>

namespace sssp::core {

struct AdaptiveSgdOptions {
  double initial_parameter = 1.0;
  // Initialization constants from Algorithm 1 (epsilon guards the
  // variance EMA against division by zero before the first update).
  double epsilon = 1e-6;
  // Disable the Schaul adaptation and use a fixed learning rate instead
  // (ablation knob; the paper always adapts).
  bool adaptive = true;
  double fixed_learning_rate = 1e-4;
  // Parameter clamp after each update; models in this codebase are
  // physically positive quantities (average degree, vertices/distance).
  double min_parameter = 1e-9;
  double max_parameter = 1e18;
};

class AdaptiveSgd {
 public:
  explicit AdaptiveSgd(const AdaptiveSgdOptions& options);
  AdaptiveSgd() : AdaptiveSgd(AdaptiveSgdOptions{}) {}

  // One SGD step on observation (x, y) for the model y ≈ theta x.
  // Returns the updated parameter. x == 0 carries no gradient and is a
  // no-op (the model is unidentifiable from it). Non-finite (NaN/Inf)
  // observations are rejected — theta and the EMA state are untouched —
  // and counted in rejected() and the obs registry
  // ("sgd.rejected_observations"): one poisoned sample must not corrupt
  // the model for the rest of the run.
  double update(double x, double y);

  // Complete serializable SGD state (checkpoint/resume). Fields mirror
  // the private members one-for-one: restoring a captured state makes
  // every subsequent update() bit-identical to the uninterrupted model.
  struct State {
    double theta = 1.0;
    double g_bar = 0.0;
    double v_bar = 0.0;
    double h_bar = 1.0;
    double tau = 2.0;
    double mu = 0.0;
    std::uint64_t updates = 0;
    std::uint64_t rejected = 0;

    friend bool operator==(const State&, const State&) = default;
  };
  State state() const noexcept;
  // Validated restore: non-finite or out-of-range fields go through the
  // same input firewall as update() — counted in rejected() and the
  // "sgd.rejected_observations" counter — and throw
  // std::invalid_argument. A corrupt checkpoint must never seed a model.
  void restore(const State& state);

  double parameter() const noexcept { return theta_; }
  void set_parameter(double theta) noexcept;
  double prediction(double x) const noexcept { return theta_ * x; }
  // Diagnostics (exposed for tests and tracing).
  double learning_rate() const noexcept { return mu_; }
  double tau() const noexcept { return tau_; }
  std::uint64_t updates() const noexcept { return updates_; }
  // Observations dropped by the non-finite input guard.
  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  AdaptiveSgdOptions options_;
  double theta_;
  double g_bar_ = 0.0;   // EMA of gradient
  double v_bar_;         // EMA of squared gradient
  double h_bar_ = 1.0;   // EMA of curvature
  double tau_;           // adaptive EMA time constant
  double mu_ = 0.0;      // last learning rate used
  std::uint64_t updates_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace sssp::core
