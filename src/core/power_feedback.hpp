// Closed-loop power control — the paper's proposed future work realized
// on the simulated testbed (Section 5.2: "a user might specify a power
// limit instead of P, and the controller could then adjust itself in
// response to direct power observations").
//
// A PowerFeedbackRun wraps a SelfTuningRun. After every iteration it
// computes the iteration's board power through the device model (the
// stand-in for a PowerMon reading), smooths it with an EMA, and nudges
// the parallelism set-point multiplicatively:
//
//   error = (budget - power_ema) / budget
//   P    *= exp(gain * error),  clamped to [min, max]
//
// Because Figure 8 establishes that average power is monotone in P under
// the default governor, this loop converges to the largest P whose power
// stays at the budget — i.e. the fastest compliant operating point —
// without any offline sweep (contrast power_cap.hpp, which sweeps).
#pragma once

#include <vector>

#include "core/self_tuning.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "sim/run.hpp"

namespace sssp::core {

struct PowerFeedbackOptions {
  double power_budget_w = 0.0;  // required, > 0
  double initial_set_point = 4096.0;
  double min_set_point = 64.0;
  double max_set_point = 1e9;
  // Multiplicative feedback gain per iteration; higher reacts faster but
  // overshoots more.
  double gain = 0.5;
  // EMA time constant for the power signal (PowerMon samples are noisy;
  // the paper's device streams at 1 kHz and any real loop would filter).
  double power_ema_tau = 3.0;
  std::size_t max_iterations = 0;
  SelfTuningOptions tuning;  // set_point/max_iterations fields are ignored
};

struct PowerFeedbackResult {
  algo::SsspResult sssp;
  // Per-iteration traces of the control loop.
  std::vector<double> set_point_trace;
  std::vector<double> power_trace_w;  // instantaneous (per-iteration) power
  sim::RunReport report;              // full simulated replay of the run
  // Fraction of iterations whose smoothed power respected the budget.
  double compliant_fraction = 0.0;
};

// Runs SSSP to completion under the power budget on (device, policy).
// Distances remain exact for any budget.
PowerFeedbackResult power_feedback_sssp(const graph::CsrGraph& graph,
                                        graph::VertexId source,
                                        const sim::DeviceSpec& device,
                                        const sim::DvfsPolicy& policy,
                                        const PowerFeedbackOptions& options);

}  // namespace sssp::core
