#include "core/bisect_model.hpp"

#include <algorithm>

namespace sssp::core {
namespace {

constexpr double kMinAlpha = 1e-6;

AdaptiveSgdOptions make_sgd_options(const BisectModel::Options& options) {
  AdaptiveSgdOptions sgd;
  sgd.initial_parameter = options.initial_alpha;
  sgd.adaptive = options.adaptive;
  // alpha is vertices-per-unit-distance: positive, potentially large on
  // dense distance ranges.
  sgd.min_parameter = kMinAlpha;
  sgd.max_parameter = 1e12;
  return sgd;
}

}  // namespace

BisectModel::BisectModel(const Options& options)
    : options_(options), sgd_(make_sgd_options(options)) {}

double BisectModel::alpha(const BootstrapState& state) const {
  if (converged()) return std::max(kMinAlpha, sgd_.parameter());

  // Eq. 8 bootstrap.
  if (state.x4 >= state.x1_target && state.delta > 0.0)
    return std::max(kMinAlpha, state.x4 / state.delta);
  const double span = state.partition_bound - state.delta;
  if (span > 0.0 && state.partition_size > 0.0)
    return std::max(kMinAlpha, state.partition_size / span);
  // No usable state yet (e.g. empty far queue): fall back to the
  // current SGD value.
  return std::max(kMinAlpha, sgd_.parameter());
}

}  // namespace sssp::core
