// ADVANCE-MODEL (paper Section 4.2): learns d in X2 ≈ d · X1, where d
// converges to the average out-degree of frontier vertices. Inverting
// the model gives the frontier size needed to hit the parallelism
// set-point (Eq. 3): X1_target = P / d.
#pragma once

#include "core/adaptive_sgd.hpp"

namespace sssp::core {

class AdvanceModel {
 public:
  struct Options {
    // Starting estimate of the frontier's average degree. Callers that
    // know the graph pass its mean degree; 1.0 is the paper's neutral
    // default.
    double initial_degree = 1.0;
    bool adaptive = true;  // Algorithm 1 vs fixed-rate SGD (ablation)
  };

  AdvanceModel() : AdvanceModel(Options{}) {}
  explicit AdvanceModel(const Options& options);

  // Observe the true (X1, X2) of a completed advance stage.
  void observe(double x1, double x2) { sgd_.update(x1, x2); }

  // Current estimate of the average frontier degree d.
  double degree() const noexcept { return sgd_.parameter(); }

  // Predicted X2 for a hypothetical frontier of size x1.
  double predict_x2(double x1) const noexcept { return sgd_.prediction(x1); }

  // Eq. 3: the frontier size whose advance output meets set-point P.
  double target_frontier_size(double set_point) const noexcept {
    return set_point / degree();
  }

  std::uint64_t observations() const noexcept { return sgd_.updates(); }

  // Checkpoint/resume passthrough to the underlying SGD state (see
  // AdaptiveSgd::State). restore_sgd validates and throws on corrupt
  // fields.
  AdaptiveSgd::State sgd_state() const noexcept { return sgd_.state(); }
  void restore_sgd(const AdaptiveSgd::State& state) { sgd_.restore(state); }

 private:
  AdaptiveSgd sgd_;
};

}  // namespace sssp::core
