// BISECT-MODEL (paper Sections 4.4-4.6): learns alpha in
//   X1_{k+1} ≈ X4_k + alpha · (delta_{k+1} - delta_k),
// i.e. alpha estimates how many postponed vertices live per unit of
// distance near the current threshold. Before the SGD estimate
// converges (the paper reports ~5 iterations), alpha is bootstrapped
// from the current state via Eq. 8:
//   alpha = X4 / delta                 if X4 >= X1_target
//         = S_i / (B_i - delta)        otherwise
// where S_i and B_i are the size and upper bound of the current far
// partition.
#pragma once

#include <cstdint>

#include "core/adaptive_sgd.hpp"

namespace sssp::core {

class BisectModel {
 public:
  struct Options {
    double initial_alpha = 1.0;
    bool adaptive = true;  // Algorithm 1 vs fixed-rate SGD (ablation)
    // Number of SGD observations after which the learned alpha replaces
    // the Eq. 8 bootstrap (paper: "converged ... after about 5").
    std::uint64_t bootstrap_observations = 5;
  };

  BisectModel() : BisectModel(Options{}) {}
  explicit BisectModel(const Options& options);

  // Observe the outcome of a delta change: the frontier size X1 of the
  // next iteration versus the pre-rebalance size X4 and the applied
  // delta change. delta_change == 0 carries no information (no-op).
  void observe(double delta_change, double x4, double x1_next) {
    sgd_.update(delta_change, x1_next - x4);
  }

  bool converged() const noexcept {
    return sgd_.updates() >= options_.bootstrap_observations;
  }

  // Inputs Eq. 8 needs when still bootstrapping.
  struct BootstrapState {
    double x4 = 0.0;
    double x1_target = 0.0;       // P / d from the ADVANCE-MODEL
    double delta = 0.0;           // current threshold
    double partition_size = 0.0;  // S_i of the current far partition
    double partition_bound = 0.0; // B_i of the current far partition
  };

  // alpha to use right now: the learned parameter once converged, the
  // Eq. 8 bootstrap before that. Always positive.
  double alpha(const BootstrapState& state) const;

  // The learned (SGD) alpha regardless of convergence.
  double learned_alpha() const noexcept { return sgd_.parameter(); }
  std::uint64_t observations() const noexcept { return sgd_.updates(); }

  // Checkpoint/resume passthrough to the underlying SGD state (see
  // AdaptiveSgd::State). restore_sgd validates and throws on corrupt
  // fields.
  AdaptiveSgd::State sgd_state() const noexcept { return sgd_.state(); }
  void restore_sgd(const AdaptiveSgd::State& state) { sgd_.restore(state); }

 private:
  Options options_;
  AdaptiveSgd sgd_;
};

}  // namespace sssp::core
