// The checkpointed self-tuning driver: wraps SelfTuningRun's stepper
// with a checkpoint cadence and the run-control hooks, so tools get
// deadline/signal/stall handling and kill-and-resume in one call.
//
// Exactness: checkpoints are taken at iteration boundaries only and the
// ckpt.* failpoints draw from their own streams, so writing (or not
// writing) checkpoints never perturbs the algorithm's trajectory. A
// resumed run therefore byte-reproduces the uninterrupted run's
// distances, parents, per-iteration statistics, and controller CSV
// (see docs/ROBUSTNESS.md, "Checkpoint & recovery").
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "core/self_tuning.hpp"
#include "graph/csr.hpp"
#include "sssp/result.hpp"
#include "util/run_control.hpp"

namespace sssp::ckpt {

struct CheckpointPolicy {
  // Destination file; empty disables checkpointing entirely.
  std::string path;
  // Write after every N completed iterations (0 = no iteration cadence).
  std::uint64_t every_iterations = 0;
  // Write when this much wall-clock has passed since the last write
  // (0 = no time cadence).
  double every_seconds = 0.0;
  // Write a final checkpoint when the run stops early at a clean
  // iteration boundary (deadline/stall/interrupt caught between steps).
  bool final_on_stop = true;
};

struct CheckpointedResult {
  algo::SsspResult result;
  // Why the run ended early (kNone = ran to completion).
  util::StopReason stop = util::StopReason::kNone;
  // True when the stop landed mid-iteration: the live state was torn,
  // so no final checkpoint was written — the last cadence checkpoint is
  // the resume point — and result.distances are a partial view.
  bool stopped_mid_iteration = false;
  // True when the online invariant auditor tripped in audit-abort mode:
  // the run stopped at the (intact) iteration boundary, a final
  // checkpoint was written if the policy allows, and result.distances
  // are the partial state the auditor distrusted.
  bool audit_aborted = false;
  bool resumed = false;
  std::uint64_t resumed_from_iteration = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;
};

// Runs (or resumes) self-tuning SSSP under the policy. When `resume` is
// non-null it must already be validated or validatable against `graph`
// (validate_against is called here); the stored options replace
// `options` (the interrupted run's trajectory must not fork), `source`
// is ignored in favor of the checkpoint's, and the armed failpoints'
// RNG streams are restored before the first step. `control` may be
// null. Throws InjectedCrash when a ckpt.* crash failpoint fires and
// graph::GraphIoError on checkpoint I/O failure.
CheckpointedResult run_self_tuning_checkpointed(
    const graph::CsrGraph& graph, graph::VertexId source,
    const core::SelfTuningOptions& options, const CheckpointPolicy& policy,
    util::RunControl* control, RunState* resume);

}  // namespace sssp::ckpt
