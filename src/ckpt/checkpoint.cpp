#include "ckpt/checkpoint.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "graph/binary_io.hpp"
#include "graph/io_error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"
#include "res/budget.hpp"
#include "util/atomic_file.hpp"
#include "util/log.hpp"
#include "util/run_control.hpp"
#include "util/timer.hpp"

namespace sssp::ckpt {

namespace {

using graph::GraphIoError;
using graph::IoErrorClass;

constexpr char kMagic[8] = {'T', 'S', 'S', 'S', 'P', 'C', 'K', '1'};
constexpr std::uint32_t kVersion = 1;
// Section order is part of the format: meta, options, controller,
// engine, far queue, iterations, failpoints.
constexpr std::uint64_t kSectionCount = 7;

const char* const kFormat = "checkpoint";

struct CkptMetrics {
  obs::Counter& writes;
  obs::Counter& bytes;
  obs::Counter& loads;
  obs::Counter& load_failures;
  obs::Histogram& write_seconds;

  static CkptMetrics& get() {
    static CkptMetrics m{
        obs::MetricsRegistry::global().counter("checkpoint.writes"),
        obs::MetricsRegistry::global().counter("checkpoint.bytes"),
        obs::MetricsRegistry::global().counter("checkpoint.loads"),
        obs::MetricsRegistry::global().counter("checkpoint.load_failures"),
        obs::MetricsRegistry::global().histogram("checkpoint.write_seconds")};
    return m;
  }
};

// --- little-endian-on-every-supported-target primitive writers ---
// (The binary graph format makes the same host-order assumption; see
// graph/binary_io.cpp.)

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

// Doubles travel as raw bit patterns: exact round-trip, no text
// formatting ambiguity.
void append_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  append_u64(out, bits);
}

void append_string(std::string& out, const std::string& s) {
  append_u64(out, s.size());
  out.append(s);
}

// Bounds-checked reader over the raw bytes; every violation carries the
// byte offset where the data ran out or went bad.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint64_t offset() const noexcept { return pos_; }
  std::uint64_t remaining() const noexcept { return data_.size() - pos_; }

  const char* take(std::size_t size) {
    if (size > remaining())
      throw GraphIoError(IoErrorClass::kTruncated, kFormat,
                         "unexpected end of checkpoint data",
                         GraphIoError::kNoPosition, pos_);
    const char* p = data_.data() + pos_;
    pos_ += size;
    return p;
  }

  std::uint8_t read_u8() {
    return static_cast<std::uint8_t>(*take(1));
  }

  std::uint32_t read_u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }

  std::uint64_t read_u64() {
    std::uint64_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }

  double read_f64() {
    const std::uint64_t bits = read_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string read_string(std::uint64_t max_size) {
    const std::uint64_t size = read_u64();
    if (size > max_size)
      throw GraphIoError(IoErrorClass::kParse, kFormat,
                         "string length " + std::to_string(size) +
                             " exceeds sanity bound",
                         GraphIoError::kNoPosition, pos_);
    const char* p = take(size);
    return std::string(p, size);
  }

 private:
  std::string_view data_;
  std::uint64_t pos_ = 0;
};

// Sections are length-prefixed and individually checksummed, so damage
// is localized to a byte offset and a torn tail can never masquerade as
// a shorter-but-valid checkpoint.
void append_section(std::string& out, const std::string& payload) {
  append_u64(out, payload.size());
  out.append(payload);
  append_u64(out, graph::fnv1a64(payload.data(), payload.size()));
}

std::string read_section(Cursor& cursor) {
  const std::uint64_t begin = cursor.offset();
  const std::uint64_t size = cursor.read_u64();
  if (size > cursor.remaining())
    throw GraphIoError(IoErrorClass::kTruncated, kFormat,
                       "section length " + std::to_string(size) +
                           " exceeds remaining data",
                       GraphIoError::kNoPosition, begin);
  const char* p = cursor.take(size);
  std::string payload(p, size);
  const std::uint64_t stored = cursor.read_u64();
  const std::uint64_t actual = graph::fnv1a64(payload.data(), payload.size());
  if (stored != actual)
    throw GraphIoError(IoErrorClass::kChecksum, kFormat,
                       "section checksum mismatch",
                       GraphIoError::kNoPosition, begin);
  return payload;
}

// --- per-section encoders/decoders ---

std::string encode_meta(const CheckpointMeta& meta) {
  std::string out;
  append_string(out, meta.algorithm);
  append_u64(out, meta.graph_fingerprint);
  append_u64(out, meta.num_vertices);
  append_u64(out, meta.num_edges);
  append_u32(out, meta.source);
  append_u64(out, meta.iterations_completed);
  return out;
}

CheckpointMeta decode_meta(Cursor& cursor) {
  CheckpointMeta meta;
  meta.algorithm = cursor.read_string(256);
  meta.graph_fingerprint = cursor.read_u64();
  meta.num_vertices = cursor.read_u64();
  meta.num_edges = cursor.read_u64();
  meta.source = cursor.read_u32();
  meta.iterations_completed = cursor.read_u64();
  return meta;
}

std::string encode_options(const core::SelfTuningOptions& options) {
  // options.control is process-local and deliberately not serialized.
  std::string out;
  append_f64(out, options.set_point);
  append_f64(out, options.initial_delta);
  append_u64(out, options.max_iterations);
  append_u8(out, options.measure_controller_time ? 1 : 0);
  append_u8(out, options.parallel_advance ? 1 : 0);
  append_u64(out, options.parallel_threshold);
  append_u8(out, options.adaptive_learning_rate ? 1 : 0);
  append_u8(out, options.rebalance_down ? 1 : 0);
  append_u8(out, options.partition_boundaries ? 1 : 0);
  append_u64(out, options.bootstrap_observations);
  return out;
}

core::SelfTuningOptions decode_options(Cursor& cursor) {
  core::SelfTuningOptions options;
  options.set_point = cursor.read_f64();
  options.initial_delta = cursor.read_f64();
  options.max_iterations = cursor.read_u64();
  options.measure_controller_time = cursor.read_u8() != 0;
  options.parallel_advance = cursor.read_u8() != 0;
  options.parallel_threshold = cursor.read_u64();
  options.adaptive_learning_rate = cursor.read_u8() != 0;
  options.rebalance_down = cursor.read_u8() != 0;
  options.partition_boundaries = cursor.read_u8() != 0;
  options.bootstrap_observations = cursor.read_u64();
  options.control = nullptr;
  return options;
}

void encode_sgd(std::string& out, const core::AdaptiveSgd::State& sgd) {
  append_f64(out, sgd.theta);
  append_f64(out, sgd.g_bar);
  append_f64(out, sgd.v_bar);
  append_f64(out, sgd.h_bar);
  append_f64(out, sgd.tau);
  append_f64(out, sgd.mu);
  append_u64(out, sgd.updates);
  append_u64(out, sgd.rejected);
}

core::AdaptiveSgd::State decode_sgd(Cursor& cursor) {
  core::AdaptiveSgd::State sgd;
  sgd.theta = cursor.read_f64();
  sgd.g_bar = cursor.read_f64();
  sgd.v_bar = cursor.read_f64();
  sgd.h_bar = cursor.read_f64();
  sgd.tau = cursor.read_f64();
  sgd.mu = cursor.read_f64();
  sgd.updates = cursor.read_u64();
  sgd.rejected = cursor.read_u64();
  return sgd;
}

std::string encode_controller(const core::DeltaController::State& controller) {
  std::string out;
  append_f64(out, controller.delta);
  append_f64(out, controller.last_alpha);
  append_f64(out, controller.pending_delta_change);
  append_f64(out, controller.pending_x4);
  append_u8(out, controller.has_pending ? 1 : 0);
  append_u8(out, controller.logged_nonfinite ? 1 : 0);
  encode_sgd(out, controller.advance_sgd);
  encode_sgd(out, controller.bisect_sgd);
  const core::ControllerHealth::State& health = controller.health;
  append_u8(out, health.control_state);
  append_u64(out, health.degradations);
  append_u64(out, health.recoveries);
  append_u64(out, health.rejected_inputs);
  append_u64(out, health.model_resets);
  append_u64(out, health.reject_streak);
  append_u64(out, health.pin_streak);
  append_u64(out, health.oscillation_streak);
  append_u64(out, health.healthy_streak);
  append_u64(out, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(health.last_step_sign)));
  return out;
}

core::DeltaController::State decode_controller(Cursor& cursor) {
  core::DeltaController::State controller;
  controller.delta = cursor.read_f64();
  controller.last_alpha = cursor.read_f64();
  controller.pending_delta_change = cursor.read_f64();
  controller.pending_x4 = cursor.read_f64();
  controller.has_pending = cursor.read_u8() != 0;
  controller.logged_nonfinite = cursor.read_u8() != 0;
  controller.advance_sgd = decode_sgd(cursor);
  controller.bisect_sgd = decode_sgd(cursor);
  core::ControllerHealth::State& health = controller.health;
  health.control_state = cursor.read_u8();
  health.degradations = cursor.read_u64();
  health.recoveries = cursor.read_u64();
  health.rejected_inputs = cursor.read_u64();
  health.model_resets = cursor.read_u64();
  health.reject_streak = cursor.read_u64();
  health.pin_streak = cursor.read_u64();
  health.oscillation_streak = cursor.read_u64();
  health.healthy_streak = cursor.read_u64();
  health.last_step_sign = static_cast<std::int32_t>(
      static_cast<std::int64_t>(cursor.read_u64()));
  return controller;
}

std::string encode_engine(const frontier::NearFarEngine::State& engine) {
  std::string out;
  const std::uint64_t n = engine.dist.size();
  append_u64(out, n);
  out.append(reinterpret_cast<const char*>(engine.dist.data()),
             n * sizeof(graph::Distance));
  out.append(reinterpret_cast<const char*>(engine.parent.data()),
             n * sizeof(graph::VertexId));
  append_u64(out, engine.frontier.size());
  out.append(reinterpret_cast<const char*>(engine.frontier.data()),
             engine.frontier.size() * sizeof(graph::VertexId));
  append_u64(out, engine.total_improving);
  append_u64(out, engine.frontier_max_distance);
  return out;
}

frontier::NearFarEngine::State decode_engine(Cursor& cursor) {
  frontier::NearFarEngine::State engine;
  const std::uint64_t n = cursor.read_u64();
  engine.dist.resize(n);
  std::memcpy(engine.dist.data(), cursor.take(n * sizeof(graph::Distance)),
              n * sizeof(graph::Distance));
  engine.parent.resize(n);
  std::memcpy(engine.parent.data(), cursor.take(n * sizeof(graph::VertexId)),
              n * sizeof(graph::VertexId));
  const std::uint64_t frontier_size = cursor.read_u64();
  if (frontier_size > n)
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "frontier larger than vertex count",
                       GraphIoError::kNoPosition, cursor.offset());
  engine.frontier.resize(frontier_size);
  std::memcpy(engine.frontier.data(),
              cursor.take(frontier_size * sizeof(graph::VertexId)),
              frontier_size * sizeof(graph::VertexId));
  engine.total_improving = cursor.read_u64();
  engine.frontier_max_distance = cursor.read_u64();
  return engine;
}

std::string encode_far(const core::PartitionedFarQueue::State& far) {
  std::string out;
  append_u64(out, far.lower_bound);
  append_u64(out, far.bounds.size());
  for (std::size_t i = 0; i < far.bounds.size(); ++i) {
    append_u64(out, far.bounds[i]);
    const auto& entries = far.entries[i];
    append_u64(out, entries.size());
    for (const frontier::FarEntry& entry : entries) {
      append_u32(out, entry.vertex);
      append_u64(out, entry.distance);
    }
  }
  return out;
}

core::PartitionedFarQueue::State decode_far(Cursor& cursor,
                                            std::uint64_t max_entries) {
  core::PartitionedFarQueue::State far;
  far.lower_bound = cursor.read_u64();
  const std::uint64_t partitions = cursor.read_u64();
  if (partitions > max_entries + 2)
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "far-queue partition count exceeds sanity bound",
                       GraphIoError::kNoPosition, cursor.offset());
  far.bounds.resize(partitions);
  far.entries.resize(partitions);
  for (std::uint64_t i = 0; i < partitions; ++i) {
    far.bounds[i] = cursor.read_u64();
    const std::uint64_t count = cursor.read_u64();
    // 12 bytes per serialized entry: a declared count beyond the
    // remaining bytes is structural damage, not an allocation request.
    if (count > cursor.remaining() / 12)
      throw GraphIoError(IoErrorClass::kTruncated, kFormat,
                         "far-queue entry count exceeds remaining data",
                         GraphIoError::kNoPosition, cursor.offset());
    auto& entries = far.entries[i];
    entries.resize(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      entries[j].vertex = cursor.read_u32();
      entries[j].distance = cursor.read_u64();
    }
  }
  return far;
}

std::string encode_iterations(
    const std::vector<frontier::IterationStats>& iterations,
    double controller_seconds) {
  std::string out;
  append_u64(out, iterations.size());
  for (const frontier::IterationStats& stats : iterations) {
    append_u64(out, stats.x1);
    append_u64(out, stats.x2);
    append_u64(out, stats.x3);
    append_u64(out, stats.x4);
    append_u64(out, stats.improving_relaxations);
    append_u64(out, stats.far_queue_size);
    append_u64(out, stats.rebalance_items);
    append_f64(out, stats.controller_seconds);
    append_f64(out, stats.delta);
    append_f64(out, stats.degree_estimate);
    append_f64(out, stats.alpha_estimate);
    append_u8(out, stats.controller_degraded ? 1 : 0);
  }
  append_f64(out, controller_seconds);
  return out;
}

void decode_iterations(Cursor& cursor,
                       std::vector<frontier::IterationStats>& iterations,
                       double& controller_seconds) {
  const std::uint64_t count = cursor.read_u64();
  // 81 bytes per serialized iteration record.
  if (count > cursor.remaining() / 81)
    throw GraphIoError(IoErrorClass::kTruncated, kFormat,
                       "iteration count exceeds remaining data",
                       GraphIoError::kNoPosition, cursor.offset());
  iterations.resize(count);
  for (frontier::IterationStats& stats : iterations) {
    stats.x1 = cursor.read_u64();
    stats.x2 = cursor.read_u64();
    stats.x3 = cursor.read_u64();
    stats.x4 = cursor.read_u64();
    stats.improving_relaxations = cursor.read_u64();
    stats.far_queue_size = cursor.read_u64();
    stats.rebalance_items = cursor.read_u64();
    stats.controller_seconds = cursor.read_f64();
    stats.delta = cursor.read_f64();
    stats.degree_estimate = cursor.read_f64();
    stats.alpha_estimate = cursor.read_f64();
    stats.controller_degraded = cursor.read_u8() != 0;
  }
  controller_seconds = cursor.read_f64();
}

std::string encode_failpoints(
    const std::vector<fault::FailpointRuntime>& failpoints) {
  std::string out;
  append_u64(out, failpoints.size());
  for (const fault::FailpointRuntime& fp : failpoints) {
    append_string(out, fp.name);
    append_u8(out, fp.mode);
    append_u64(out, fp.hits);
    append_u64(out, fp.fires);
    append_u64(out, fp.rng_state);
  }
  return out;
}

std::vector<fault::FailpointRuntime> decode_failpoints(Cursor& cursor) {
  const std::uint64_t count = cursor.read_u64();
  if (count > 4096)
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "failpoint count exceeds sanity bound",
                       GraphIoError::kNoPosition, cursor.offset());
  std::vector<fault::FailpointRuntime> failpoints(count);
  for (fault::FailpointRuntime& fp : failpoints) {
    fp.name = cursor.read_string(256);
    fp.mode = cursor.read_u8();
    fp.hits = cursor.read_u64();
    fp.fires = cursor.read_u64();
    fp.rng_state = cursor.read_u64();
  }
  return failpoints;
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::CsrGraph& graph) {
  const auto offsets = graph.offsets();
  const auto targets = graph.targets();
  const auto weights = graph.weights();
  // Hash each array, then hash the digest of digests together with the
  // shape, so array boundaries cannot alias.
  std::uint64_t digest[5];
  digest[0] = graph.num_vertices();
  digest[1] = graph.num_edges();
  digest[2] = graph::fnv1a64(offsets.data(), offsets.size_bytes());
  digest[3] = graph::fnv1a64(targets.data(), targets.size_bytes());
  digest[4] = graph::fnv1a64(weights.data(), weights.size_bytes());
  return graph::fnv1a64(digest, sizeof digest);
}

std::string serialize_checkpoint(const RunState& state) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  std::string header;
  append_u32(header, kVersion);
  append_u32(header, 0);  // reserved
  append_u64(header, kSectionCount);
  append_u64(out, graph::fnv1a64(header.data(), header.size()));
  out.append(header);
  append_section(out, encode_meta(state.meta));
  append_section(out, encode_options(state.options));
  append_section(out, encode_controller(state.snapshot.controller));
  append_section(out, encode_engine(state.snapshot.engine));
  append_section(out, encode_far(state.snapshot.far));
  append_section(out, encode_iterations(state.snapshot.iterations,
                                        state.snapshot.controller_seconds));
  append_section(out, encode_failpoints(state.failpoints));
  return out;
}

RunState deserialize_checkpoint(std::string_view bytes) {
  Cursor cursor(bytes);
  const char* magic = cursor.take(sizeof kMagic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw GraphIoError(IoErrorClass::kVersion, kFormat,
                       "bad magic (not a checkpoint file)",
                       GraphIoError::kNoPosition, 0);
  const std::uint64_t stored_header_checksum = cursor.read_u64();
  const std::uint64_t header_begin = cursor.offset();
  const std::uint32_t version = cursor.read_u32();
  const std::uint32_t reserved = cursor.read_u32();
  const std::uint64_t section_count = cursor.read_u64();
  {
    std::string header;
    append_u32(header, version);
    append_u32(header, reserved);
    append_u64(header, section_count);
    if (graph::fnv1a64(header.data(), header.size()) != stored_header_checksum)
      throw GraphIoError(IoErrorClass::kChecksum, kFormat,
                         "header checksum mismatch",
                         GraphIoError::kNoPosition, header_begin);
  }
  if (version != kVersion)
    throw GraphIoError(IoErrorClass::kVersion, kFormat,
                       "unsupported checkpoint version " +
                           std::to_string(version),
                       GraphIoError::kNoPosition, header_begin);
  if (section_count != kSectionCount)
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "unexpected section count " +
                           std::to_string(section_count),
                       GraphIoError::kNoPosition, header_begin);

  RunState state;
  {
    const std::string payload = read_section(cursor);
    Cursor section(payload);
    state.meta = decode_meta(section);
  }
  {
    const std::string payload = read_section(cursor);
    Cursor section(payload);
    state.options = decode_options(section);
  }
  {
    const std::string payload = read_section(cursor);
    Cursor section(payload);
    state.snapshot.controller = decode_controller(section);
  }
  {
    const std::string payload = read_section(cursor);
    Cursor section(payload);
    state.snapshot.engine = decode_engine(section);
  }
  {
    const std::string payload = read_section(cursor);
    Cursor section(payload);
    state.snapshot.far =
        decode_far(section, state.meta.num_vertices + state.meta.num_edges);
  }
  {
    const std::string payload = read_section(cursor);
    Cursor section(payload);
    decode_iterations(section, state.snapshot.iterations,
                      state.snapshot.controller_seconds);
  }
  {
    const std::string payload = read_section(cursor);
    Cursor section(payload);
    state.failpoints = decode_failpoints(section);
  }
  if (cursor.remaining() != 0)
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "trailing bytes after final section",
                       GraphIoError::kNoPosition, cursor.offset());
  state.snapshot.source = state.meta.source;
  return state;
}

void validate_against(const RunState& state, const graph::CsrGraph& graph) {
  if (state.meta.algorithm != "self-tuning")
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "checkpoint is for algorithm '" +
                           state.meta.algorithm + "', not self-tuning");
  if (state.meta.num_vertices != graph.num_vertices() ||
      state.meta.num_edges != graph.num_edges())
    throw GraphIoError(
        IoErrorClass::kParse, kFormat,
        "checkpoint graph shape (" +
            std::to_string(state.meta.num_vertices) + " vertices, " +
            std::to_string(state.meta.num_edges) +
            " edges) does not match the loaded graph");
  if (state.meta.graph_fingerprint != graph_fingerprint(graph))
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "checkpoint graph fingerprint does not match the "
                       "loaded graph");
  if (state.meta.source >= graph.num_vertices())
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "checkpoint source vertex out of range");
  if (state.snapshot.iterations.size() != state.meta.iterations_completed)
    throw GraphIoError(IoErrorClass::kParse, kFormat,
                       "iteration history does not match the recorded "
                       "iteration count");
}

std::uint64_t save_checkpoint_file(const std::string& path,
                                   const RunState& state) {
  SSSP_TRACE_SPAN("checkpoint");
  SSSP_PROF_PHASE("checkpoint");
  util::WallTimer timer;
  // Crash failpoints simulate the process dying at the three interesting
  // instants of the write protocol (docs/ROBUSTNESS.md):
  //   crash_before_write — nothing touched; previous checkpoint intact.
  //   crash_after_tmp    — tmp written, rename skipped; previous intact.
  //   torn_write         — a half-length file lands at the *final* path
  //                        (simulates a torn sector): load must reject.
  //   bit_flip           — one flipped bit inside the payload: the
  //                        section checksum must catch it at load.
  if (SSSP_FAILPOINT("ckpt.crash_before_write"))
    throw InjectedCrash("ckpt.crash_before_write");
  std::string bytes = serialize_checkpoint(state);
  if (SSSP_FAILPOINT("ckpt.bit_flip") && !bytes.empty())
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  const bool torn = SSSP_FAILPOINT("ckpt.torn_write");
  if (torn) bytes.resize(bytes.size() / 2);

  // Scratch-disk budget gate: refuse a checkpoint that would not fit
  // the configured scratch allowance before writing a byte (structured
  // ResourceError → kExitResourceBudget, previous checkpoint intact).
  // The charge is released after the write: the budget bounds the
  // write in flight, not the long-term footprint of one file that
  // keeps being replaced in place.
  auto& budget = res::ResourceBudget::global();
  if (!budget.try_charge_scratch(bytes.size(), "res.ckpt.scratch"))
    throw res::ResourceError(res::ResourceKind::kScratch, "res.ckpt.scratch",
                             bytes.size(),
                             budget.scratch_limit() >= budget.scratch_used()
                                 ? budget.scratch_limit() -
                                       budget.scratch_used()
                                 : 0);
  struct ScratchRelease {
    res::ResourceBudget& budget;
    std::size_t bytes;
    ~ScratchRelease() { budget.release_scratch(bytes); }
  } scratch_release{budget, bytes.size()};

  // tmp+fsync+rename via util/atomic_file, which also handles short
  // writes, retries transient errors, and maps ENOSPC/EDQUOT to
  // DiskFullError (tools exit kExitDiskFull) with the tmp removed. The
  // signal-critical section is still needed: the handler's second-^C
  // hard exit could land between write and rename — tearing the
  // protocol from inside the process — so it is deferred to the
  // closing brace. A signal barrage during the window still yields
  // either the intact old checkpoint or a complete new one.
  util::ScopedSignalCritical in_write_window;
  // Injected fault: SIGINT/SIGTERM delivered mid-write. The first
  // signal only sets the cooperative stop flag; the write must finish
  // and produce a loadable checkpoint (tests raise the second signal
  // too and assert the deferred-exit path).
  if (SSSP_FAILPOINT("ckpt.signal_in_write")) std::raise(SIGINT);
  util::AtomicWriteOptions write_options;
  write_options.before_rename = [] {
    // Simulated death after the tmp is durable, before the rename: the
    // tmp is left behind (atomic_file contract for a throwing hook),
    // exactly like a real crash at this instant.
    if (SSSP_FAILPOINT("ckpt.crash_after_tmp"))
      throw InjectedCrash("ckpt.crash_after_tmp");
  };
  try {
    util::atomic_write_file(path, bytes, write_options);
  } catch (const util::DiskFullError&) {
    throw;  // dedicated exit code; tmp already removed
  } catch (const InjectedCrash&) {
    throw;
  } catch (const std::exception& e) {
    // Preserve the loader/saver error contract: environmental write
    // failures surface as structured GraphIoError (kOpen → exit 3).
    throw GraphIoError(IoErrorClass::kOpen, kFormat, e.what());
  }
  // The torn write has reached the final path — now the "process dies".
  if (torn) throw InjectedCrash("ckpt.torn_write");

  if (obs::metrics_enabled()) {
    CkptMetrics& m = CkptMetrics::get();
    m.writes.add();
    m.bytes.add(bytes.size());
    m.write_seconds.record(timer.elapsed_seconds());
  }
  SSSP_LOG(kDebug) << "checkpoint written: " << path << " (" << bytes.size()
                   << " bytes, iteration "
                   << state.meta.iterations_completed << ")";
  return bytes.size();
}

RunState load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (obs::metrics_enabled()) CkptMetrics::get().load_failures.add();
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    if (obs::metrics_enabled()) CkptMetrics::get().load_failures.add();
    throw GraphIoError(IoErrorClass::kOpen, kFormat,
                       "read error on '" + path + "'");
  }
  try {
    RunState state = deserialize_checkpoint(bytes);
    if (obs::metrics_enabled()) CkptMetrics::get().loads.add();
    return state;
  } catch (const GraphIoError&) {
    if (obs::metrics_enabled()) CkptMetrics::get().load_failures.add();
    throw;
  }
}

}  // namespace sssp::ckpt
