// Crash-consistent checkpointing for long SSSP runs (docs/ROBUSTNESS.md,
// "Checkpoint & recovery").
//
// A checkpoint is the complete resumable state of a self-tuning run at
// an iteration boundary: the engine's distance/parent arrays and
// frontier, the partitioned far queue (boundaries included), the
// controller (both SGD models plus the health monitor), the iteration
// history, the effective run options, and the armed failpoints' RNG
// streams. Because the pipeline is bit-deterministic at any thread
// count (PR 3) and the failpoint streams are restored alongside the
// algorithm state, a resumed run reproduces the uninterrupted run
// *exactly* — distances, parents, X1-X4 trajectories, and controller
// CSVs byte-compare.
//
// On-disk format ("TSSSPCK1", version 1): a checksummed header followed
// by length-prefixed sections, each trailed by its own FNV-1a 64
// checksum — the same integrity discipline as the TSSSPGR2 binary graph
// format. Writes are in-memory-serialize -> tmp -> rename, so a crash
// at any instant leaves either the previous complete checkpoint or a
// tmp file that is never read. Corruption (torn tail, flipped bit,
// foreign graph) is detected at load and reported as a structured
// graph::GraphIoError with format "checkpoint" — a damaged checkpoint
// can fail a resume, never corrupt an answer.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sssp::ckpt {

// Thrown by the ckpt.* crash failpoints (crash_before_write,
// crash_after_tmp, torn_write) to simulate the process dying at that
// instant. Tools translate it into a distinct exit code and exit
// *without* flushing reports — the closest a test harness gets to
// kill -9 while staying deterministic.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& failpoint)
      : std::runtime_error("injected crash at failpoint " + failpoint) {}
};

struct CheckpointMeta {
  std::string algorithm;  // "self-tuning" (the only checkpointable algo)
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  graph::VertexId source = 0;
  std::uint64_t iterations_completed = 0;

  friend bool operator==(const CheckpointMeta&,
                         const CheckpointMeta&) = default;
};

// Everything a process needs to continue the run. options.control is
// never serialized (it is process-local); the loader leaves it null.
struct RunState {
  CheckpointMeta meta;
  core::SelfTuningOptions options;
  core::SelfTuningRun::Snapshot snapshot;
  std::vector<fault::FailpointRuntime> failpoints;
};

// FNV-1a 64 over the graph's structure (sizes + offsets + targets +
// weights). Stored in every checkpoint and cross-checked on resume so a
// checkpoint can never be applied to a different graph.
std::uint64_t graph_fingerprint(const graph::CsrGraph& graph);

// In-memory (de)serialization. serialize is a pure function of the
// state — byte-stable, so save/load/save round-trips are bit-identical.
// deserialize throws graph::GraphIoError (format "checkpoint") on any
// structural damage: bad magic/version (kVersion), short data
// (kTruncated), checksum mismatch (kChecksum), semantic nonsense
// (kParse).
std::string serialize_checkpoint(const RunState& state);
RunState deserialize_checkpoint(std::string_view bytes);

// Cross-checks a loaded checkpoint against the graph it is about to
// drive (fingerprint, sizes, source range, algorithm). Throws
// graph::GraphIoError kParse on mismatch.
void validate_against(const RunState& state, const graph::CsrGraph& graph);

// Atomic checkpoint write: serialize, write `path + ".tmp"`, rename
// over `path`. Hosts the ckpt.* failpoints. Returns the byte size
// written; throws graph::GraphIoError kOpen on filesystem failure and
// InjectedCrash when a crash failpoint fires.
std::uint64_t save_checkpoint_file(const std::string& path,
                                   const RunState& state);

// Reads and deserializes a checkpoint file. Throws graph::GraphIoError
// (kOpen on unreadable, else as deserialize_checkpoint).
RunState load_checkpoint_file(const std::string& path);

}  // namespace sssp::ckpt
