#include "ckpt/checkpointed_run.hpp"

#include <memory>
#include <utility>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "verify/auditor.hpp"

namespace sssp::ckpt {

CheckpointedResult run_self_tuning_checkpointed(
    const graph::CsrGraph& graph, graph::VertexId source,
    const core::SelfTuningOptions& options, const CheckpointPolicy& policy,
    util::RunControl* control, RunState* resume) {
  CheckpointedResult out;
  core::SelfTuningOptions effective = options;
  effective.control = control;

  std::unique_ptr<core::SelfTuningRun> run;
  if (resume != nullptr) {
    validate_against(*resume, graph);
    // The stored options drive the resumed run — the resuming process's
    // own flags must not fork the trajectory. Only the control hook is
    // live process state.
    effective = resume->options;
    effective.control = control;
    // The audit knobs are live process state like `control` — they
    // never alter the trajectory (reads only, unless a real fault
    // trips), so the resuming process's flags apply.
    effective.audit_every = options.audit_every;
    effective.audit_abort = options.audit_abort;
    // Realign the armed failpoints' hit counters and probability
    // streams so injected-fault schedules continue where they left off.
    fault::FailpointRegistry::global().restore_runtime(resume->failpoints);
    out.resumed = true;
    out.resumed_from_iteration = resume->meta.iterations_completed;
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global().counter("checkpoint.resumes").add();
    SSSP_LOG(kInfo) << "resuming self-tuning run from iteration "
                    << resume->meta.iterations_completed;
    run = std::make_unique<core::SelfTuningRun>(
        graph, effective, std::move(resume->snapshot));
  } else {
    run = std::make_unique<core::SelfTuningRun>(graph, source, effective);
  }

  const bool checkpointing = !policy.path.empty();
  // The fingerprint hashes the whole graph; compute it once, not per
  // checkpoint.
  const std::uint64_t fingerprint =
      checkpointing ? graph_fingerprint(graph) : 0;
  const auto write_checkpoint = [&] {
    RunState state;
    state.snapshot = run->snapshot();
    state.meta.algorithm = "self-tuning";
    state.meta.graph_fingerprint = fingerprint;
    state.meta.num_vertices = graph.num_vertices();
    state.meta.num_edges = graph.num_edges();
    state.meta.source = state.snapshot.source;
    state.meta.iterations_completed = run->iterations_completed();
    state.options = effective;
    state.options.control = nullptr;
    state.failpoints = fault::FailpointRegistry::global().capture_runtime();
    out.checkpoint_bytes += save_checkpoint_file(policy.path, state);
    ++out.checkpoints_written;
  };

  util::WallTimer cadence_timer;
  std::uint64_t iterations_since_write = 0;
  try {
    while (!run->done()) {
      if (control != nullptr) {
        const util::StopReason reason =
            control->poll_iteration(run->total_improving_relaxations());
        if (reason != util::StopReason::kNone) {
          out.stop = reason;
          break;
        }
      }
      if (!run->step()) break;
      if (!checkpointing) continue;
      ++iterations_since_write;
      const bool due_iterations = policy.every_iterations > 0 &&
                                  iterations_since_write >=
                                      policy.every_iterations;
      const bool due_time =
          policy.every_seconds > 0.0 &&
          cadence_timer.elapsed_seconds() >= policy.every_seconds;
      if (due_iterations || due_time) {
        write_checkpoint();
        iterations_since_write = 0;
        cadence_timer.reset();
      }
    }
  } catch (const verify::AuditViolation& violation) {
    // Audit-abort trips at the iteration boundary, after the iteration
    // was recorded: the run state is intact and checkpointable, unlike
    // a mid-stage StopRequested.
    out.audit_aborted = true;
    SSSP_LOG(kError) << violation.what()
                     << "; stopping at the iteration boundary";
  } catch (const util::StopRequested& stopped) {
    // The stop landed inside a stage: the run state is torn, so it must
    // not be checkpointed — the last cadence write is the resume point.
    out.stop = stopped.reason();
    out.stopped_mid_iteration = true;
    SSSP_LOG(kWarn) << "run aborted mid-iteration ("
                    << util::to_string(stopped.reason())
                    << "); resume from the last checkpoint";
  }

  if (((out.stop != util::StopReason::kNone && !out.stopped_mid_iteration) ||
       out.audit_aborted) &&
      checkpointing && policy.final_on_stop) {
    // Clean boundary stop (or audit abort, which also lands on a
    // boundary): capture the freshest possible resume point.
    write_checkpoint();
  }

  out.result = run->take_result();
  return out;
}

}  // namespace sssp::ckpt
