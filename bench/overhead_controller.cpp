// Section 5.2 (text) — controller runtime overhead: host microseconds
// spent in the controller per second of (simulated) device runtime.
// Expectation: the paper reports ~50 us/s (Wiki) and ~200 us/s (Cal),
// i.e. 0.005%-0.02% of runtime. Our controller should be within a small
// multiple of that band on comparable work.
#include <cstdio>

#include "bench/common.hpp"
#include "core/self_tuning.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("repeats", "3", "measurement repetitions (min is reported)");
  bench::BenchConfig config;
  if (bench::parse_common_flags(flags, "Controller overhead measurement",
                                config))
    return 0;

  bench::print_banner(
      "Controller overhead (Section 5.2)",
      "Paper: ~50 us (Wiki) and ~200 us (Cal) of controller time per second\n"
      "of runtime, i.e. 0.005%-0.02%. Reported speedups include it; ours\n"
      "charge it to the workload the same way.");

  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;
  const auto repeats = static_cast<int>(flags.get_int("repeats"));

  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header({"graph", "set_point", "controller_us", "traced_us",
                       "trace_overhead_percent", "sim_seconds",
                       "us_per_second", "percent"});

  // Controller-loop time is measured twice: with every observability
  // gate off (the default production configuration — this is the number
  // the paper's overhead claim maps to) and with tracing + metrics
  // enabled, so instrumentation regressions show up in this bench.
  const bool obs_was_on = obs::metrics_enabled() || obs::trace_enabled();

  util::TextTable table;
  table.set_header({"graph", "P", "controller_us", "traced_us",
                    "trace_overhead_%", "us_per_iteration", "sim_seconds",
                    "us_per_sim_second", "percent_of_runtime"});
  for (const auto dataset : {graph::Dataset::kCal, graph::Dataset::kWiki}) {
    const auto bundle = bench::load_dataset(dataset, config);
    const double p = bench::default_set_points(dataset, bundle.scale)[1];

    auto measure = [&](bool instrumented, double& sim_seconds,
                       std::size_t& iterations) {
      obs::set_metrics_enabled(instrumented);
      obs::set_trace_enabled(instrumented);
      double best_controller = 1e300;
      for (int r = 0; r < repeats; ++r) {
        core::SelfTuningOptions options;
        options.set_point = p;
        options.measure_controller_time = true;
        const auto run =
            core::self_tuning_sssp(bundle.graph, bundle.source, options);
        if (run.controller_seconds < best_controller) {
          best_controller = run.controller_seconds;
          iterations = run.num_iterations();
          sim_seconds = bench::simulate(run, bundle.name, device, governor)
                            .total_seconds;
        }
        // Bound tracer memory across repeats (events are not the point
        // here, their emission cost is).
        if (instrumented) obs::Tracer::global().clear();
      }
      obs::set_metrics_enabled(false);
      obs::set_trace_enabled(false);
      return best_controller;
    };

    double sim_seconds = 0.0, traced_sim_seconds = 0.0;
    std::size_t iterations = 0, traced_iterations = 0;
    const double best_controller = measure(false, sim_seconds, iterations);
    const double traced_controller =
        measure(true, traced_sim_seconds, traced_iterations);

    const double us = best_controller * 1e6;
    const double traced_us = traced_controller * 1e6;
    const double overhead_pct = 100.0 * (traced_controller - best_controller) /
                                best_controller;
    const double us_per_s = us / sim_seconds;
    const double us_per_iter = us / static_cast<double>(iterations);
    table.add(bundle.name, p, us, traced_us, overhead_pct, us_per_iter,
              sim_seconds, us_per_s, 100.0 * best_controller / sim_seconds);
    if (csv)
      csv->write(bundle.name, p, us, traced_us, overhead_pct, sim_seconds,
                 us_per_s, 100.0 * best_controller / sim_seconds);
  }
  // parse_common_flags may have enabled gates for --metrics-out/--trace-out;
  // restore them for the atexit sinks.
  if (obs_was_on) {
    obs::set_metrics_enabled(!config.metrics_path.empty());
    obs::set_trace_enabled(!config.trace_path.empty());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "traced_us re-runs the same workload with tracing and metrics\n"
      "enabled; trace_overhead_%% is the controller-loop cost of\n"
      "instrumentation and should stay small (future PRs: watch this).\n");
  std::printf(
      "note: us_per_sim_second exceeds the paper's 50-200 us/s band at\n"
      "bench scale because the simulated denominator shrinks ~16-64x with\n"
      "the graphs while per-iteration controller cost (the us_per_iteration\n"
      "column, sub-microsecond) is scale-free. At --cal-scale/--wiki-scale\n"
      "1.0 the ratio falls into the paper's band.\n");
  return 0;
}
