// Section 5.2 (text) — controller runtime overhead: host microseconds
// spent in the controller per second of (simulated) device runtime.
// Expectation: the paper reports ~50 us/s (Wiki) and ~200 us/s (Cal),
// i.e. 0.005%-0.02% of runtime. Our controller should be within a small
// multiple of that band on comparable work.
#include <cstdio>

#include "bench/common.hpp"
#include "core/self_tuning.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("repeats", "3", "measurement repetitions (min is reported)");
  bench::BenchConfig config;
  if (bench::parse_common_flags(flags, "Controller overhead measurement",
                                config))
    return 0;

  bench::print_banner(
      "Controller overhead (Section 5.2)",
      "Paper: ~50 us (Wiki) and ~200 us (Cal) of controller time per second\n"
      "of runtime, i.e. 0.005%-0.02%. Reported speedups include it; ours\n"
      "charge it to the workload the same way.");

  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;
  const auto repeats = static_cast<int>(flags.get_int("repeats"));

  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header({"graph", "set_point", "controller_us", "sim_seconds",
                       "us_per_second", "percent"});

  util::TextTable table;
  table.set_header({"graph", "P", "controller_us", "us_per_iteration",
                    "sim_seconds", "us_per_sim_second", "percent_of_runtime"});
  for (const auto dataset : {graph::Dataset::kCal, graph::Dataset::kWiki}) {
    const auto bundle = bench::load_dataset(dataset, config);
    const double p = bench::default_set_points(dataset, bundle.scale)[1];

    double best_controller = 1e300;
    double sim_seconds = 0.0;
    std::size_t iterations = 0;
    for (int r = 0; r < repeats; ++r) {
      core::SelfTuningOptions options;
      options.set_point = p;
      options.measure_controller_time = true;
      const auto run =
          core::self_tuning_sssp(bundle.graph, bundle.source, options);
      if (run.controller_seconds < best_controller) {
        best_controller = run.controller_seconds;
        iterations = run.num_iterations();
        sim_seconds =
            bench::simulate(run, bundle.name, device, governor).total_seconds;
      }
    }
    const double us = best_controller * 1e6;
    const double us_per_s = us / sim_seconds;
    const double us_per_iter = us / static_cast<double>(iterations);
    table.add(bundle.name, p, us, us_per_iter, sim_seconds, us_per_s,
              100.0 * best_controller / sim_seconds);
    if (csv)
      csv->write(bundle.name, p, us, sim_seconds, us_per_s,
                 100.0 * best_controller / sim_seconds);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "note: us_per_sim_second exceeds the paper's 50-200 us/s band at\n"
      "bench scale because the simulated denominator shrinks ~16-64x with\n"
      "the graphs while per-iteration controller cost (the us_per_iteration\n"
      "column, sub-microsecond) is scale-free. At --cal-scale/--wiki-scale\n"
      "1.0 the ratio falls into the paper's band.\n");
  return 0;
}
