// Figure 3 — Cal performance versus delta: peak frontier load, iteration
// count, and simulated runtime across the delta grid.
// Expectation: peak parallelism grows with delta while iteration count
// falls; runtime is U-shaped (launch-overhead-bound at small delta,
// redundant-work-bound at large delta).
#include <cstdio>

#include "bench/common.hpp"
#include "sssp/delta_sweep.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig config;
  if (bench::parse_common_flags(
          flags, "Figure 3: Cal performance versus delta", config))
    return 0;

  bench::print_banner(
      "Figure 3 — Cal (road network) performance versus delta",
      "Paper: small delta -> sub-par parallelism and long runtime; larger\n"
      "delta -> peak frontier grows, iteration count drops. Runtime is\n"
      "minimized at a middle delta (redundant work grows past it).");

  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::PinnedDvfs policy(device.max_frequencies());
  const auto bundle = bench::load_dataset(graph::Dataset::kCal, config);

  algo::DeltaSweepOptions sweep_options;
  sweep_options.min_delta = 16;
  sweep_options.max_delta = 1u << 20;
  sweep_options.ratio = 2.0;
  const auto sweep = algo::sweep_delta(bundle.graph, bundle.source, device,
                                       policy, sweep_options);

  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header({"delta", "iterations", "peak_frontier",
                       "avg_parallelism", "sim_seconds", "relaxations"});

  util::TextTable table;
  table.set_header({"delta", "iterations", "peak_frontier", "avg_par",
                    "sim_seconds", "improving_relax"});
  for (const auto& point : sweep.points) {
    table.add(point.delta, point.iterations, point.max_x2,
              point.average_parallelism, point.simulated_seconds,
              point.improving_relaxations);
    if (csv)
      csv->write(point.delta, point.iterations, point.max_x2,
                 point.average_parallelism, point.simulated_seconds,
                 point.improving_relaxations);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("time-minimizing delta: %llu\n",
              static_cast<unsigned long long>(sweep.best_delta));
  return 0;
}
