// Figure 1 — concurrency profiles: per-iteration available parallelism
// (X2) for (a) the baseline near-far SSSP at its time-minimizing delta
// and (b) the self-tuning controller, plus the density "inset" of each.
// Expectation: the baseline profile has a low typical value with a long
// burst tail; the controller's is concentrated near the set-point with
// a much smaller dynamic range.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/self_tuning.hpp"
#include "sssp/near_far.hpp"
#include "util/stats.hpp"

using namespace sssp;

namespace {

void print_profile(const std::string& label,
                   const algo::SsspResult& result, double set_point,
                   util::CsvWriter* csv) {
  std::vector<double> xs;
  xs.reserve(result.num_iterations());
  for (const auto& it : result.iterations)
    xs.push_back(static_cast<double>(it.x2));

  std::printf("-- %s: %zu iterations, avg parallelism %.0f\n", label.c_str(),
              result.num_iterations(), result.average_parallelism());

  // Downsampled series (the x-axis of Figure 1).
  const std::size_t stride = std::max<std::size_t>(1, xs.size() / 24);
  std::printf("   profile (every %zu-th iteration): ", stride);
  for (std::size_t i = 0; i < xs.size(); i += stride)
    std::printf("%.0f ", xs[i]);
  std::printf("\n");

  // Density inset.
  util::QuantileSummary summary;
  summary.add_all(xs);
  std::printf("   density  min/q1/med/q3/max = %s\n",
              summary.five_number_summary().c_str());
  std::printf("   dynamic range (p95/median): %.1f\n",
              summary.quantile(0.95) / std::max(1.0, summary.median()));

  if (csv) {
    for (std::size_t i = 0; i < xs.size(); ++i)
      csv->write(label, set_point, i, xs[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("dataset", "wiki", "cal | wiki (paper uses a scale-free net)");
  bench::BenchConfig config;
  if (bench::parse_common_flags(flags, "Figure 1: concurrency profiles",
                                config))
    return 0;

  bench::print_banner(
      "Figure 1 — concurrency profiles, baseline vs self-tuning",
      "Paper: baseline parallelism is usually low with a long burst tail;\n"
      "the self-tuning profile is higher on average, confined to a narrow\n"
      "band after the initial convergence phase.");

  const auto dataset = graph::parse_dataset(flags.get_string("dataset"));
  const auto bundle = bench::load_dataset(dataset, config);
  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;

  auto csv = bench::open_csv(config);
  if (csv) csv->write_header({"series", "set_point", "iteration", "x2"});

  const graph::Distance best_delta =
      bench::best_baseline_delta(bundle, device, governor);
  std::printf("dataset %s, baseline time-minimizing delta = %llu\n\n",
              bundle.name.c_str(),
              static_cast<unsigned long long>(best_delta));

  const auto baseline =
      algo::near_far(bundle.graph, bundle.source, {.delta = best_delta});
  print_profile("near-far baseline", baseline, 0.0, csv.get());

  const double set_point =
      bench::default_set_points(dataset, bundle.scale)[1];  // middle P
  core::SelfTuningOptions options;
  options.set_point = set_point;
  options.measure_controller_time = false;
  const auto tuned =
      core::self_tuning_sssp(bundle.graph, bundle.source, options);
  std::printf("\n");
  print_profile("self-tuning (P=" + std::to_string(set_point) + ")", tuned,
                set_point, csv.get());
  return 0;
}
