// Primitive microbenchmarks (google-benchmark): throughput of the
// building blocks — advance+filter, bisect, far-queue operations,
// partitioned pulls, SGD updates, and reference algorithms.
#include <benchmark/benchmark.h>

#include "core/adaptive_sgd.hpp"
#include "core/self_tuning.hpp"
#include "core/tunable_bfs.hpp"
#include "core/tunable_pagerank.hpp"
#include "core/partitioned_far_queue.hpp"
#include "frontier/engine.hpp"
#include "frontier/far_queue.hpp"
#include "graph/degree_stats.hpp"
#include "graph/rmat.hpp"
#include "graph/road.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"
#include "util/rng.hpp"

namespace {

using namespace sssp;

const graph::CsrGraph& rmat_graph() {
  static const graph::CsrGraph g = [] {
    graph::RmatOptions options;
    options.scale = 15;
    options.num_edges = 1u << 18;
    return graph::generate_rmat(options);
  }();
  return g;
}

const graph::CsrGraph& road_graph() {
  static const graph::CsrGraph g = [] {
    graph::RoadOptions options;
    options.rows = 256;
    options.cols = 256;
    return graph::generate_road(options);
  }();
  return g;
}

void BM_AdvanceFilter(benchmark::State& state) {
  const auto& g = rmat_graph();
  const auto src = graph::max_degree_vertex(g);
  for (auto _ : state) {
    frontier::NearFarEngine engine(g, src);
    // One full BFS-like sweep: advance everything each iteration.
    std::uint64_t edges = 0;
    while (!engine.frontier_empty()) {
      edges += engine.advance_and_filter().x2;
      engine.bisect(graph::kInfiniteDistance);
    }
    benchmark::DoNotOptimize(edges);
    state.counters["edges"] = static_cast<double>(edges);
  }
}
BENCHMARK(BM_AdvanceFilter)->Unit(benchmark::kMillisecond);

// The edge-balanced-partitioning claim (docs/PERFORMANCE.md): on a
// skewed-degree (R-MAT) graph, vertex-balanced chunks strand whole hubs
// in one chunk and serialize the iteration on it, while edge-balanced
// chunks cut the frontier by its degree prefix sums so every chunk owns
// ~equal edges. Mode 0 = serial reference, 1 = parallel vertex-balanced,
// 2 = parallel edge-balanced; all three produce bit-identical results.
// Pool size comes from SSSP_THREADS (or hardware).
void advance_sweep(benchmark::State& state, const graph::CsrGraph& g) {
  const auto src = graph::max_degree_vertex(g);
  frontier::NearFarEngine::Options options;
  options.parallel = state.range(0) != 0;
  options.parallel_threshold = 1;  // measure the pipeline, not the gate
  options.partition = state.range(0) == 1
                          ? frontier::NearFarEngine::Options::Partition::
                                kVertexBalanced
                          : frontier::NearFarEngine::Options::Partition::
                                kEdgeBalanced;
  for (auto _ : state) {
    frontier::NearFarEngine engine(g, src, options);
    std::uint64_t edges = 0;
    while (!engine.frontier_empty()) {
      edges += engine.advance_and_filter().x2;
      engine.bisect(graph::kInfiniteDistance);
    }
    benchmark::DoNotOptimize(edges);
    state.counters["edges"] = static_cast<double>(edges);
  }
}

void BM_AdvanceSweepRmat(benchmark::State& state) {
  advance_sweep(state, rmat_graph());
}
BENCHMARK(BM_AdvanceSweepRmat)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("mode")
    ->Unit(benchmark::kMillisecond);

void BM_AdvanceSweepRoad(benchmark::State& state) {
  advance_sweep(state, road_graph());
}
BENCHMARK(BM_AdvanceSweepRoad)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("mode")
    ->Unit(benchmark::kMillisecond);

void BM_NearFarFull(benchmark::State& state) {
  const auto& g = rmat_graph();
  const auto src = graph::max_degree_vertex(g);
  const auto delta = static_cast<graph::Distance>(state.range(0));
  for (auto _ : state) {
    const auto result = algo::near_far(g, src, {.delta = delta});
    benchmark::DoNotOptimize(result.distances.data());
  }
}
BENCHMARK(BM_NearFarFull)->Arg(8)->Arg(128)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_DijkstraRoad(benchmark::State& state) {
  const auto& g = road_graph();
  for (auto _ : state) {
    const auto dist = algo::dijkstra_distances(g, 0);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_DijkstraRoad)->Unit(benchmark::kMillisecond);

void BM_FarQueueDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<graph::Distance> dist(n);
  util::Xoshiro256 rng(1);
  for (auto& d : dist) d = rng.next_below(1u << 20);
  for (auto _ : state) {
    state.PauseTiming();
    frontier::FarQueue q;
    for (std::size_t i = 0; i < n; ++i)
      q.push(static_cast<graph::VertexId>(i), dist[i]);
    std::vector<graph::VertexId> out;
    out.reserve(n);
    state.ResumeTiming();
    q.drain_below(1u << 19, dist, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FarQueueDrain)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_PartitionedPush(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(2);
  std::vector<graph::Distance> dist(n);
  for (auto& d : dist) d = 1 + rng.next_below(1u << 20);
  for (auto _ : state) {
    core::PartitionedFarQueue q(1u << 10);
    // Tighten a few times so pushes exercise the binary search.
    for (int i = 0; i < 8; ++i) q.update_boundary(1000.0, 1.0);
    for (std::size_t i = 0; i < n; ++i)
      q.push(static_cast<graph::VertexId>(i), dist[i]);
    benchmark::DoNotOptimize(q.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PartitionedPush)->Arg(1 << 12)->Arg(1 << 16);

void BM_PartitionedPullVsFlatScan(benchmark::State& state) {
  // The efficiency claim of Section 4.6: pulling a bounded partition
  // versus scanning the whole queue. Lower time here = the win.
  const std::size_t n = 1 << 18;
  util::Xoshiro256 rng(3);
  std::vector<graph::Distance> dist(n);
  for (auto& d : dist) d = 1 + rng.next_below(1u << 20);
  const bool partitioned = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::PartitionedFarQueue q(partitioned ? (1u << 12) : (1u << 30));
    for (std::size_t i = 0; i < n; ++i)
      q.push(static_cast<graph::VertexId>(i), dist[i]);
    std::vector<graph::VertexId> out;
    state.ResumeTiming();
    out.clear();
    const auto scanned = q.pull_below(1u << 12, dist, out);
    benchmark::DoNotOptimize(scanned);
  }
}
BENCHMARK(BM_PartitionedPullVsFlatScan)->Arg(0)->Arg(1);

void BM_TunableBfs(benchmark::State& state) {
  const auto& g = rmat_graph();
  const auto src = graph::max_degree_vertex(g);
  core::TunableBfsOptions options;
  options.set_point = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto result = core::tunable_bfs(g, src, options);
    benchmark::DoNotOptimize(result.levels.data());
  }
}
BENCHMARK(BM_TunableBfs)->Arg(2000)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_TunablePageRank(benchmark::State& state) {
  const auto& g = rmat_graph();
  core::TunablePageRankOptions options;
  options.tolerance = 1e-6;
  options.set_point = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto result = core::tunable_pagerank(g, options);
    benchmark::DoNotOptimize(result.ranks.data());
  }
}
BENCHMARK(BM_TunablePageRank)->Arg(0)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_SelfTuningSssp(benchmark::State& state) {
  const auto& g = rmat_graph();
  const auto src = graph::max_degree_vertex(g);
  core::SelfTuningOptions options;
  options.set_point = static_cast<double>(state.range(0));
  options.measure_controller_time = false;
  for (auto _ : state) {
    const auto result = core::self_tuning_sssp(g, src, options);
    benchmark::DoNotOptimize(result.distances.data());
  }
}
BENCHMARK(BM_SelfTuningSssp)->Arg(2000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_AdaptiveSgdUpdate(benchmark::State& state) {
  core::AdaptiveSgd sgd;
  util::Xoshiro256 rng(4);
  double x = 1.0;
  for (auto _ : state) {
    x = 1.0 + static_cast<double>(rng.next_below(1000));
    benchmark::DoNotOptimize(sgd.update(x, 3.0 * x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveSgdUpdate);

}  // namespace

BENCHMARK_MAIN();
