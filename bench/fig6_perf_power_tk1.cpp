// Figure 6 — performance versus power on the Jetson TK1: baseline vs
// self-tuning at three set-points, with and without explicit DVFS.
// Expectation (Cal): most self-tuning points are faster AND cheaper than
// the baseline (above the x = y diagonal), with peak speedup at a middle
// set-point. Expectation (Wiki): a smooth speedup/power tradeoff;
// speedups may cost slightly more power than the baseline.
#include "bench/common.hpp"
#include "bench/perf_power.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig config;
  if (bench::parse_common_flags(
          flags, "Figure 6: performance versus power (TK1)", config))
    return 0;

  bench::print_banner(
      "Figure 6 — performance versus power (Jetson TK1)",
      "Paper: on Cal, self-tuning achieves up to ~40% speedup with ~10%\n"
      "power savings over the baseline; reducing frequency alone trades\n"
      "speed for power. On Wiki, tuning exposes a smooth tradeoff and\n"
      "combined with DVFS reaches savings DVFS alone cannot.");

  const auto device = sim::DeviceSpec::jetson_tk1();
  // The paper's explicit c/m settings on TK1 (852/924 shown in the text),
  // plus mid and low pairs from the board menus.
  const std::vector<sim::FrequencyPair> pairs{
      {852, 924}, {612, 792}, {324, 396}};
  auto csv = bench::open_csv(config);
  bench::run_perf_power_figure("Figure 6 (TK1)", device, pairs, config,
                               csv.get());
  return 0;
}
