// Figure 5 — efficacy of parallelism control: distributions of available
// parallelism for the self-tuning algorithm at three set-points versus
// the time-minimizing baseline, on the Cal road network.
// Expectation: at each set-point the controller holds the median of the
// steady phase near P with modest spread; the baseline's median is lower
// and its variance higher.
#include <cstdio>

#include "bench/common.hpp"
#include "core/self_tuning.hpp"
#include "sssp/multi_source.hpp"
#include "sssp/near_far.hpp"
#include "util/stats.hpp"

using namespace sssp;

namespace {

struct Row {
  std::string label;
  double set_point;
  util::QuantileSummary all;
  util::QuantileSummary steady;  // after the initial convergence quarter
};

Row summarize(const std::string& label, double set_point,
              const algo::MultiSourceSummary& summary) {
  Row row{label, set_point, {}, {}};
  // Per-source traces are concatenated; treat the first quarter of the
  // combined trace of each source as its convergence phase. With the
  // traces appended in order, approximate by skipping the first quarter
  // of each run using the per-source iteration counts.
  std::size_t offset = 0;
  for (const std::size_t count : summary.iteration_counts) {
    for (std::size_t i = 0; i < count; ++i) {
      const auto x2 =
          static_cast<double>(summary.all_iterations[offset + i].x2);
      row.all.add(x2);
      if (i >= count / 4) row.steady.add(x2);
    }
    offset += count;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("dataset", "cal", "cal | wiki (paper shows Cal)");
  flags.define("sources", "3", "number of SSSP sources to aggregate over");
  bench::BenchConfig config;
  if (bench::parse_common_flags(
          flags, "Figure 5: parallelism distributions vs set-point", config))
    return 0;

  bench::print_banner(
      "Figure 5 — efficacy of parallelism control",
      "Paper: for P in {10k, 20k, 40k} (rescaled to the bench graph), the\n"
      "controller keeps median parallelism near P with most mass nearby;\n"
      "the baseline's median is much lower and its variance much higher.");

  const auto dataset = graph::parse_dataset(flags.get_string("dataset"));
  const auto bundle = bench::load_dataset(dataset, config);
  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;

  std::vector<Row> rows;
  algo::MultiSourceOptions sources;
  sources.num_sources = static_cast<std::size_t>(flags.get_int("sources"));

  const graph::Distance best_delta =
      bench::best_baseline_delta(bundle, device, governor);
  rows.push_back(summarize(
      "near-far (delta=" + std::to_string(best_delta) + ")", 0.0,
      algo::run_multi_source(
          bundle.graph,
          [best_delta](const graph::CsrGraph& g, graph::VertexId src) {
            return algo::near_far(g, src, {.delta = best_delta});
          },
          sources)));

  for (const double p : bench::default_set_points(dataset, bundle.scale)) {
    rows.push_back(summarize(
        "self-tuning", p,
        algo::run_multi_source(
            bundle.graph,
            [p](const graph::CsrGraph& g, graph::VertexId src) {
              core::SelfTuningOptions options;
              options.set_point = p;
              options.measure_controller_time = false;
              return core::self_tuning_sssp(g, src, options);
            },
            sources)));
  }

  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header({"series", "set_point", "phase", "min", "q1", "median",
                       "q3", "max", "mean"});

  util::TextTable table;
  table.set_header({"series", "P", "phase", "min", "q1", "median", "q3",
                    "max", "mean"});
  for (const Row& row : rows) {
    for (const auto* phase : {"all", "steady"}) {
      const util::QuantileSummary& q =
          std::string(phase) == "all" ? row.all : row.steady;
      table.add(row.label, row.set_point, phase, q.min(), q.quantile(0.25),
                q.median(), q.quantile(0.75), q.max(), q.mean());
      if (csv)
        csv->write(row.label, row.set_point, phase, q.min(),
                   q.quantile(0.25), q.median(), q.quantile(0.75), q.max(),
                   q.mean());
    }
  }
  std::printf("dataset %s (n=%zu, m=%zu)\n\n%s\n", bundle.name.c_str(),
              bundle.graph.num_vertices(), bundle.graph.num_edges(),
              table.to_string().c_str());
  return 0;
}
