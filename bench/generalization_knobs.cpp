// Beyond the paper (its Section 6 future work): the same algorithmic-
// knob idea applied to two other frontier computations — BFS with a
// capped level width, and residual PageRank with a tuned activation
// threshold. For each, compares the uncontrolled burst profile with the
// controlled one at a set-point.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "core/tunable_bfs.hpp"
#include "core/tunable_pagerank.hpp"

using namespace sssp;

namespace {

struct Profile {
  std::size_t iterations = 0;
  std::uint64_t peak_x2 = 0;
  double avg_x2 = 0.0;
};

Profile profile_of(const std::vector<frontier::IterationStats>& iterations) {
  Profile p;
  p.iterations = iterations.size();
  double sum = 0.0;
  for (const auto& it : iterations) {
    p.peak_x2 = std::max(p.peak_x2, it.x2);
    sum += static_cast<double>(it.x2);
  }
  p.avg_x2 = iterations.empty() ? 0.0 : sum / static_cast<double>(p.iterations);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig config;
  if (bench::parse_common_flags(
          flags, "Generalization: the knob on BFS and PageRank", config))
    return 0;

  bench::print_banner(
      "Generalization — algorithmic knobs beyond SSSP",
      "The paper's conclusion proposes adapting the controller to other\n"
      "frontier computations. BFS: a set-point caps level-width bursts by\n"
      "postponing level slices. PageRank: a tuned residual threshold caps\n"
      "per-iteration push work. Both stay exact.");

  const auto bundle = bench::load_dataset(graph::Dataset::kWiki, config);
  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header(
        {"primitive", "mode", "set_point", "iterations", "peak_x2", "avg_x2"});

  util::TextTable table;
  table.set_header(
      {"primitive", "mode", "set_point", "iterations", "peak_x2", "avg_x2"});

  // --- BFS ---
  const double bfs_p = bench::default_set_points(graph::Dataset::kWiki,
                                                 bundle.scale)[0] / 4.0;
  core::TunableBfsOptions uncapped_bfs;
  uncapped_bfs.set_point = 1e12;
  const auto bfs_wild = core::tunable_bfs(bundle.graph, bundle.source,
                                          uncapped_bfs);
  core::TunableBfsOptions capped_bfs;
  capped_bfs.set_point = bfs_p;
  const auto bfs_tuned =
      core::tunable_bfs(bundle.graph, bundle.source, capped_bfs);
  for (const auto& [mode, run, p] :
       {std::tuple{"level-sync", &bfs_wild, 0.0},
        std::tuple{"tuned", &bfs_tuned, bfs_p}}) {
    const Profile prof = profile_of(run->iterations);
    table.add("bfs", mode, p, prof.iterations, prof.peak_x2, prof.avg_x2);
    if (csv)
      csv->write("bfs", mode, p, prof.iterations, prof.peak_x2, prof.avg_x2);
  }

  // --- PageRank ---
  core::TunablePageRankOptions wild_pr;
  wild_pr.tolerance = 1e-7;
  const auto pr_wild = core::tunable_pagerank(bundle.graph, wild_pr);
  core::TunablePageRankOptions tuned_pr = wild_pr;
  tuned_pr.set_point = bfs_p;
  const auto pr_tuned = core::tunable_pagerank(bundle.graph, tuned_pr);
  for (const auto& [mode, run, p] :
       {std::tuple{"unconstrained", &pr_wild, 0.0},
        std::tuple{"tuned", &pr_tuned, bfs_p}}) {
    const Profile prof = profile_of(run->iterations);
    table.add("pagerank", mode, p, prof.iterations, prof.peak_x2,
              prof.avg_x2);
    if (csv)
      csv->write("pagerank", mode, p, prof.iterations, prof.peak_x2,
                 prof.avg_x2);
  }

  std::printf("dataset %s (n=%zu, m=%zu)\n\n%s\n", bundle.name.c_str(),
              bundle.graph.num_vertices(), bundle.graph.num_edges(),
              table.to_string().c_str());
  std::printf("Expectation: the tuned rows cut peak_x2 by a large factor at\n"
              "the cost of more iterations; exactness is covered by tests.\n");
  return 0;
}
