// Batched multi-source benchmark (docs/PERFORMANCE.md, "Batched
// multi-source"): K = 8 queries against a resident graph, solved three
// ways on the pinned road and R-MAT shapes the regression harness
// tracks —
//   Sequential    K single-source near-far runs back to back (the
//                 pre-batching serve behavior);
//   Fused         one union-frontier run with K structure-of-arrays
//                 distance lanes (each CSR edge fetched once per
//                 union visit for all K sources);
//   Independent   K serial lanes work-stolen across the host pool.
// Every benchmark reports qps (queries per second) plus
// speedup_vs_sequential against a warmup-excluded sequential baseline
// measured once per graph (PASGAL idiom: one untimed warmup round,
// then averaged timed rounds). CI merges this binary's JSON into the
// BENCH_frontier.json artifact.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/rmat.hpp"
#include "graph/road.hpp"
#include "sssp/batch_engine.hpp"
#include "sssp/near_far.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace sssp;

constexpr std::size_t kNumSources = 8;

// The bench_tool "quick" pins: same shapes the committed regression
// baselines track.
const graph::CsrGraph& road_graph() {
  static const graph::CsrGraph g = [] {
    graph::RoadOptions options;
    options.rows = 288;
    options.cols = 288;
    options.seed = 7;
    return graph::generate_road(options);
  }();
  return g;
}

const graph::CsrGraph& rmat_graph() {
  static const graph::CsrGraph g = [] {
    graph::RmatOptions options;
    options.scale = 15;
    options.num_edges = 1u << 19;
    options.seed = 42;
    return graph::generate_rmat(options);
  }();
  return g;
}

// PASGAL-style hash-picked sources: deterministic, spread over the id
// space, skipping isolated vertices.
std::vector<graph::VertexId> pick_sources(const graph::CsrGraph& g) {
  std::vector<graph::VertexId> sources;
  util::SplitMix64 hash(0x9e3779b97f4a7c15ull);
  while (sources.size() < kNumSources) {
    const auto v =
        static_cast<graph::VertexId>(hash.next() % g.num_vertices());
    if (!g.neighbors(v).empty()) sources.push_back(v);
  }
  return sources;
}

void run_sequential(const graph::CsrGraph& g,
                    const std::vector<graph::VertexId>& sources) {
  for (const graph::VertexId source : sources) {
    const auto result = algo::near_far(g, source);
    benchmark::DoNotOptimize(result.distances.data());
  }
}

// Sequential reference time per graph: one untimed warmup round, then
// the average of 3 timed rounds. Cached so every strategy benchmark
// reports its speedup against the same number.
double sequential_seconds(const graph::CsrGraph& g,
                          const std::vector<graph::VertexId>& sources) {
  run_sequential(g, sources);  // warmup (excluded)
  util::WallTimer timer;
  constexpr int kRounds = 3;
  for (int r = 0; r < kRounds; ++r) run_sequential(g, sources);
  return timer.elapsed_seconds() / kRounds;
}

double road_sequential_seconds() {
  static const double s = sequential_seconds(road_graph(),
                                             pick_sources(road_graph()));
  return s;
}

double rmat_sequential_seconds() {
  static const double s = sequential_seconds(rmat_graph(),
                                             pick_sources(rmat_graph()));
  return s;
}

void report_counters(benchmark::State& state, double sequential_s) {
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(kNumSources * state.iterations()),
      benchmark::Counter::kIsRate);
  // kIsRate divides by total elapsed: (seq_s * iters) / elapsed =
  // seq_s / mean-iteration-time = aggregate speedup.
  state.counters["speedup_vs_sequential"] = benchmark::Counter(
      sequential_s * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void bench_sequential(benchmark::State& state, const graph::CsrGraph& g,
                      double sequential_s) {
  const auto sources = pick_sources(g);
  run_sequential(g, sources);  // warmup (excluded)
  for (auto _ : state) run_sequential(g, sources);
  report_counters(state, sequential_s);
}

void bench_batch(benchmark::State& state, const graph::CsrGraph& g,
                 algo::BatchStrategy strategy, double sequential_s) {
  const auto sources = pick_sources(g);
  algo::BatchOptions options;
  options.strategy = strategy;
  benchmark::DoNotOptimize(
      algo::run_batch(g, sources, options).lanes.data());  // warmup
  for (auto _ : state) {
    const auto result = algo::run_batch(g, sources, options);
    benchmark::DoNotOptimize(result.lanes.data());
  }
  report_counters(state, sequential_s);
}

void BM_MultiSourceSequentialRoad(benchmark::State& state) {
  bench_sequential(state, road_graph(), road_sequential_seconds());
}
void BM_MultiSourceFusedRoad(benchmark::State& state) {
  bench_batch(state, road_graph(), algo::BatchStrategy::kFused,
              road_sequential_seconds());
}
void BM_MultiSourceIndependentRoad(benchmark::State& state) {
  bench_batch(state, road_graph(), algo::BatchStrategy::kIndependent,
              road_sequential_seconds());
}
void BM_MultiSourceSequentialRmat(benchmark::State& state) {
  bench_sequential(state, rmat_graph(), rmat_sequential_seconds());
}
void BM_MultiSourceFusedRmat(benchmark::State& state) {
  bench_batch(state, rmat_graph(), algo::BatchStrategy::kFused,
              rmat_sequential_seconds());
}
void BM_MultiSourceIndependentRmat(benchmark::State& state) {
  bench_batch(state, rmat_graph(), algo::BatchStrategy::kIndependent,
              rmat_sequential_seconds());
}

BENCHMARK(BM_MultiSourceSequentialRoad)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiSourceFusedRoad)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiSourceIndependentRoad)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiSourceSequentialRmat)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiSourceFusedRmat)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiSourceIndependentRmat)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
