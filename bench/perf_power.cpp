#include "bench/perf_power.hpp"

#include <cstdio>
#include <memory>

#include "core/self_tuning.hpp"
#include "sssp/near_far.hpp"

namespace sssp::bench {
namespace {

struct GridPoint {
  std::string algorithm;  // "near-far" or "self-tuning"
  double set_point;       // 0 for the baseline
  std::string dvfs;       // "default" or "c/m"
  double seconds;
  double power_w;
  double energy_j;
};

}  // namespace

void run_perf_power_figure(const std::string& figure_name,
                           const sim::DeviceSpec& device,
                           const std::vector<sim::FrequencyPair>& pinned_pairs,
                           const BenchConfig& config, util::CsvWriter* csv) {
  if (csv)
    csv->write_header({"graph", "algorithm", "set_point", "dvfs", "seconds",
                       "power_w", "energy_j", "speedup", "relative_power"});

  for (const auto dataset : {graph::Dataset::kCal, graph::Dataset::kWiki}) {
    const auto bundle = load_dataset(dataset, config);

    // Policies: the board's own governor plus the explicit pairs.
    std::vector<std::unique_ptr<sim::DvfsPolicy>> policies;
    policies.push_back(std::make_unique<sim::DefaultGovernor>());
    for (const auto& pair : pinned_pairs)
      policies.push_back(std::make_unique<sim::PinnedDvfs>(pair));

    // Baseline algorithm: time-minimizing static delta (chosen under the
    // default governor, as a user without explicit DVFS control would).
    const graph::Distance best_delta =
        best_baseline_delta(bundle, device, *policies.front());
    const auto baseline_run =
        algo::near_far(bundle.graph, bundle.source, {.delta = best_delta});

    // Self-tuning runs at the three set-points.
    const auto set_points = default_set_points(dataset, bundle.scale);
    std::vector<algo::SsspResult> tuned_runs;
    for (const double p : set_points) {
      core::SelfTuningOptions options;
      options.set_point = p;
      tuned_runs.push_back(
          core::self_tuning_sssp(bundle.graph, bundle.source, options));
    }

    std::vector<GridPoint> grid;
    for (const auto& policy : policies) {
      const auto base_report =
          simulate(baseline_run, bundle.name, device, *policy);
      grid.push_back({"near-far", 0.0, policy->label(),
                      base_report.total_seconds, base_report.average_power_w,
                      base_report.energy_joules});
      for (std::size_t i = 0; i < tuned_runs.size(); ++i) {
        const auto report =
            simulate(tuned_runs[i], bundle.name, device, *policy);
        grid.push_back({"self-tuning", set_points[i], policy->label(),
                        report.total_seconds, report.average_power_w,
                        report.energy_joules});
      }
    }

    // Reference: baseline at default DVFS is the (1, 1) point.
    const GridPoint& reference = grid.front();

    std::printf("-- %s on %s (baseline delta=%llu, reference %.4fs @ %.2fW)\n",
                figure_name.c_str(), bundle.name.c_str(),
                static_cast<unsigned long long>(best_delta),
                reference.seconds, reference.power_w);
    util::TextTable table;
    table.set_header({"algorithm", "P", "dvfs", "seconds", "power_w",
                      "speedup", "rel_power", "rel_energy"});
    for (const GridPoint& point : grid) {
      const double speedup = reference.seconds / point.seconds;
      const double rel_power = point.power_w / reference.power_w;
      const double rel_energy = point.energy_j / reference.energy_j;
      table.add(point.algorithm, point.set_point, point.dvfs, point.seconds,
                point.power_w, speedup, rel_power, rel_energy);
      if (csv)
        csv->write(bundle.name, point.algorithm, point.set_point, point.dvfs,
                   point.seconds, point.power_w, point.energy_j, speedup,
                   rel_power);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
}

}  // namespace sssp::bench
