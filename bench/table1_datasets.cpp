// Table 1 — dataset characteristics. Prints the synthetic stand-ins'
// node/edge/degree statistics next to the paper's reported values.
#include <cstdio>

#include "bench/common.hpp"
#include "graph/degree_stats.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig config;
  if (bench::parse_common_flags(
          flags, "Table 1: data set characteristics (paper vs synthetic)",
          config))
    return 0;

  bench::print_banner(
      "Table 1 — data set characteristics",
      "Paper: Cal 1,890,815 nodes / 4,630,444 edges; Wiki 1,634,989 nodes /\n"
      "19,735,890 edges, max degree 4,970. Synthetic stand-ins are generated\n"
      "at --cal-scale/--wiki-scale of the paper size; shapes (degree tail,\n"
      "mean degree) should match the full-size originals.");

  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header({"graph", "scale", "nodes", "edges", "max_degree",
                       "mean_degree", "p99_degree", "scale_free"});

  util::TextTable table;
  table.set_header({"graph", "scale", "nodes", "edges", "max_deg", "mean_deg",
                    "p99_deg", "scale_free", "paper_nodes", "paper_edges"});

  for (const auto dataset : {graph::Dataset::kCal, graph::Dataset::kWiki}) {
    const auto bundle = bench::load_dataset(dataset, config);
    const auto stats = graph::compute_degree_stats(bundle.graph);
    const auto paper = graph::paper_table1_row(dataset);
    table.add(bundle.name, bundle.scale, stats.num_vertices, stats.num_edges,
              stats.max_degree, stats.mean_degree, stats.p99_degree,
              graph::looks_scale_free(stats) ? "yes" : "no", paper.nodes,
              paper.edges);
    if (csv)
      csv->write(bundle.name, bundle.scale, stats.num_vertices,
                 stats.num_edges, stats.max_degree, stats.mean_degree,
                 stats.p99_degree, graph::looks_scale_free(stats));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
