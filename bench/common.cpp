#include "bench/common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sssp/delta_sweep.hpp"
#include "util/thread_pool.hpp"

namespace sssp::bench {

namespace {

// Written by parse_common_flags, flushed by the atexit hook — every
// bench binary gets --metrics-out/--trace-out without touching its main.
BenchConfig g_obs_sinks;

void write_observability_sinks() {
  if (!g_obs_sinks.metrics_path.empty()) {
    std::ofstream out(g_obs_sinks.metrics_path, std::ios::binary);
    if (out) {
      out << (g_obs_sinks.metrics_format == "prometheus"
                  ? obs::MetricsRegistry::global().to_prometheus()
                  : obs::MetricsRegistry::global().to_json() + "\n");
      std::printf("wrote metrics to %s\n", g_obs_sinks.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n",
                   g_obs_sinks.metrics_path.c_str());
    }
  }
  if (!g_obs_sinks.trace_path.empty()) {
    try {
      obs::Tracer::global().save(g_obs_sinks.trace_path);
      std::printf("wrote trace to %s\n", g_obs_sinks.trace_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
    }
  }
}

}  // namespace

bool parse_common_flags(util::Flags& flags, const std::string& description,
                        BenchConfig& config) {
  flags.define("cal-scale", "0.0625", "Cal road network scale (1.0 = paper size)");
  flags.define("wiki-scale", "0.015625", "Wiki RMAT scale (1.0 = paper size)");
  flags.define("seed", "42", "generator seed");
  flags.define("csv", "", "also write results to this CSV file");
  flags.define("metrics-out", "", "write the metrics registry here at exit");
  flags.define("metrics-format", "json",
               "metrics export format: json | prometheus");
  flags.define("trace-out", "",
               "write a Chrome trace-event JSON here at exit");
  flags.define("threads", "0",
               "thread pool size (0 = $SSSP_THREADS or hardware default); "
               "results are bit-identical at any value");
  if (flags.handle_help(description)) return true;
  flags.check_unknown();
  const std::int64_t threads = flags.get_int("threads");
  if (threads < 0)
    throw std::invalid_argument("--threads must be >= 0");
  util::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
  config.threads = util::ThreadPool::global().size();
  config.cal_scale = flags.get_double("cal-scale");
  config.wiki_scale = flags.get_double("wiki-scale");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.csv_path = flags.get_string("csv");
  config.metrics_path = flags.get_string("metrics-out");
  config.metrics_format = flags.get_string("metrics-format");
  config.trace_path = flags.get_string("trace-out");
  if (!config.metrics_path.empty() || !config.trace_path.empty()) {
    g_obs_sinks = config;
    obs::set_metrics_enabled(!config.metrics_path.empty());
    obs::set_trace_enabled(!config.trace_path.empty());
    // Construct the singletons BEFORE registering the exit hook:
    // function-local statics are destroyed in reverse construction
    // order interleaved with atexit handlers, so touching them here
    // guarantees they are still alive when the hook runs.
    obs::MetricsRegistry::global();
    obs::Tracer::global();
    std::atexit(write_observability_sinks);
  }
  return false;
}

DatasetBundle load_dataset(graph::Dataset dataset, const BenchConfig& config) {
  DatasetBundle bundle;
  bundle.id = dataset;
  bundle.name = graph::dataset_name(dataset);
  bundle.scale =
      dataset == graph::Dataset::kCal ? config.cal_scale : config.wiki_scale;
  bundle.graph = graph::make_dataset(
      dataset, {.scale = bundle.scale, .seed = config.seed});
  bundle.source = graph::default_source(dataset, bundle.graph);
  return bundle;
}

std::vector<double> default_set_points(graph::Dataset dataset, double scale) {
  if (dataset == graph::Dataset::kCal) {
    // Paper Figure 5/6: P in {10k, 20k, 40k}; road-network frontiers
    // scale like the wavefront perimeter ~ sqrt(n).
    const double factor = std::sqrt(scale);
    return {10000.0 * factor, 20000.0 * factor, 40000.0 * factor};
  }
  // Wiki: the paper highlights P = 600k. The synthetic R-MAT stand-in
  // has a smaller weighted diameter than real Wiki, so its natural
  // concurrency per edge is higher; anchor the menu to edge-count
  // fractions that bracket the baseline's average parallelism, the same
  // relative position the paper's menu occupies.
  const double edges = 19735890.0 * scale;
  return {edges / 16.0, edges / 4.0, edges / 2.0};
}

graph::Distance best_baseline_delta(const DatasetBundle& data,
                                    const sim::DeviceSpec& device,
                                    const sim::DvfsPolicy& policy) {
  algo::DeltaSweepOptions options;
  options.min_delta = 1;
  options.max_delta = 1u << 20;
  options.ratio = 2.0;
  return algo::sweep_delta(data.graph, data.source, device, policy, options)
      .best_delta;
}

sim::RunReport simulate(const algo::SsspResult& result,
                        const std::string& dataset,
                        const sim::DeviceSpec& device,
                        const sim::DvfsPolicy& policy) {
  sim::SimulateOptions options;
  options.keep_iteration_reports = false;
  return sim::simulate_run(device, policy, result.to_workload(dataset),
                           options);
}

void print_banner(const std::string& title, const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("--------------------------------------------------------------\n");
  std::printf("%s\n\n", expectation.c_str());
}

std::unique_ptr<util::CsvWriter> open_csv(const BenchConfig& config) {
  if (config.csv_path.empty()) return nullptr;
  return std::make_unique<util::CsvWriter>(config.csv_path);
}

}  // namespace sssp::bench
