// Shared driver for Figures 6 and 7 (performance versus power on a
// device): runs the baseline near-far at its time-minimizing delta and
// the self-tuning algorithm at three set-points, each under the default
// DVFS governor and under explicit pinned frequency pairs, and reports
// speedup and relative power against the baseline-at-default-DVFS.
#pragma once

#include <string>
#include <vector>

#include "bench/common.hpp"

namespace sssp::bench {

// Runs both datasets through the grid and prints/CSVs the figure.
void run_perf_power_figure(const std::string& figure_name,
                           const sim::DeviceSpec& device,
                           const std::vector<sim::FrequencyPair>& pinned_pairs,
                           const BenchConfig& config, util::CsvWriter* csv);

}  // namespace sssp::bench
