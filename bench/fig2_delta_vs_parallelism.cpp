// Figure 2 — delta versus average parallelism, for both datasets.
// Expectation: average parallelism (mean X2 over iterations) rises
// monotonically with delta until it saturates at the graph's natural
// concurrency.
#include <cstdio>

#include "bench/common.hpp"
#include "sssp/delta_sweep.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig config;
  if (bench::parse_common_flags(flags, "Figure 2: delta versus parallelism",
                                config))
    return 0;

  bench::print_banner(
      "Figure 2 — delta versus average parallelism",
      "Paper: small delta limits per-phase work, so average parallelism is\n"
      "low; it grows with delta for both Cal and Wiki until saturation.");

  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::PinnedDvfs policy(device.max_frequencies());

  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header({"graph", "delta", "avg_parallelism", "iterations"});

  for (const auto dataset : {graph::Dataset::kCal, graph::Dataset::kWiki}) {
    const auto bundle = bench::load_dataset(dataset, config);
    algo::DeltaSweepOptions sweep_options;
    sweep_options.min_delta = 1;
    sweep_options.max_delta = 1u << 18;
    sweep_options.ratio = 4.0;
    const auto sweep = algo::sweep_delta(bundle.graph, bundle.source, device,
                                         policy, sweep_options);

    std::printf("-- %s (n=%zu, m=%zu)\n", bundle.name.c_str(),
                bundle.graph.num_vertices(), bundle.graph.num_edges());
    util::TextTable table;
    table.set_header({"delta", "avg_parallelism", "iterations"});
    for (const auto& point : sweep.points) {
      table.add(point.delta, point.average_parallelism, point.iterations);
      if (csv)
        csv->write(bundle.name, point.delta, point.average_parallelism,
                   point.iterations);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
