// Figure 7 — performance versus power on the Jetson TX1 (same grid as
// Figure 6 on the newer board).
// Expectation: similar speedups/power reductions as TK1 on Cal; on Wiki
// the points cluster more tightly as P varies (better DVFS and lower GPU
// utilization on the newer board), tracking the paper's observation.
#include "bench/common.hpp"
#include "bench/perf_power.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig config;
  if (bench::parse_common_flags(
          flags, "Figure 7: performance versus power (TX1)", config))
    return 0;

  bench::print_banner(
      "Figure 7 — performance versus power (Jetson TX1)",
      "Paper: self-tuning provides similar speedups and power reductions\n"
      "as on TK1 for Cal but more closely follows DVFS for Wiki; points\n"
      "cluster more as P varies due to the TX1's improved DVFS set-points.");

  const auto device = sim::DeviceSpec::jetson_tx1();
  const std::vector<sim::FrequencyPair> pairs{
      {998, 1600}, {614, 1065}, {307, 665}};
  auto csv = bench::open_csv(config);
  bench::run_perf_power_figure("Figure 7 (TX1)", device, pairs, config,
                               csv.get());
  return 0;
}
