// Figure 8 — variation in average power as the parallelism set-point P
// varies, under the board's default DVFS mode.
// Expectation: average board power rises with P (more cores busy, higher
// governor frequencies), demonstrating that P is a usable power knob.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "core/self_tuning.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("points", "8", "number of set-points in the sweep");
  bench::BenchConfig config;
  if (bench::parse_common_flags(
          flags, "Figure 8: average power versus set-point", config))
    return 0;

  bench::print_banner(
      "Figure 8 — average power versus parallelism set-point",
      "Paper: with the hardware in its default DVFS mode, average power\n"
      "correlates with P — evidence that the algorithmic knob could drive\n"
      "a power-cap feedback loop (see also the power_capping example).");

  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;
  const auto points = static_cast<std::size_t>(flags.get_int("points"));

  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header(
        {"graph", "set_point", "avg_power_w", "sim_seconds", "avg_par"});

  for (const auto dataset : {graph::Dataset::kCal, graph::Dataset::kWiki}) {
    const auto bundle = bench::load_dataset(dataset, config);
    // Geometric sweep around the dataset's default set-point range.
    const auto defaults = bench::default_set_points(dataset, bundle.scale);
    const double lo = defaults.front() / 2.0;
    const double hi = defaults.back() * 2.0;
    const double ratio =
        std::pow(hi / lo, 1.0 / static_cast<double>(points - 1));

    std::printf("-- %s\n", bundle.name.c_str());
    util::TextTable table;
    table.set_header({"P", "avg_power_w", "sim_seconds", "avg_parallelism"});
    double p = lo;
    for (std::size_t i = 0; i < points; ++i, p *= ratio) {
      core::SelfTuningOptions options;
      options.set_point = p;
      const auto run =
          core::self_tuning_sssp(bundle.graph, bundle.source, options);
      const auto report = bench::simulate(run, bundle.name, device, governor);
      table.add(p, report.average_power_w, report.total_seconds,
                run.average_parallelism());
      if (csv)
        csv->write(bundle.name, p, report.average_power_w,
                   report.total_seconds, run.average_parallelism());
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
