// Ablation bench (DESIGN.md Section 6): which pieces of the controller
// matter? Toggles Algorithm 1's adaptive learning rate, the downward
// rebalancer, and the Eq. 7 partition maintenance, and reports runtime,
// parallelism tracking error, and rebalance work for each variant.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "core/self_tuning.hpp"

using namespace sssp;

namespace {

struct Variant {
  const char* name;
  bool adaptive;
  bool rebalance_down;
  bool partition_boundaries;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig config;
  if (bench::parse_common_flags(flags, "Controller ablation study", config))
    return 0;

  bench::print_banner(
      "Ablation — controller components",
      "full = the paper's controller. Variants disable Algorithm 1's\n"
      "adaptive learning rate (fixed-rate SGD), the downward rebalancer\n"
      "(delta can only grow), or Eq. 7 partition maintenance (whole-queue\n"
      "scans). Expect the full controller to track the set-point best and\n"
      "no-partitioning to pay heavily in rebalance work.");

  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;
  auto csv = bench::open_csv(config);
  if (csv)
    csv->write_header({"graph", "variant", "sim_seconds", "avg_power_w",
                       "tracking_rmse", "rebalance_items", "iterations"});

  for (const auto dataset : {graph::Dataset::kCal, graph::Dataset::kWiki}) {
  const auto bundle = bench::load_dataset(dataset, config);
  const double p = bench::default_set_points(dataset, bundle.scale)[1];

  const Variant variants[] = {
      {"full", true, true, true},
      {"no-adaptive-lr", false, true, true},
      {"no-rebalance-down", true, false, true},
      {"no-partitioning", true, true, false},
  };

  util::TextTable table;
  table.set_header({"variant", "sim_seconds", "avg_power_w",
                    "tracking_rmse/P", "rebalance_items", "iterations"});
  for (const Variant& variant : variants) {
    core::SelfTuningOptions options;
    options.set_point = p;
    options.adaptive_learning_rate = variant.adaptive;
    options.rebalance_down = variant.rebalance_down;
    options.partition_boundaries = variant.partition_boundaries;
    const auto run =
        core::self_tuning_sssp(bundle.graph, bundle.source, options);
    const auto report = bench::simulate(run, bundle.name, device, governor);

    // Set-point tracking error over the steady phase, relative to P.
    double sum_sq = 0.0;
    std::size_t count = 0;
    std::uint64_t rebalance = 0;
    for (std::size_t i = 0; i < run.num_iterations(); ++i) {
      rebalance += run.iterations[i].rebalance_items;
      if (i < run.num_iterations() / 4) continue;
      const double err = (static_cast<double>(run.iterations[i].x2) - p) / p;
      sum_sq += err * err;
      ++count;
    }
    const double rmse = count ? std::sqrt(sum_sq / count) : 0.0;

    table.add(variant.name, report.total_seconds, report.average_power_w,
              rmse, rebalance, run.num_iterations());
    if (csv)
      csv->write(bundle.name, variant.name, report.total_seconds,
                 report.average_power_w, rmse, rebalance,
                 run.num_iterations());
  }
  std::printf("dataset %s, P=%.0f\n\n%s\n", bundle.name.c_str(), p,
              table.to_string().c_str());
  }
  return 0;
}
