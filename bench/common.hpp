// Shared plumbing for the per-figure benchmark binaries: dataset
// construction at a benchmark scale, the time-minimizing baseline delta,
// default set-point menus, and consistent terminal/CSV output.
//
// Scaling note: bench defaults run the synthetic datasets well below
// paper size so the whole harness finishes in minutes on a laptop
// (Cal at 1/16, Wiki at 1/64 — about 300 k edges each). Parallelism
// set-points are rescaled with the graphs: a road network's sustainable
// frontier grows like the wavefront perimeter (~sqrt(n)), a scale-free
// network's like n. Pass --cal-scale/--wiki-scale 1.0 to reproduce at
// full paper size.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "sim/run.hpp"
#include "sssp/result.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"

namespace sssp::bench {

struct BenchConfig {
  double cal_scale = 1.0 / 16.0;
  double wiki_scale = 1.0 / 64.0;
  std::uint64_t seed = 42;
  std::string csv_path;  // empty = terminal only
  // Observability sinks (empty = disabled). When set, the matching
  // runtime gate is enabled for the whole benchmark process and the
  // file is written at exit.
  std::string metrics_path;
  std::string metrics_format = "json";  // json | prometheus
  std::string trace_path;
  // Effective thread-pool size after --threads was applied (0 = flag
  // left at default and no SSSP_THREADS override).
  std::size_t threads = 0;
};

// Registers the common flags on `flags` and parses them. Exits the
// program (returning true) if --help was requested.
bool parse_common_flags(util::Flags& flags, const std::string& description,
                        BenchConfig& config);

struct DatasetBundle {
  std::string name;
  graph::Dataset id;
  graph::CsrGraph graph;
  graph::VertexId source;
  double scale;
};

DatasetBundle load_dataset(graph::Dataset dataset, const BenchConfig& config);

// The paper's set-points rescaled to the benchmark graph size.
std::vector<double> default_set_points(graph::Dataset dataset, double scale);

// Time-minimizing static delta for the baseline (paper Section 5:
// "the baseline uses a delta that minimizes execution time").
graph::Distance best_baseline_delta(const DatasetBundle& data,
                                    const sim::DeviceSpec& device,
                                    const sim::DvfsPolicy& policy);

// Runs the recorded workload through the simulator.
sim::RunReport simulate(const algo::SsspResult& result,
                        const std::string& dataset,
                        const sim::DeviceSpec& device,
                        const sim::DvfsPolicy& policy);

// Prints the figure banner: what the paper shows, what to expect here.
void print_banner(const std::string& title, const std::string& expectation);

// Opens the CSV sink if --csv was given.
std::unique_ptr<util::CsvWriter> open_csv(const BenchConfig& config);

}  // namespace sssp::bench
