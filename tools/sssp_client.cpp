// sssp_client — seeded load generator and correctness harness for
// sssp_server (docs/SERVING.md).
//
// Spawns the server over stdin/stdout pipes (--server + --graph) or
// connects to a running TCP server (--connect PORT), performs the
// "info" handshake to learn the graph shape and queue capacity, then
// drives a reproducible mixed workload: hot repeated sources (cache
// hits), cold uniform sources, and a slice with tiny deadlines that
// must expire. The send window defaults to 4x the server's queue
// capacity, so the admission queue genuinely overflows and the shed
// path is exercised, not just declared.
//
// Client-side robustness under test:
//   - overloaded / shutting_down responses retry with exponential
//     backoff + jitter, honoring the server's retry_after_ms hint;
//   - unparseable responses (the serve.response.torn_write drill) are
//     recovered by a pending-timeout resend under a fresh request id;
//   - every terminal `ok` must be verified AND certified, and repeated
//     queries of the same source must return identical dist_checksums.
//
// --chaos arms serve.* failpoints on the spawned server (queue-full
// bursts, handler crashes, torn writes, cache poisoning) with the
// workload seed, and relaxes exactly one rule: `error` responses are
// tolerated (crashes and poisoned-cache catches are *expected* there).
//
// On completion the spawned server gets SIGTERM; the client reads the
// response stream to EOF and requires exit status 0 — a graceful drain
// is part of PASS. Prints "client: PASS" or "client: FAIL <why>".
//
// --supervise N spawns the server in crash-isolated multi-process mode
// (one supervisor + N worker processes over a shared mmap'd graph),
// and --kill-workers-ms M turns the run into a kill-tolerance drill:
// every M ms a uniformly random *worker* (direct child of the server
// process) is SIGKILLed mid-load. The supervisor must redispatch or
// shed every orphaned query — the client keeps all of its invariants
// (exactly one response per id, every ok certified, checksums stable)
// and additionally asserts that no worker process outlives the server.
#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "tools/tool_common.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace sssp;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point from) {
  return std::chrono::duration<double, std::milli>(Clock::now() - from)
      .count();
}

// Bidirectional transport: newline-delimited documents over pipes, or
// length-prefixed frames over TCP. Extraction is uniform — a torn
// response surfaces as a document that fails parse_response, never as a
// desynced stream (both torn-write flavors preserve framing).
struct Transport {
  bool framed = false;
  int read_fd = -1;
  int write_fd = -1;
  std::string buffer;
  bool closed = false;

  void send(const std::string& doc) const {
    if (framed) {
      serve::write_frame(write_fd, doc);
      return;
    }
    std::string line = doc;
    line.push_back('\n');
    std::size_t total = 0;
    while (total < line.size()) {
      const ssize_t n =
          ::write(write_fd, line.data() + total, line.size() - total);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw serve::ServeError(std::string("write: ") +
                                std::strerror(errno));
      }
      total += static_cast<std::size_t>(n);
    }
  }

  // Reads whatever is available within timeout_ms into the buffer.
  void pump(int timeout_ms) {
    if (closed) return;
    pollfd pfd{};
    pfd.fd = read_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return;
    char chunk[4096];
    const ssize_t n = ::read(read_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) return;
      closed = true;
      return;
    }
    if (n == 0) {
      closed = true;
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  // Extracts one complete document if buffered. Throws ServeError on a
  // frame-length prefix past the protocol limit (stream corrupt).
  bool next_document(std::string& doc) {
    if (!framed) {
      const std::size_t pos = buffer.find('\n');
      if (pos == std::string::npos) return false;
      doc.assign(buffer, 0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    if (buffer.size() < 4) return false;
    const auto* b = reinterpret_cast<const unsigned char*>(buffer.data());
    const std::uint32_t length =
        static_cast<std::uint32_t>(b[0]) |
        (static_cast<std::uint32_t>(b[1]) << 8) |
        (static_cast<std::uint32_t>(b[2]) << 16) |
        (static_cast<std::uint32_t>(b[3]) << 24);
    if (length > serve::kMaxFrameBytes)
      throw serve::ServeError("response frame exceeds protocol limit");
    if (buffer.size() < 4 + static_cast<std::size_t>(length)) return false;
    doc.assign(buffer, 4, length);
    buffer.erase(0, 4 + static_cast<std::size_t>(length));
    return true;
  }
};

// One logical query's lifecycle across retries and resends.
struct Query {
  graph::VertexId source = 0;
  double deadline_ms = 0.0;  // > 0: the tiny must-expire slice
  int sends = 0;
  int shed_retries = 0;
  bool in_flight = false;
  bool done = false;
  std::string current_id;
  Clock::time_point first_sent{};
  Clock::time_point last_sent{};
  Clock::time_point ready_at{};  // backoff gate for the next send
  serve::Status outcome = serve::Status::kOk;
};

struct Totals {
  std::uint64_t ok = 0, cache_hits = 0, expired = 0, shed_seen = 0,
                shed_final = 0, errors = 0, invalid = 0, torn = 0,
                resends = 0, stray = 0, lost = 0, checksum_mismatch = 0,
                uncertified = 0;
};

// Direct children of `parent`, via /proc/<pid>/stat field 4. The comm
// field (2) may itself contain spaces or parens, so ppid is parsed
// after the *last* ')'.
std::vector<pid_t> children_of(pid_t parent) {
  std::vector<pid_t> kids;
  DIR* proc = ::opendir("/proc");
  if (proc == nullptr) return kids;
  while (const dirent* entry = ::readdir(proc)) {
    char* end = nullptr;
    const long pid = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0' || pid <= 0) continue;
    std::ifstream stat("/proc/" + std::string(entry->d_name) + "/stat");
    std::string line;
    if (!std::getline(stat, line)) continue;
    const std::size_t close = line.rfind(')');
    if (close == std::string::npos) continue;
    // After ')': " <state> <ppid> ..."
    long ppid = -1;
    char state = '\0';
    if (std::sscanf(line.c_str() + close + 1, " %c %ld", &state, &ppid) != 2)
      continue;
    if (ppid == static_cast<long>(parent) && state != 'Z')
      kids.push_back(static_cast<pid_t>(pid));
  }
  ::closedir(proc);
  return kids;
}

// Worker processes are spawned as `<server_path> --in <graph> ...
// --worker-fd N`; a leak scan looks for live processes whose cmdline
// carries every marker (args are NUL-separated, so search the raw
// buffer). Matching the graph path too keeps concurrent test runs of
// the same binary from tripping each other's scans.
std::vector<pid_t> find_worker_processes(
    const std::vector<std::string>& markers) {
  std::vector<pid_t> found;
  DIR* proc = ::opendir("/proc");
  if (proc == nullptr) return found;
  while (const dirent* entry = ::readdir(proc)) {
    char* end = nullptr;
    const long pid = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0' || pid <= 0) continue;
    std::ifstream f("/proc/" + std::string(entry->d_name) + "/cmdline",
                    std::ios::binary);
    std::string cmdline((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    const bool all_match =
        std::all_of(markers.begin(), markers.end(),
                    [&](const std::string& m) {
                      return cmdline.find(m) != std::string::npos;
                    });
    if (!cmdline.empty() && all_match)
      found.push_back(static_cast<pid_t>(pid));
  }
  ::closedir(proc);
  return found;
}

std::string make_query_doc(const std::string& id, const Query& q) {
  std::string doc = "{\"id\":\"" + id +
                    "\",\"cmd\":\"query\",\"source\":" +
                    std::to_string(q.source);
  if (q.deadline_ms > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", q.deadline_ms);
    doc += std::string(",\"deadline_ms\":") + buf;
  }
  doc += "}";
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("server", "", "path to the sssp_server binary (pipe mode)");
  flags.define("graph", "", "graph file handed to the spawned server");
  flags.define("connect", "0",
               "connect to a running TCP server on this port instead of "
               "spawning one");
  flags.define("queries", "200", "logical queries in the workload");
  flags.define("hot-fraction", "0.6",
               "fraction of queries drawn from the hot source set "
               "(repeats -> cache hits)");
  flags.define("hot-sources", "4", "size of the hot source set");
  flags.define("expired-fraction", "0.0",
               "fraction of queries sent with a ~0.01 ms deadline that "
               "must expire server-side");
  flags.define("seed", "1", "workload + chaos seed");
  flags.define("window", "0",
               "max outstanding requests (0 = 4x the server's queue "
               "capacity — guarantees admission-queue overflow)");
  flags.define("max-retries", "6",
               "retries per query on overloaded/shutting_down");
  flags.define("backoff-ms", "5",
               "base retry backoff (exponential, jittered, and never "
               "below the server's retry_after_ms hint)");
  flags.define("resend-ms", "2000",
               "pending-timeout: a query unanswered this long is resent "
               "under a fresh id (torn-response recovery)");
  flags.define("timeout-s", "120", "whole-run watchdog");
  flags.define("chaos", "false",
               "arm serve.* failpoints on the spawned server (crashes, "
               "queue-full bursts, torn writes, cache poisoning)");
  flags.define("queue-capacity", "16", "spawned server: admission capacity");
  flags.define("shed-policy", "reject-new",
               "spawned server: reject-new | drop-oldest");
  flags.define("workers", "2", "spawned server: concurrent queries");
  flags.define("cache-entries", "32", "spawned server: result cache size");
  flags.define("drain-ms", "5000", "spawned server: drain budget");
  flags.define("server-report-out", "",
               "spawned server: --report-out passthrough");
  flags.define("supervise", "0",
               "spawned server: run crash-isolated with this many worker "
               "processes (0 = classic single-process server)");
  flags.define("redispatch-budget", "6",
               "spawned supervisor: crash re-dispatches per query");
  flags.define("restart-backoff-ms", "100",
               "spawned supervisor: base worker restart backoff");
  flags.define("crash-loop-k", "0",
               "spawned supervisor: crash-loop breaker threshold "
               "(0 = server default; raise it for kill drills, where "
               "induced crashes are the point)");
  flags.define("kill-workers-ms", "0",
               "chaos: SIGKILL a random worker process this often "
               "(requires --supervise and a spawned server)");
  if (flags.handle_help(
          "drive a seeded mixed workload against sssp_server and check "
          "every robustness invariant (docs/SERVING.md)"))
    return 0;
  flags.check_unknown();

  const std::int64_t connect_port = flags.get_int("connect");
  const std::string server_path = flags.get_string("server");
  const std::string graph_path = flags.get_string("graph");
  const std::size_t num_queries =
      static_cast<std::size_t>(std::max<std::int64_t>(
          1, flags.get_int("queries")));
  const double hot_fraction = flags.get_double("hot-fraction");
  const std::size_t hot_sources = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("hot-sources")));
  const double expired_fraction = flags.get_double("expired-fraction");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed"));
  const int max_retries = static_cast<int>(flags.get_int("max-retries"));
  const double backoff_ms = flags.get_double("backoff-ms");
  const double resend_ms = flags.get_double("resend-ms");
  const double timeout_s = flags.get_double("timeout-s");
  const bool chaos = flags.get_bool("chaos");
  const std::int64_t supervise = flags.get_int("supervise");
  const double kill_workers_ms = flags.get_double("kill-workers-ms");
  if (kill_workers_ms > 0 && (supervise <= 0 || connect_port > 0)) {
    std::fprintf(stderr,
                 "--kill-workers-ms needs --supervise N and a spawned "
                 "server (not --connect)\n");
    return 2;
  }

  ::signal(SIGPIPE, SIG_IGN);

  Transport transport;
  pid_t server_pid = -1;
  try {
    if (connect_port > 0) {
      transport.framed = true;
      transport.read_fd = transport.write_fd =
          serve::connect_tcp(static_cast<std::uint16_t>(connect_port));
    } else {
      if (server_path.empty() || graph_path.empty()) {
        std::fprintf(stderr,
                     "need --server and --graph (or --connect PORT); "
                     "see --help\n");
        return 2;
      }
      std::vector<std::string> args = {
          server_path, "--in", graph_path, "--mode", "pipe",
          "--queue-capacity", std::to_string(flags.get_int("queue-capacity")),
          "--shed-policy", flags.get_string("shed-policy"),
          "--workers", std::to_string(flags.get_int("workers")),
          "--cache-entries", std::to_string(flags.get_int("cache-entries")),
          "--drain-ms", std::to_string(flags.get_int("drain-ms"))};
      if (supervise > 0) {
        args.push_back("--supervise");
        args.push_back(std::to_string(supervise));
        args.push_back("--redispatch-budget");
        args.push_back(std::to_string(flags.get_int("redispatch-budget")));
        args.push_back("--restart-backoff-ms");
        args.push_back(std::to_string(flags.get_int("restart-backoff-ms")));
        if (flags.get_int("crash-loop-k") > 0) {
          args.push_back("--crash-loop-k");
          args.push_back(std::to_string(flags.get_int("crash-loop-k")));
        }
      }
      if (const auto rpt = flags.get_string("server-report-out");
          !rpt.empty()) {
        args.push_back("--report-out");
        args.push_back(rpt);
      }
      if (chaos) {
        const std::string s = std::to_string(seed);
        args.push_back("--failpoint");
        args.push_back("serve.queue.full=0.08," + s +
                       ";serve.handler.crash=0.05," + s +
                       ";serve.response.torn_write=0.05," + s +
                       ";serve.cache.flip=0.15," + s);
      }
      int to_server[2], from_server[2];
      if (::pipe(to_server) < 0 || ::pipe(from_server) < 0)
        throw serve::ServeError(std::string("pipe: ") +
                                std::strerror(errno));
      server_pid = ::fork();
      if (server_pid < 0)
        throw serve::ServeError(std::string("fork: ") +
                                std::strerror(errno));
      if (server_pid == 0) {
        ::dup2(to_server[0], STDIN_FILENO);
        ::dup2(from_server[1], STDOUT_FILENO);
        ::close(to_server[0]);
        ::close(to_server[1]);
        ::close(from_server[0]);
        ::close(from_server[1]);
        std::vector<char*> cargv;
        cargv.reserve(args.size() + 1);
        for (std::string& a : args) cargv.push_back(a.data());
        cargv.push_back(nullptr);
        ::execv(cargv[0], cargv.data());
        std::fprintf(stderr, "execv %s: %s\n", cargv[0],
                     std::strerror(errno));
        ::_exit(127);
      }
      ::close(to_server[0]);
      ::close(from_server[1]);
      transport.write_fd = to_server[1];
      transport.read_fd = from_server[0];
    }
  } catch (const serve::ServeError& e) {
    std::fprintf(stderr, "sssp_client: %s\n", e.what());
    return 1;
  }

  const Clock::time_point run_start = Clock::now();
  const auto watchdog_expired = [&] {
    return std::chrono::duration<double>(Clock::now() - run_start).count() >
           timeout_s;
  };

  Totals totals;
  std::string fail_reason;
  const auto fail = [&](const std::string& why) {
    if (fail_reason.empty()) fail_reason = why;
  };

  // --- info handshake: graph shape + queue capacity -------------------
  serve::Response info;
  {
    bool got = false;
    for (int attempt = 0; attempt < 10 && !got && !watchdog_expired();
         ++attempt) {
      try {
        transport.send("{\"id\":\"info" + std::to_string(attempt) +
                       "\",\"cmd\":\"info\"}");
      } catch (const serve::ServeError& e) {
        fail(std::string("handshake send failed: ") + e.what());
        break;
      }
      const Clock::time_point until =
          Clock::now() + std::chrono::milliseconds(1500);
      while (!got && Clock::now() < until && !transport.closed) {
        transport.pump(50);
        std::string doc;
        try {
          while (transport.next_document(doc)) {
            serve::Response r;
            if (!serve::parse_response(doc, r)) {
              ++totals.torn;  // torn handshake response; retry
              continue;
            }
            if (r.has_info) {
              info = r;
              got = true;
              break;
            }
            ++totals.stray;
          }
        } catch (const serve::ServeError& e) {
          fail(std::string("response stream corrupt: ") + e.what());
          break;
        }
      }
    }
    if (!got) fail("no info response from server");
  }
  if (!fail_reason.empty()) {
    std::printf("client: FAIL %s\n", fail_reason.c_str());
    if (server_pid > 0) ::kill(server_pid, SIGKILL);
    return 1;
  }
  if (info.num_vertices == 0) {
    std::printf("client: FAIL server reports an empty graph\n");
    if (server_pid > 0) ::kill(server_pid, SIGKILL);
    return 1;
  }

  std::size_t window = static_cast<std::size_t>(flags.get_int("window"));
  if (window == 0)
    window = 4 * static_cast<std::size_t>(
                     std::max<std::uint64_t>(1, info.queue_capacity));

  // --- seeded workload ------------------------------------------------
  util::Xoshiro256 rng(seed);
  std::vector<graph::VertexId> hot;
  for (std::size_t i = 0; i < hot_sources; ++i)
    hot.push_back(
        static_cast<graph::VertexId>(rng.next() % info.num_vertices));
  std::vector<Query> queries(num_queries);
  for (Query& q : queries) {
    const bool is_hot =
        static_cast<double>(rng.next() % 10000) / 10000.0 < hot_fraction;
    q.source = is_hot ? hot[rng.next() % hot.size()]
                      : static_cast<graph::VertexId>(rng.next() %
                                                     info.num_vertices);
    if (static_cast<double>(rng.next() % 10000) / 10000.0 <
        expired_fraction)
      q.deadline_ms = 0.01;  // expires in-queue under any real load
  }

  obs::Histogram latency_ms;
  std::unordered_map<std::string, std::size_t> id_to_query;
  std::unordered_map<graph::VertexId, std::uint64_t> source_checksum;
  std::uint64_t id_counter = 0;
  std::size_t completed = 0;

  const auto send_query = [&](std::size_t qi) {
    Query& q = queries[qi];
    const std::string id = "q" + std::to_string(id_counter++);
    if (!q.current_id.empty()) id_to_query.erase(q.current_id);
    q.current_id = id;
    id_to_query[id] = qi;
    if (q.sends == 0) q.first_sent = Clock::now();
    q.last_sent = Clock::now();
    q.in_flight = true;
    ++q.sends;
    transport.send(make_query_doc(id, q));
  };

  const auto finish = [&](Query& q, serve::Status outcome) {
    if (!q.current_id.empty()) id_to_query.erase(q.current_id);
    q.current_id.clear();
    q.in_flight = false;
    if (!q.done) {
      q.done = true;
      q.outcome = outcome;
      ++completed;
    }
  };

  // --- main drive loop ------------------------------------------------
  std::size_t next_to_send = 0;
  std::size_t in_flight = 0;
  std::uint64_t worker_kills = 0;
  Clock::time_point next_kill =
      kill_workers_ms > 0
          ? Clock::now() + std::chrono::microseconds(static_cast<std::int64_t>(
                               kill_workers_ms * 1000.0))
          : Clock::time_point::max();
  try {
    while (completed < num_queries && !watchdog_expired() &&
           !transport.closed) {
      const Clock::time_point now = Clock::now();
      // Kill-tolerance drill: SIGKILL a random live worker. The workers
      // are the direct children of the supervisor process; the
      // supervisor itself is never a candidate.
      if (now >= next_kill) {
        if (const std::vector<pid_t> fleet = children_of(server_pid);
            !fleet.empty()) {
          ::kill(fleet[rng.next() % fleet.size()], SIGKILL);
          ++worker_kills;
        }
        next_kill = now + std::chrono::microseconds(static_cast<std::int64_t>(
                              kill_workers_ms * 1000.0));
      }
      // Issue fresh sends and backoff-expired retries up to the window.
      in_flight = id_to_query.size();
      while (next_to_send < num_queries && in_flight < window) {
        send_query(next_to_send++);
        ++in_flight;
      }
      for (std::size_t qi = 0; qi < num_queries && in_flight < window;
           ++qi) {
        Query& q = queries[qi];
        if (q.done || q.in_flight || q.sends == 0) continue;
        if (now < q.ready_at) continue;
        send_query(qi);
        ++in_flight;
      }
      // Pending-timeout resends (torn-response recovery).
      for (std::size_t qi = 0; qi < num_queries; ++qi) {
        Query& q = queries[qi];
        if (q.done || !q.in_flight) continue;
        if (ms_since(q.last_sent) < resend_ms) continue;
        if (q.sends > max_retries + 4) {
          ++totals.lost;
          finish(q, serve::Status::kError);
          fail("query lost: no parseable response after resends");
          continue;
        }
        ++totals.resends;
        send_query(qi);
      }

      transport.pump(20);
      std::string doc;
      while (transport.next_document(doc)) {
        serve::Response r;
        if (!serve::parse_response(doc, r)) {
          ++totals.torn;  // pending-timeout resend recovers this query
          continue;
        }
        const auto it = id_to_query.find(r.id);
        if (it == id_to_query.end()) {
          ++totals.stray;  // superseded id or duplicate — ignore
          continue;
        }
        Query& q = queries[it->second];
        switch (r.status) {
          case serve::Status::kOk:
            ++totals.ok;
            if (r.cache_hit) ++totals.cache_hits;
            if (!r.verified || !r.certified) {
              ++totals.uncertified;
              fail("ok response without certification (id " + r.id + ")");
            }
            if (const auto [cit, inserted] = source_checksum.try_emplace(
                    q.source, r.dist_checksum);
                !inserted && cit->second != r.dist_checksum) {
              ++totals.checksum_mismatch;
              fail("dist_checksum mismatch for source " +
                   std::to_string(q.source));
            }
            latency_ms.record(ms_since(q.first_sent));
            finish(q, r.status);
            break;
          case serve::Status::kExpired:
            ++totals.expired;
            if (q.deadline_ms <= 0.0)
              fail("deadline-free query expired (id " + r.id + ")");
            finish(q, r.status);
            break;
          case serve::Status::kOverloaded:
          case serve::Status::kShuttingDown: {
            ++totals.shed_seen;
            q.in_flight = false;
            id_to_query.erase(q.current_id);
            q.current_id.clear();
            ++q.shed_retries;
            if (q.shed_retries > max_retries) {
              ++totals.shed_final;
              finish(q, r.status);
              break;
            }
            double wait =
                backoff_ms * std::pow(2.0, q.shed_retries - 1);
            wait = std::max(wait, r.retry_after_ms);
            wait = std::min(wait, 2000.0);
            // Deterministic jitter in [0, 50%) decorrelates retries.
            wait *= 1.0 +
                    0.5 * (static_cast<double>(rng.next() % 1000) / 1000.0);
            q.ready_at = Clock::now() +
                         std::chrono::microseconds(
                             static_cast<std::int64_t>(wait * 1000.0));
            break;
          }
          case serve::Status::kError:
            ++totals.errors;
            if (!chaos)
              fail("error response (id " + r.id + "): " + r.error);
            finish(q, r.status);
            break;
          case serve::Status::kInvalid:
            ++totals.invalid;
            fail("server rejected a well-formed query (id " + r.id +
                 "): " + r.error);
            finish(q, r.status);
            break;
        }
      }
    }
  } catch (const serve::ServeError& e) {
    fail(std::string("transport failed: ") + e.what());
  }
  if (completed < num_queries) {
    if (transport.closed)
      fail("server closed the stream with " +
           std::to_string(num_queries - completed) + " queries open");
    else
      fail("watchdog expired with " +
           std::to_string(num_queries - completed) + " queries open");
  }

  // --- graceful shutdown of the spawned server -----------------------
  int server_exit = 0;
  if (server_pid > 0) {
    ::kill(server_pid, SIGTERM);
    ::close(transport.write_fd);
    // Drain the response stream to EOF: late responses for superseded
    // ids are fine, the stream itself must stay parseable.
    while (!transport.closed) {
      transport.pump(100);
      std::string doc;
      try {
        while (transport.next_document(doc)) {
          serve::Response r;
          if (serve::parse_response(doc, r))
            ++totals.stray;
          else
            ++totals.torn;
        }
      } catch (const serve::ServeError&) {
        break;
      }
    }
    ::close(transport.read_fd);
    int status = 0;
    if (::waitpid(server_pid, &status, 0) < 0) {
      fail(std::string("waitpid: ") + std::strerror(errno));
    } else if (WIFEXITED(status)) {
      server_exit = WEXITSTATUS(status);
      if (server_exit != 0)
        fail("server exited " + std::to_string(server_exit) +
             " (expected 0 after graceful drain)");
    } else if (WIFSIGNALED(status)) {
      fail(std::string("server killed by signal ") +
           std::to_string(WTERMSIG(status)));
    }
    if (supervise > 0) {
      // The supervisor's drain owes us a fully reaped fleet: any worker
      // still alive after the server exited is a process leak. Allow a
      // short settle window, then report (and clean up) stragglers.
      const std::vector<std::string> markers = {server_path, graph_path,
                                                "--worker-fd"};
      std::vector<pid_t> leaked = find_worker_processes(markers);
      for (int i = 0; i < 20 && !leaked.empty(); ++i) {
        ::usleep(50 * 1000);
        leaked = find_worker_processes(markers);
      }
      if (!leaked.empty()) {
        std::string pids;
        for (const pid_t p : leaked) pids += " " + std::to_string(p);
        fail("worker process leaked after server exit:" + pids);
        for (const pid_t p : leaked) ::kill(p, SIGKILL);
      }
    }
  } else {
    ::close(transport.read_fd);
  }

  // --- summary --------------------------------------------------------
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - run_start).count();
  std::printf(
      "workload: %zu queries (window %zu, seed %llu%s) in %.3f s\n",
      num_queries, window, static_cast<unsigned long long>(seed),
      chaos ? ", chaos" : "", wall_s);
  if (kill_workers_ms > 0)
    std::printf("chaos: %llu workers SIGKILLed (every %.0f ms)\n",
                static_cast<unsigned long long>(worker_kills),
                kill_workers_ms);
  std::printf(
      "outcomes: %llu ok (%llu cache hits), %llu expired, %llu shed-final, "
      "%llu errors, %llu invalid\n",
      static_cast<unsigned long long>(totals.ok),
      static_cast<unsigned long long>(totals.cache_hits),
      static_cast<unsigned long long>(totals.expired),
      static_cast<unsigned long long>(totals.shed_final),
      static_cast<unsigned long long>(totals.errors),
      static_cast<unsigned long long>(totals.invalid));
  std::printf(
      "recovery: %llu torn responses, %llu resends, %llu stray, "
      "%llu lost\n",
      static_cast<unsigned long long>(totals.torn),
      static_cast<unsigned long long>(totals.resends),
      static_cast<unsigned long long>(totals.stray),
      static_cast<unsigned long long>(totals.lost));
  if (latency_ms.count() > 0)
    std::printf(
        "latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms "
        "(%llu ok, %.1f qps end-to-end)\n",
        latency_ms.percentile(50.0), latency_ms.percentile(95.0),
        latency_ms.percentile(99.0), latency_ms.max(),
        static_cast<unsigned long long>(latency_ms.count()),
        wall_s > 0 ? static_cast<double>(totals.ok) / wall_s : 0.0);

  if (totals.ok == 0) fail("no query ever completed ok");
  if (kill_workers_ms > 0 && worker_kills == 0)
    fail("kill drill never found a worker to kill");
  if (!fail_reason.empty()) {
    std::printf("client: FAIL %s\n", fail_reason.c_str());
    return 1;
  }
  std::printf("client: PASS\n");
  return 0;
}
