// sssp_tool — run any of the library's SSSP algorithms on a graph file,
// verify against Dijkstra, and optionally replay on a device model with
// CSV trace export.
//
//   sssp_tool --in cal.bin --algorithm self-tuning --set-point 20000
//             --device tk1 --dvfs default --trace-csv run.csv
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "ckpt/checkpointed_run.hpp"
#include "core/self_tuning.hpp"
#include "tools/tool_common.hpp"
#include "graph/degree_stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "sim/device_config.hpp"
#include "sim/run.hpp"
#include "sim/trace_io.hpp"
#include "sim/workload_io.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"
#include "verify/auditor.hpp"
#include "verify/certifier.hpp"
#include "verify/flight_recorder.hpp"

using namespace sssp;

namespace {

using tools::load_any_graph;

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("in", "", "input graph (.bin/.gr/.mtx/.txt/.el); required");
  flags.define("algorithm", "self-tuning",
               "dijkstra | bellman-ford | delta-stepping | near-far | "
               "self-tuning");
  flags.define("source", "-1", "source vertex (-1 = max out-degree)");
  flags.define("delta", "0", "static delta for delta-stepping/near-far");
  flags.define("set-point", "20000", "parallelism target for self-tuning");
  flags.define("device", "tk1", "device model for replay: tk1 | tx1 | none");
  flags.define("device-file", "",
               "custom device config (overrides --device; see "
               "sim/device_config.hpp)");
  flags.define("dvfs", "default",
               "DVFS: 'default' governor or pinned 'core/mem' MHz pair");
  flags.define("trace-csv", "", "write per-iteration device trace CSV here");
  flags.define("workload-csv", "",
               "record the workload for replay_tool (see sim/workload_io.hpp)");
  flags.define("controller-csv", "",
               "write per-iteration controller state (delta, d, alpha, X1-X4)");
  tools::define_observability_flags(flags);
  tools::define_profile_flags(flags);
  tools::define_fault_flags(flags);
  tools::define_threads_flag(flags);
  tools::define_run_control_flags(flags);
  tools::define_resource_flags(flags);
  tools::define_checkpoint_flags(flags);
  tools::define_verify_flags(flags);
  flags.define("report-out", "",
               "write the merged run-report JSON here (engine stats + "
               "controller internals + device power/energy)");
  flags.define("distances-out", "",
               "write the raw distance/parent arrays here (binary; for "
               "byte-exact resume comparisons)");
  if (flags.handle_help("run an SSSP algorithm on a graph file")) return 0;
  flags.check_unknown();

  util::RunControl control;
  try {
    tools::enable_observability(flags);
    tools::enable_faults(flags);
    tools::apply_resource_flags(flags);
    if (!flags.get_string("flight-out").empty() ||
        flags.get_int("audit-every") > 0)
      verify::set_flight_enabled(true);
    const std::size_t threads = tools::apply_threads_flag(flags);
    tools::apply_run_control_flags(flags, control);
    // SIGINT/SIGTERM request a graceful stop: the run aborts at the next
    // poll site, reports are flushed with "interrupted": true, and the
    // tool exits 11. A second signal hard-exits 128+signo.
    util::install_signal_stop(control);
    const std::string in = flags.get_string("in");
    if (in.empty()) {
      std::fprintf(stderr, "--in is required; see --help\n");
      return 2;
    }
    const graph::CsrGraph g = load_any_graph(in);
    std::printf("graph: %s\n",
                to_string(graph::compute_degree_stats(g)).c_str());

    // --resume implies self-tuning (the only checkpointable algorithm)
    // and overrides --source with the checkpoint's.
    std::optional<ckpt::RunState> resume_state;
    if (const auto rpath = flags.get_string("resume"); !rpath.empty())
      resume_state = ckpt::load_checkpoint_file(rpath);

    const std::int64_t requested = flags.get_int("source");
    const graph::VertexId source =
        resume_state.has_value() ? resume_state->meta.source
        : requested >= 0         ? static_cast<graph::VertexId>(requested)
                                 : graph::max_degree_vertex(g);

    const std::string algorithm =
        resume_state.has_value() ? "self-tuning" : flags.get_string("algorithm");
    // Armed after graph load so the profiled span covers the algorithm
    // (and its verify/checkpoint phases), not the file I/O.
    const bool profiling = tools::enable_profiling(flags);
    util::WallTimer timer;
    algo::SsspResult result;
    util::StopReason stop = util::StopReason::kNone;
    bool stopped_mid_iteration = false;
    ckpt::CheckpointedResult checkpointing{};
    try {
      if (algorithm == "dijkstra") {
        result = algo::dijkstra(g, source);
      } else if (algorithm == "bellman-ford") {
        result = algo::bellman_ford(g, source);
      } else if (algorithm == "delta-stepping") {
        result = algo::delta_stepping(
            g, source,
            {.delta = static_cast<graph::Distance>(flags.get_int("delta"))});
      } else if (algorithm == "near-far") {
        algo::NearFarOptions options;
        options.delta = static_cast<graph::Distance>(flags.get_int("delta"));
        options.control = &control;
        result = algo::near_far(g, source, options);
      } else if (algorithm == "self-tuning") {
        core::SelfTuningOptions options;
        options.set_point = flags.get_double("set-point");
        options.audit_every =
            static_cast<std::uint64_t>(flags.get_int("audit-every"));
        options.audit_abort = flags.get_bool("audit-abort");
        ckpt::CheckpointPolicy policy;
        policy.path = flags.get_string("checkpoint-out");
        policy.every_iterations =
            static_cast<std::uint64_t>(flags.get_int("checkpoint-every"));
        policy.every_seconds =
            static_cast<double>(flags.get_int("checkpoint-every-ms")) / 1000.0;
        checkpointing = ckpt::run_self_tuning_checkpointed(
            g, source, options, policy, &control,
            resume_state.has_value() ? &*resume_state : nullptr);
        result = std::move(checkpointing.result);
        stop = checkpointing.stop;
        stopped_mid_iteration = checkpointing.stopped_mid_iteration;
        if (checkpointing.resumed)
          std::printf("resumed from iteration %llu (%s)\n",
                      static_cast<unsigned long long>(
                          checkpointing.resumed_from_iteration),
                      flags.get_string("resume").c_str());
        if (checkpointing.checkpoints_written > 0)
          std::printf("checkpoints: %llu written, %llu bytes\n",
                      static_cast<unsigned long long>(
                          checkpointing.checkpoints_written),
                      static_cast<unsigned long long>(
                          checkpointing.checkpoint_bytes));
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
        return 2;
      }
    } catch (const util::StopRequested& stopped) {
      // A non-checkpointed algorithm aborted mid-run: no usable result,
      // but reports and metrics still flush below, marked interrupted.
      stop = stopped.reason();
      stopped_mid_iteration = true;
    }
    const double host_seconds = timer.elapsed_seconds();
    if (stop != util::StopReason::kNone) {
      std::printf("run stopped early: %s%s\n", util::to_string(stop),
                  stopped_mid_iteration ? " (mid-iteration)" : "");
      verify::record_event(verify::FlightEventKind::kStop,
                           result.num_iterations(), util::to_string(stop));
    }
    if (checkpointing.audit_aborted)
      std::printf("run aborted by the invariant auditor (%llu audits, %llu "
                  "violations)\n",
                  static_cast<unsigned long long>(result.audits_run),
                  static_cast<unsigned long long>(result.audit_violations));

    std::printf("%s from %u: reached %zu/%zu vertices, %zu iterations, "
                "%.2fs host time, %zu threads\n",
                result.algorithm.c_str(), source, result.reached_count(),
                g.num_vertices(), result.num_iterations(), host_seconds,
                threads);
    if (!result.iterations.empty())
      std::printf("average parallelism: %.0f, improving relaxations: %llu\n",
                  result.average_parallelism(),
                  static_cast<unsigned long long>(
                      result.improving_relaxations));
    if (result.controller_degradations > 0)
      std::printf("controller health: %llu degradations, %llu recoveries, "
                  "%llu rejected inputs\n",
                  static_cast<unsigned long long>(
                      result.controller_degradations),
                  static_cast<unsigned long long>(
                      result.controller_recoveries),
                  static_cast<unsigned long long>(
                      result.controller_rejected_inputs));

    if (const auto wpath = flags.get_string("workload-csv");
        !wpath.empty() && !result.iterations.empty()) {
      sim::save_workload_csv_file(result.to_workload(in), wpath);
      std::printf("wrote workload to %s\n", wpath.c_str());
    }
    if (const auto cpath = flags.get_string("controller-csv");
        !cpath.empty() && !result.iterations.empty()) {
      util::CsvWriter csv(cpath);
      csv.write_header({"iteration", "delta", "degree_estimate",
                        "alpha_estimate", "x1", "x2", "x3", "x4",
                        "rebalance_items", "far_queue_size"});
      for (std::size_t i = 0; i < result.iterations.size(); ++i) {
        const auto& it = result.iterations[i];
        csv.write(i, it.delta, it.degree_estimate, it.alpha_estimate, it.x1,
                  it.x2, it.x3, it.x4, it.rebalance_items,
                  it.far_queue_size);
      }
      std::printf("wrote controller trace to %s\n", cpath.c_str());
    }

    if (result.audits_run > 0)
      std::printf("invariant audits: %llu run, %llu violations\n",
                  static_cast<unsigned long long>(result.audits_run),
                  static_cast<unsigned long long>(result.audit_violations));

    // Injected post-run corruptions: flip one entry between the solver
    // and the certifier so detection is testable end-to-end (mutation
    // tests and the chaos soak arm these).
    if (!result.distances.empty() && SSSP_FAILPOINT("verify.flip_dist"))
      result.distances[result.distances.size() / 2] ^= 1;
    if (!result.parents.empty() && SSSP_FAILPOINT("verify.flip_parent"))
      result.parents[result.parents.size() / 2] ^= 1;

    const bool strict = flags.get_bool("verify-strict");
    std::optional<verify::Certificate> certificate;
    if ((flags.get_bool("verify") || strict) &&
        stop == util::StopReason::kNone && !checkpointing.audit_aborted &&
        !result.distances.empty()) {
      verify::CertifyOptions copts;
      copts.strict = strict;
      certificate = verify::certify(g, result, copts);
      std::printf("certification: %s (%s)\n",
                  certificate->certified ? "PASS" : "FAILED",
                  certificate->summary().c_str());
      if (!certificate->certified)
        for (const verify::Violation& v : certificate->samples)
          std::fprintf(stderr, "  violation: %s at v=%u: %s\n",
                       verify::to_string(v.kind), v.vertex, v.detail.c_str());
    }

    // Stop after certification so the "verify" phase is attributed; the
    // profile then feeds the report's energy/profile blocks below.
    std::optional<prof::RunProfile> profile;
    if (profiling) profile = tools::finish_profiling();

    if (const auto dpath = flags.get_string("distances-out");
        !dpath.empty() && stop == util::StopReason::kNone) {
      // Raw arrays for byte-exact comparisons between an uninterrupted
      // run and a kill-and-resume run (the CI crash-recovery matrix
      // cmp(1)s these files).
      const std::uint64_t n = result.distances.size();
      std::string bytes;
      bytes.reserve(sizeof n + n * sizeof(graph::Distance) +
                    result.parents.size() * sizeof(graph::VertexId));
      bytes.append(reinterpret_cast<const char*>(&n), sizeof n);
      bytes.append(reinterpret_cast<const char*>(result.distances.data()),
                   n * sizeof(graph::Distance));
      bytes.append(reinterpret_cast<const char*>(result.parents.data()),
                   result.parents.size() * sizeof(graph::VertexId));
      util::atomic_write_file(dpath, bytes);
      std::printf("wrote distances/parents to %s\n", dpath.c_str());
    }

    const std::string device_name = flags.get_string("device");
    const std::string device_file = flags.get_string("device-file");
    std::optional<sim::RunReport> sim_report;
    std::string device_label;
    std::string dvfs_label;
    if ((device_name != "none" || !device_file.empty()) &&
        !result.iterations.empty()) {
      const sim::DeviceSpec device =
          !device_file.empty() ? sim::load_device_config_file(device_file)
          : device_name == "tx1" ? sim::DeviceSpec::jetson_tx1()
                                 : sim::DeviceSpec::jetson_tk1();
      std::unique_ptr<sim::DvfsPolicy> policy;
      const std::string dvfs = flags.get_string("dvfs");
      if (dvfs == "default") {
        policy = std::make_unique<sim::DefaultGovernor>();
      } else {
        const auto slash = dvfs.find('/');
        if (slash == std::string::npos)
          throw std::runtime_error("--dvfs expects 'default' or 'core/mem'");
        policy = std::make_unique<sim::PinnedDvfs>(sim::FrequencyPair{
            static_cast<std::uint32_t>(std::stoul(dvfs.substr(0, slash))),
            static_cast<std::uint32_t>(std::stoul(dvfs.substr(slash + 1)))});
      }
      sim_report = sim::simulate_run(device, *policy, result.to_workload(in));
      device_label = device.name;
      dvfs_label = dvfs;
      std::printf("%s @ %s: %.4f s, %.2f W avg (peak %.2f), %.2f J\n",
                  device.name.c_str(), dvfs.c_str(),
                  sim_report->total_seconds, sim_report->average_power_w,
                  sim_report->peak_power_w, sim_report->energy_joules);
      if (const auto csv = flags.get_string("trace-csv"); !csv.empty()) {
        sim::write_run_report_csv_file(*sim_report, csv);
        std::printf("wrote per-iteration trace to %s\n", csv.c_str());
      }
    }

    // Flight-recorder dump before the run report, so the report can
    // cross-link the file it should be read next to.
    std::string flight_path;
    if (const auto fpath = flags.get_string("flight-out"); !fpath.empty()) {
      std::string reason = "run-complete";
      if (checkpointing.audit_aborted)
        reason = "audit-abort";
      else if (stop != util::StopReason::kNone)
        reason = util::to_string(stop);
      else if (certificate && !certificate->certified)
        reason = "certification-failed";
      if (verify::FlightRecorder::global().save(fpath, reason)) {
        flight_path = fpath;
        std::printf("wrote flight recorder dump to %s (%llu events)\n",
                    fpath.c_str(),
                    static_cast<unsigned long long>(
                        verify::FlightRecorder::global().total_recorded()));
      } else {
        std::fprintf(stderr, "flight recorder dump failed: %s\n",
                     fpath.c_str());
      }
    }

    if (const auto rpath = flags.get_string("report-out"); !rpath.empty()) {
      obs::RunReportMeta meta;
      meta.tool = "sssp_tool";
      meta.algorithm = result.algorithm;
      meta.dataset = in;
      meta.source = source;
      meta.set_point =
          algorithm == "self-tuning" ? flags.get_double("set-point") : 0.0;
      meta.device = device_label;
      meta.dvfs = dvfs_label;
      meta.num_vertices = g.num_vertices();
      meta.reached = result.reached_count();
      meta.improving_relaxations = result.improving_relaxations;
      meta.host_seconds = host_seconds;
      meta.threads = threads;
      meta.controller_seconds = result.controller_seconds;
      meta.controller_degradations = result.controller_degradations;
      meta.controller_recoveries = result.controller_recoveries;
      meta.controller_rejected_inputs = result.controller_rejected_inputs;
      meta.interrupted =
          stop != util::StopReason::kNone || checkpointing.audit_aborted;
      meta.outcome = checkpointing.audit_aborted ? "audit-abort"
                     : stop == util::StopReason::kNone
                         ? "completed"
                         : util::to_string(stop);
      meta.checkpoints_written = checkpointing.checkpoints_written;
      meta.checkpoint_bytes = checkpointing.checkpoint_bytes;
      meta.resumed = checkpointing.resumed;
      meta.resumed_from_iteration = checkpointing.resumed_from_iteration;
      meta.verification.requested =
          certificate.has_value() || result.audits_run > 0;
      if (certificate.has_value()) {
        meta.verification.mode = strict ? "certify+dijkstra" : "certify";
        meta.verification.certified = certificate->certified;
        meta.verification.vertices_checked = certificate->vertices_checked;
        meta.verification.edges_checked = certificate->edges_checked;
        meta.verification.violations = certificate->violations;
        meta.verification.seconds = certificate->seconds;
        for (const verify::Violation& v : certificate->samples)
          meta.verification.samples.push_back(
              std::string(verify::to_string(v.kind)) + " at v=" +
              std::to_string(v.vertex) + ": " + v.detail);
      }
      meta.verification.audits_run = result.audits_run;
      meta.verification.audit_violations = result.audit_violations;
      meta.verification.flight_recorder_path = flight_path;
      obs::save_run_report(rpath, meta, result.iterations,
                          sim_report ? &*sim_report : nullptr,
                          profile ? &*profile : nullptr);

      // Round-trip sanity: the file must parse and carry one record per
      // iteration (scripted consumers depend on this).
      std::ifstream check(rpath, std::ios::binary);
      std::ostringstream buffer;
      buffer << check.rdbuf();
      const std::string document = buffer.str();
      std::size_t records = 0;
      for (std::size_t pos = document.find("{\"iter\":");
           pos != std::string::npos;
           pos = document.find("{\"iter\":", pos + 1))
        ++records;
      if (!obs::json_valid(document) ||
          records != result.iterations.size()) {
        std::fprintf(stderr,
                     "report self-check FAILED: valid=%d records=%zu "
                     "iterations=%zu\n",
                     obs::json_valid(document) ? 1 : 0, records,
                     result.iterations.size());
        return 1;
      }
      std::printf("wrote run report to %s (%zu iteration records, valid "
                  "JSON)\n",
                  rpath.c_str(), records);
    }

    tools::print_fault_summary();
    tools::write_observability_outputs(flags);
    if (stop != util::StopReason::kNone)
      return tools::exit_code_for_stop(stop);
    if (checkpointing.audit_aborted ||
        (certificate.has_value() && !certificate->certified))
      return tools::kExitCertificationFailed;
  } catch (const ckpt::InjectedCrash& e) {
    // Simulated process death: exit with a distinct code and WITHOUT
    // flushing reports — the resume path must cope with their absence,
    // exactly as after a real crash.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return tools::kExitInjectedCrash;
  } catch (const graph::GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::exit_code_for(e);
  } catch (const util::DiskFullError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitDiskFull;
  } catch (const res::ResourceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitResourceBudget;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "error: out of memory\n");
    return tools::kExitResourceBudget;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
