// sssp_tool — run any of the library's SSSP algorithms on a graph file,
// verify against Dijkstra, and optionally replay on a device model with
// CSV trace export.
//
//   sssp_tool --in cal.bin --algorithm self-tuning --set-point 20000
//             --device tk1 --dvfs default --trace-csv run.csv
#include <cstdio>
#include <string>

#include "core/self_tuning.hpp"
#include "tools/tool_common.hpp"
#include "graph/degree_stats.hpp"
#include "sim/device_config.hpp"
#include "sim/run.hpp"
#include "sim/trace_io.hpp"
#include "sim/workload_io.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace sssp;

namespace {

using tools::load_any_graph;

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("in", "", "input graph (.bin/.gr/.mtx/.txt/.el); required");
  flags.define("algorithm", "self-tuning",
               "dijkstra | bellman-ford | delta-stepping | near-far | "
               "self-tuning");
  flags.define("source", "-1", "source vertex (-1 = max out-degree)");
  flags.define("delta", "0", "static delta for delta-stepping/near-far");
  flags.define("set-point", "20000", "parallelism target for self-tuning");
  flags.define("verify", "true", "verify distances against Dijkstra");
  flags.define("device", "tk1", "device model for replay: tk1 | tx1 | none");
  flags.define("device-file", "",
               "custom device config (overrides --device; see "
               "sim/device_config.hpp)");
  flags.define("dvfs", "default",
               "DVFS: 'default' governor or pinned 'core/mem' MHz pair");
  flags.define("trace-csv", "", "write per-iteration device trace CSV here");
  flags.define("workload-csv", "",
               "record the workload for replay_tool (see sim/workload_io.hpp)");
  flags.define("controller-csv", "",
               "write per-iteration controller state (delta, d, alpha, X1-X4)");
  if (flags.handle_help("run an SSSP algorithm on a graph file")) return 0;
  flags.check_unknown();

  try {
    const std::string in = flags.get_string("in");
    if (in.empty()) {
      std::fprintf(stderr, "--in is required; see --help\n");
      return 2;
    }
    const graph::CsrGraph g = load_any_graph(in);
    std::printf("graph: %s\n",
                to_string(graph::compute_degree_stats(g)).c_str());

    const std::int64_t requested = flags.get_int("source");
    const graph::VertexId source =
        requested >= 0 ? static_cast<graph::VertexId>(requested)
                       : graph::max_degree_vertex(g);

    const std::string algorithm = flags.get_string("algorithm");
    util::WallTimer timer;
    algo::SsspResult result;
    if (algorithm == "dijkstra") {
      result = algo::dijkstra(g, source);
    } else if (algorithm == "bellman-ford") {
      result = algo::bellman_ford(g, source);
    } else if (algorithm == "delta-stepping") {
      result = algo::delta_stepping(
          g, source,
          {.delta = static_cast<graph::Distance>(flags.get_int("delta"))});
    } else if (algorithm == "near-far") {
      result = algo::near_far(
          g, source,
          {.delta = static_cast<graph::Distance>(flags.get_int("delta"))});
    } else if (algorithm == "self-tuning") {
      core::SelfTuningOptions options;
      options.set_point = flags.get_double("set-point");
      result = core::self_tuning_sssp(g, source, options);
    } else {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
      return 2;
    }
    const double host_seconds = timer.elapsed_seconds();

    std::printf("%s from %u: reached %zu/%zu vertices, %zu iterations, "
                "%.2fs host time\n",
                result.algorithm.c_str(), source, result.reached_count(),
                g.num_vertices(), result.num_iterations(), host_seconds);
    if (!result.iterations.empty())
      std::printf("average parallelism: %.0f, improving relaxations: %llu\n",
                  result.average_parallelism(),
                  static_cast<unsigned long long>(
                      result.improving_relaxations));

    if (const auto wpath = flags.get_string("workload-csv");
        !wpath.empty() && !result.iterations.empty()) {
      sim::save_workload_csv_file(result.to_workload(in), wpath);
      std::printf("wrote workload to %s\n", wpath.c_str());
    }
    if (const auto cpath = flags.get_string("controller-csv");
        !cpath.empty() && !result.iterations.empty()) {
      util::CsvWriter csv(cpath);
      csv.write_header({"iteration", "delta", "degree_estimate",
                        "alpha_estimate", "x1", "x2", "x3", "x4",
                        "rebalance_items", "far_queue_size"});
      for (std::size_t i = 0; i < result.iterations.size(); ++i) {
        const auto& it = result.iterations[i];
        csv.write(i, it.delta, it.degree_estimate, it.alpha_estimate, it.x1,
                  it.x2, it.x3, it.x4, it.rebalance_items,
                  it.far_queue_size);
      }
      std::printf("wrote controller trace to %s\n", cpath.c_str());
    }

    if (flags.get_bool("verify") && algorithm != "dijkstra") {
      const auto expected = algo::dijkstra_distances(g, source);
      const std::size_t mismatches =
          algo::count_distance_mismatches(result.distances, expected);
      std::printf("verification vs Dijkstra: %s\n",
                  mismatches == 0 ? "EXACT" : "MISMATCH!");
      if (mismatches) return 1;
    }

    const std::string device_name = flags.get_string("device");
    const std::string device_file = flags.get_string("device-file");
    if ((device_name != "none" || !device_file.empty()) &&
        !result.iterations.empty()) {
      const sim::DeviceSpec device =
          !device_file.empty() ? sim::load_device_config_file(device_file)
          : device_name == "tx1" ? sim::DeviceSpec::jetson_tx1()
                                 : sim::DeviceSpec::jetson_tk1();
      std::unique_ptr<sim::DvfsPolicy> policy;
      const std::string dvfs = flags.get_string("dvfs");
      if (dvfs == "default") {
        policy = std::make_unique<sim::DefaultGovernor>();
      } else {
        const auto slash = dvfs.find('/');
        if (slash == std::string::npos)
          throw std::runtime_error("--dvfs expects 'default' or 'core/mem'");
        policy = std::make_unique<sim::PinnedDvfs>(sim::FrequencyPair{
            static_cast<std::uint32_t>(std::stoul(dvfs.substr(0, slash))),
            static_cast<std::uint32_t>(std::stoul(dvfs.substr(slash + 1)))});
      }
      const auto report = sim::simulate_run(
          device, *policy, result.to_workload(in));
      std::printf("%s @ %s: %.4f s, %.2f W avg (peak %.2f), %.2f J\n",
                  device.name.c_str(), dvfs.c_str(), report.total_seconds,
                  report.average_power_w, report.peak_power_w,
                  report.energy_joules);
      if (const auto csv = flags.get_string("trace-csv"); !csv.empty()) {
        sim::write_run_report_csv_file(report, csv);
        std::printf("wrote per-iteration trace to %s\n", csv.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
