// Shared helpers for the CLI tools: extension-based graph loading and
// saving across every supported format.
#pragma once

#include <stdexcept>
#include <string>

#include "graph/binary_io.hpp"
#include "graph/csr.hpp"
#include "graph/dimacs.hpp"
#include "graph/edge_list.hpp"
#include "graph/matrix_market.hpp"

namespace sssp::tools {

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// .bin (tunesssp binary cache), .gr (DIMACS), .mtx (MatrixMarket),
// .txt/.el (edge list).
inline graph::CsrGraph load_any_graph(const std::string& path) {
  if (ends_with(path, ".bin")) return graph::load_binary_file(path);
  if (ends_with(path, ".gr")) return graph::load_dimacs_file(path);
  if (ends_with(path, ".mtx")) return graph::load_matrix_market_file(path);
  if (ends_with(path, ".txt") || ends_with(path, ".el"))
    return graph::load_edge_list_file(path);
  throw std::runtime_error("unknown input format: " + path +
                           " (expected .bin/.gr/.mtx/.txt/.el)");
}

// .bin or .gr (the formats with writers).
inline void save_any_graph(const graph::CsrGraph& g, const std::string& path) {
  if (ends_with(path, ".bin")) {
    graph::save_binary_file(g, path);
  } else if (ends_with(path, ".gr")) {
    graph::save_dimacs_file(g, path, "written by tunesssp tools");
  } else {
    throw std::runtime_error("unknown output format: " + path +
                             " (expected .bin/.gr)");
  }
}

}  // namespace sssp::tools
