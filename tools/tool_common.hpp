// Shared helpers for the CLI tools: extension-based graph loading and
// saving across every supported format, the observability flag plumbing
// (--metrics-out / --metrics-format / --trace-out), fault-injection
// arming (--failpoint / SSSP_FAILPOINT), and the structured-IO-error
// exit-code mapping (docs/ROBUSTNESS.md).
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "fault/failpoint.hpp"
#include "graph/binary_io.hpp"
#include "graph/csr.hpp"
#include "graph/dimacs.hpp"
#include "graph/edge_list.hpp"
#include "graph/io_error.hpp"
#include "graph/matrix_market.hpp"
#include "graph/mmap_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"
#include "res/budget.hpp"
#include "sim/device.hpp"
#include "sim/power_model.hpp"
#include "util/atomic_file.hpp"
#include "util/flags.hpp"
#include "util/run_control.hpp"
#include "util/thread_pool.hpp"

namespace sssp::tools {

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// .bin (tunesssp binary cache), .gr (DIMACS), .mtx (MatrixMarket),
// .txt/.el (edge list).
inline graph::CsrGraph load_any_graph(const std::string& path) {
  if (ends_with(path, ".bin")) return graph::load_binary_file(path);
  if (ends_with(path, ".gr")) return graph::load_dimacs_file(path);
  if (ends_with(path, ".mtx")) return graph::load_matrix_market_file(path);
  if (ends_with(path, ".txt") || ends_with(path, ".el"))
    return graph::load_edge_list_file(path);
  throw std::runtime_error("unknown input format: " + path +
                           " (expected .bin/.gr/.mtx/.txt/.el)");
}

// A resident graph plus the storage that backs it: either an owning
// heap CsrGraph or a zero-copy view into a shared read-only mapping of
// the v2 binary cache (graph/mmap_cache.hpp). `graph()` is valid for
// the lifetime of this object either way.
struct ResidentGraph {
  graph::CsrGraph heap;       // owning mode
  graph::MmapGraph mapped;    // mmap mode
  bool is_mapped = false;

  const graph::CsrGraph& graph() const noexcept {
    return is_mapped ? mapped.graph() : heap;
  }
};

// Loads a graph for long-lived serving. mode: "auto" maps v2 .bin
// caches and heap-loads everything else; "on" requires a mappable v2
// cache (throws otherwise); "off" always heap-loads. With the mmap
// path, N server processes opening the same cache share one physical
// copy of the arrays through the page cache.
inline ResidentGraph load_resident_graph(const std::string& path,
                                         const std::string& mode = "auto") {
  if (mode != "auto" && mode != "on" && mode != "off")
    throw std::runtime_error("--mmap expects auto, on, or off (got '" +
                             mode + "')");
  ResidentGraph resident;
  const bool mappable =
      ends_with(path, ".bin") && graph::is_mappable_cache(path);
  if (mode == "on" && !mappable)
    throw std::runtime_error(
        "--mmap on requires a v2 binary graph cache (.bin): " + path);
  if (mode != "off" && mappable) {
    if (mode == "on") {
      resident.mapped = graph::MmapGraph::open(path);
      resident.is_mapped = true;
      return resident;
    }
    // auto: a cache that fails to map — checksum rot, truncation, or a
    // SIGBUS caught by the mmap layer's trampoline — degrades to the
    // heap loader instead of failing the tool. The heap loader
    // re-verifies the same checksums, so real rot still surfaces as a
    // structured error; only mapping-specific failures are recovered.
    try {
      resident.mapped = graph::MmapGraph::open(path);
      resident.is_mapped = true;
      return resident;
    } catch (const graph::GraphIoError& e) {
      std::fprintf(stderr,
                   "mmap of %s failed (%s); falling back to heap loader\n",
                   path.c_str(), e.what());
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global()
            .counter("graph.mmap.fallback_heap")
            .add(1);
    }
  }
  resident.heap = load_any_graph(path);
  return resident;
}

// .bin or .gr (the formats with writers).
inline void save_any_graph(const graph::CsrGraph& g, const std::string& path) {
  if (ends_with(path, ".bin")) {
    graph::save_binary_file(g, path);
  } else if (ends_with(path, ".gr")) {
    graph::save_dimacs_file(g, path, "written by tunesssp tools");
  } else {
    throw std::runtime_error("unknown output format: " + path +
                             " (expected .bin/.gr)");
  }
}

// Registers the shared observability flags. Call before handle_help().
inline void define_observability_flags(util::Flags& flags) {
  flags.define("metrics-out", "",
               "write the metrics registry here after the run");
  flags.define("metrics-format", "json",
               "metrics export format: json | prometheus");
  flags.define("trace-out", "",
               "write a Chrome trace-event JSON here (open in Perfetto)");
}

// Turns the runtime gates on when the matching --*-out flag was given.
// Must run before the instrumented work starts. Traces stream to the
// output file in batches from the start (docs/OBSERVABILITY.md), so
// soak-length runs never hold the event log in memory.
inline void enable_observability(const util::Flags& flags) {
  if (!flags.get_string("metrics-out").empty())
    obs::set_metrics_enabled(true);
  if (const auto path = flags.get_string("trace-out"); !path.empty()) {
    obs::Tracer::global().open_stream(path);
    obs::set_trace_enabled(true);
  }
}

// Writes whatever sinks were requested; call once after the run.
inline void write_observability_outputs(const util::Flags& flags) {
  if (const auto path = flags.get_string("metrics-out"); !path.empty()) {
    const std::string format = flags.get_string("metrics-format");
    if (format != "json" && format != "prometheus")
      throw std::runtime_error("--metrics-format expects json or prometheus");
    // tmp+fsync+rename: a crash or ENOSPC mid-write must never leave a
    // truncated export for downstream tooling to misparse.
    util::atomic_write_file(path,
                            format == "prometheus"
                                ? obs::MetricsRegistry::global().to_prometheus()
                                : obs::MetricsRegistry::global().to_json() +
                                      "\n");
    std::printf("wrote metrics to %s\n", path.c_str());
  }
  if (const auto path = flags.get_string("trace-out"); !path.empty()) {
    obs::Tracer::global().finish_stream();
    std::printf("wrote trace (%zu events) to %s\n",
                obs::Tracer::global().num_events(), path.c_str());
  }
}

// Registers the host-profiling flags (docs/OBSERVABILITY.md, "Hardware
// profiling & energy"). Call before handle_help().
inline void define_profile_flags(util::Flags& flags) {
  flags.define("profile", "false",
               "measure the run with perf_event counters and RAPL energy, "
               "degrading gracefully (model watts / wall clock) when the "
               "host forbids them; adds 'energy' and 'profile' blocks to "
               "--report-out");
  flags.define("profile-no-perf", "false",
               "skip the perf_event probe (forces the wall-clock counter "
               "backend; CI uses this for shared-runner stability)");
  flags.define("profile-no-rapl", "false",
               "skip the RAPL probe (forces the model energy backend)");
}

// Watts for the profiler's model fallback, calibrated from the analytic
// board model at a mid-load operating point — the same power model the
// simulator trusts, so model-backend joules are comparable across runs.
inline double profile_model_watts() {
  const sim::DeviceSpec spec = sim::DeviceSpec::jetson_tk1();
  return sim::board_power(spec, spec.max_frequencies(), 0.5, 0.5);
}

// Arms the global profiler when --profile was given; returns true if
// armed. Must run before the instrumented work starts (the calling
// thread becomes the phase-attribution owner).
inline bool enable_profiling(const util::Flags& flags) {
  if (!flags.get_bool("profile")) return false;
  prof::Profiler::Options options;
  options.use_perf = !flags.get_bool("profile-no-perf");
  options.use_rapl = !flags.get_bool("profile-no-rapl");
  options.model_watts = profile_model_watts();
  prof::Profiler::global().start(options);
  return true;
}

// Stops the profiler and prints the one-line summary; returns the
// finished profile. Call after the measured work, before report writing.
inline prof::RunProfile finish_profiling() {
  prof::Profiler& profiler = prof::Profiler::global();
  profiler.stop();
  prof::RunProfile profile = profiler.report();
  std::printf(
      "profile: %.3f s, %.2f J (%.2f W avg, backend %s), counters %s\n",
      profile.wall_seconds, profile.energy.joules,
      profile.energy.average_watts, prof::to_string(profile.energy.backend),
      prof::to_string(profile.counter_backend));
  if (profile.counter_backend == prof::CounterBackend::kPerfEvent &&
      profile.totals.cycles > 0)
    std::printf("profile: IPC %.2f, %.1f LLC misses/k-instr\n",
                static_cast<double>(profile.totals.instructions) /
                    static_cast<double>(profile.totals.cycles),
                1000.0 * static_cast<double>(profile.totals.llc_misses) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1,
                                                profile.totals.instructions)));
  return profile;
}

// Registers the --threads flag. Call before handle_help().
inline void define_threads_flag(util::Flags& flags) {
  flags.define("threads", "0",
               "thread pool size (0 = $SSSP_THREADS or hardware default); "
               "results are bit-identical at any value");
}

// Sizes the global pool from the flag and returns the effective thread
// count (for run reports). Must run before the parallel work starts.
inline std::size_t apply_threads_flag(const util::Flags& flags) {
  const std::int64_t requested = flags.get_int("threads");
  if (requested < 0) throw std::runtime_error("--threads must be >= 0");
  util::ThreadPool::set_global_threads(static_cast<std::size_t>(requested));
  return util::ThreadPool::global().size();
}

// Registers the fault-injection flag. Call before handle_help().
inline void define_fault_flags(util::Flags& flags) {
  flags.define("failpoint", "",
               "arm failpoints: 'name[=prob|count[,seed]]', ';'-separated "
               "(also read from $SSSP_FAILPOINT; see docs/ROBUSTNESS.md)");
}

// Arms failpoints from the flag and the SSSP_FAILPOINT environment
// variable. Must run before the instrumented work starts. Malformed
// specs throw std::invalid_argument. Also installs the io.write.*
// fault hook into util/atomic_file — the glue lives in res because
// util sits below fault in the layering.
inline void enable_faults(const util::Flags& flags) {
  res::install_io_failpoints();
  if (const auto spec = flags.get_string("failpoint"); !spec.empty())
    fault::FailpointRegistry::global().arm_list(spec);
  fault::FailpointRegistry::global().arm_from_env();
}

// One line per armed failpoint after the run, so fault-injection runs
// are auditable from the console alone.
inline void print_fault_summary() {
  if (!fault::faults_enabled()) return;
  for (const auto& fp : fault::FailpointRegistry::global().status()) {
    if (fp.mode == fault::Failpoint::Mode::kDisarmed) continue;
    std::printf("failpoint %s: %llu hits, %llu fires\n", fp.name.c_str(),
                static_cast<unsigned long long>(fp.hits),
                static_cast<unsigned long long>(fp.fires));
  }
}

// Structured loader errors map to stable per-class exit codes so shell
// harnesses can distinguish "file missing" from "file corrupt". Usage
// errors use 2 and any other failure 1 (tool convention).
inline int exit_code_for(const graph::GraphIoError& error) {
  switch (error.error_class()) {
    case graph::IoErrorClass::kOpen:
      return 3;
    case graph::IoErrorClass::kParse:
      return 4;
    case graph::IoErrorClass::kTruncated:
      return 5;
    case graph::IoErrorClass::kChecksum:
      return 6;
    case graph::IoErrorClass::kVersion:
      return 7;
    case graph::IoErrorClass::kLimit:
      return 8;
  }
  return 1;
}

// Run-control exit codes continue the table above (README "Exit
// codes"): a run stopped by its wall-clock deadline, the stall
// watchdog, or SIGINT/SIGTERM exits with a distinct code after
// flushing reports; an injected ckpt.* crash exits 12 *without*
// flushing (it simulates process death).
inline constexpr int kExitDeadline = 9;
inline constexpr int kExitStall = 10;
inline constexpr int kExitInterrupted = 11;
inline constexpr int kExitInjectedCrash = 12;
// The result failed certification (or the online invariant auditor
// aborted the run): reports and the flight-recorder dump are flushed
// first so the failure is post-mortemable.
inline constexpr int kExitCertificationFailed = 13;
// bench_tool: at least one matrix cell slowed past its noise-adjusted
// threshold against the committed baseline (docs/PERFORMANCE.md).
inline constexpr int kExitBenchRegression = 14;
// sssp_server: the service never became ready — socket/bind/listen
// failure, bad port, or a graph that failed to load (the loader's
// structured diagnosis and 3-8 class code stay in the stderr message).
// One code for every startup failure lets a supervisor distinguish
// "failed to start" from "started, then failed"
// (docs/ROBUSTNESS.md, docs/SERVING.md).
inline constexpr int kExitServeStartup = 15;
// sssp_server --supervise: the crash-loop circuit breaker tripped — K
// worker crashes inside the W-second window — so the supervisor stopped
// restarting workers, shed the remaining queries, drained, and exited.
// Distinct from 15 ("never became ready") and from 0 ("asked to drain"):
// the orchestrator should treat the deployment, not the process, as bad
// (docs/SERVING.md, "Process model & crash isolation").
inline constexpr int kExitCrashLoop = 16;
// A persistence write hit ENOSPC/EDQUOT (util/atomic_file): the tmp
// file was deleted, the previous artifact (if any) is intact, and no
// partial file exists anywhere. Orchestrators should free disk and
// retry (docs/ROBUSTNESS.md, "Resource budgets & exhaustion").
inline constexpr int kExitDiskFull = 17;
// A resource budget (memory/scratch/fd, res/budget.hpp) refused work
// with no degradation path, or an allocation failed outright
// (std::bad_alloc). State on disk is intact; rerun with a larger
// budget or smaller input.
inline constexpr int kExitResourceBudget = 18;

inline int exit_code_for_stop(util::StopReason reason) {
  switch (reason) {
    case util::StopReason::kNone:
      return 0;
    case util::StopReason::kInterrupt:
      return kExitInterrupted;
    case util::StopReason::kDeadline:
      return kExitDeadline;
    case util::StopReason::kStall:
      return kExitStall;
  }
  return 1;
}

// Registers the graceful-shutdown flags. Call before handle_help().
inline void define_run_control_flags(util::Flags& flags) {
  flags.define("deadline-ms", "0",
               "wall-clock budget in milliseconds; on expiry the run "
               "checkpoints (if configured), flushes reports, and exits 9 "
               "(0 = none)");
  flags.define("stall-limit", "0",
               "abort when no new distance improves across this many "
               "consecutive iterations: checkpoint, report, exit 10 "
               "(0 = watchdog off)");
}

// Applies the flags to a RunControl. Returns true when any limit was
// armed (callers then install signal handlers and poll the control).
inline bool apply_run_control_flags(const util::Flags& flags,
                                    util::RunControl& control) {
  bool armed = false;
  if (const std::int64_t ms = flags.get_int("deadline-ms"); ms > 0) {
    control.set_deadline(static_cast<double>(ms) / 1000.0);
    armed = true;
  } else if (ms < 0) {
    throw std::runtime_error("--deadline-ms must be >= 0");
  }
  if (const std::int64_t limit = flags.get_int("stall-limit"); limit > 0) {
    control.set_stall_limit(static_cast<std::uint64_t>(limit));
    armed = true;
  } else if (limit < 0) {
    throw std::runtime_error("--stall-limit must be >= 0");
  }
  return armed;
}

// Registers the verification & post-mortem flags (docs/ROBUSTNESS.md,
// "Verification & post-mortem"). Call before handle_help().
inline void define_verify_flags(util::Flags& flags) {
  flags.define("verify", "true",
               "certify the finished result (O(V+E) certificate check: "
               "edge consistency, tight acyclic parents, exact labels); "
               "exit 13 on failure");
  flags.define("verify-strict", "false",
               "additionally cross-check every label against Dijkstra "
               "(skipped on very large graphs)");
  flags.define("audit-every", "0",
               "run the online invariant audit every N iterations "
               "(self-tuning only; 0 = off; see docs/ROBUSTNESS.md)");
  flags.define("audit-abort", "false",
               "abort at the iteration boundary when an audit trips "
               "(default: quarantine the controller and keep running)");
  flags.define("flight-out", "",
               "write the flight-recorder JSON dump here after the run "
               "(always enables event recording)");
}

// Registers the resource-budget flags (docs/ROBUSTNESS.md, "Resource
// budgets & exhaustion"). Call before handle_help().
inline void define_resource_flags(util::Flags& flags) {
  flags.define("mem-budget-mb", "0",
               "process memory budget for large allocations in MiB "
               "(0 = unlimited; also $SSSP_MEM_BUDGET_MB); oversize work "
               "is rejected or degraded, never OOM-killed");
  flags.define("scratch-budget-mb", "0",
               "scratch-disk budget for checkpoints/spills in MiB "
               "(0 = unlimited; also $SSSP_SCRATCH_BUDGET_MB)");
  flags.define("fd-headroom", "0",
               "minimum free file descriptors to preserve under "
               "RLIMIT_NOFILE (0 = default 16; also $SSSP_FD_HEADROOM)");
}

// Applies env defaults then flag overrides to the global budget. Call
// before the instrumented work starts.
inline void apply_resource_flags(const util::Flags& flags) {
  res::configure_from_env();
  auto& budget = res::ResourceBudget::global();
  if (const std::int64_t mb = flags.get_int("mem-budget-mb"); mb > 0)
    budget.set_memory_limit(static_cast<std::uint64_t>(mb) * 1024 * 1024);
  else if (mb < 0)
    throw std::runtime_error("--mem-budget-mb must be >= 0");
  if (const std::int64_t mb = flags.get_int("scratch-budget-mb"); mb > 0)
    budget.set_scratch_limit(static_cast<std::uint64_t>(mb) * 1024 * 1024);
  else if (mb < 0)
    throw std::runtime_error("--scratch-budget-mb must be >= 0");
  if (const std::int64_t headroom = flags.get_int("fd-headroom"); headroom > 0)
    budget.set_fd_headroom(static_cast<std::uint64_t>(headroom));
  else if (headroom < 0)
    throw std::runtime_error("--fd-headroom must be >= 0");
}

// Registers the checkpoint/resume flags. Call before handle_help().
inline void define_checkpoint_flags(util::Flags& flags) {
  flags.define("checkpoint-out", "",
               "write crash-consistent checkpoints here (atomic tmp+rename; "
               "docs/ROBUSTNESS.md \"Checkpoint & recovery\")");
  flags.define("checkpoint-every", "0",
               "checkpoint cadence in iterations (0 = only on early stop)");
  flags.define("checkpoint-every-ms", "0",
               "checkpoint cadence in wall-clock milliseconds (0 = off)");
  flags.define("resume", "",
               "resume from this checkpoint file; the run continues the "
               "interrupted trajectory bit-exactly");
}

}  // namespace sssp::tools
