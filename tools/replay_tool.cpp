// replay_tool — device-model what-if analysis without re-running the
// algorithm: load a recorded workload (see sim/workload_io.hpp), then
// sweep devices and DVFS settings over it.
//
//   sssp_tool --in g.bin --workload-csv run.csv   # record (see below)
//   replay_tool --workload run.csv                # sweep TK1+TX1 menus
//   replay_tool --workload run.csv --device-file myboard.cfg
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "obs/run_report.hpp"
#include "sim/device_config.hpp"
#include "sim/energy_metrics.hpp"
#include "sim/run.hpp"
#include "sim/workload_io.hpp"
#include "tools/tool_common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("workload", "", "workload CSV (from sssp_tool --workload-csv)");
  flags.define("resume", "",
               "replay the iteration history recorded in this checkpoint "
               "file instead of a workload CSV");
  flags.define("device-file", "", "only sweep this custom device");
  flags.define("freq-stride", "3", "take every k-th frequency menu entry");
  tools::define_observability_flags(flags);
  tools::define_fault_flags(flags);
  tools::define_threads_flag(flags);
  tools::define_run_control_flags(flags);
  flags.define("report-out", "",
               "write a run-report JSON for the first device's default-"
               "governor replay here");
  if (flags.handle_help("replay a recorded workload across device models"))
    return 0;
  flags.check_unknown();

  util::RunControl control;
  try {
    tools::enable_observability(flags);
    tools::enable_faults(flags);
    const std::size_t threads = tools::apply_threads_flag(flags);
    tools::apply_run_control_flags(flags, control);
    // SIGINT/SIGTERM stop the sweep between replays; whatever was
    // simulated so far is flushed with "interrupted": true and exit 11.
    util::install_signal_stop(control);
    const std::string path = flags.get_string("workload");
    const std::string resume_path = flags.get_string("resume");
    if (path.empty() == resume_path.empty()) {
      std::fprintf(stderr,
                   "exactly one of --workload / --resume is required; see "
                   "--help\n");
      return 2;
    }
    sim::RunWorkload workload;
    if (!resume_path.empty()) {
      // A checkpoint carries the interrupted run's full iteration
      // history — enough to drive every what-if replay without
      // re-running the algorithm.
      const ckpt::RunState state = ckpt::load_checkpoint_file(resume_path);
      workload.algorithm = state.meta.algorithm;
      workload.dataset = resume_path;
      workload.iterations.reserve(state.snapshot.iterations.size());
      for (const auto& it : state.snapshot.iterations)
        workload.iterations.push_back(it.to_work());
    } else {
      workload = sim::load_workload_csv_file(path);
    }
    std::printf("workload: %s on %s, %zu iterations, %llu edge relaxations\n",
                workload.algorithm.c_str(), workload.dataset.c_str(),
                workload.iterations.size(),
                static_cast<unsigned long long>(
                    workload.total_edges_relaxed()));

    std::vector<sim::DeviceSpec> devices;
    if (const auto file = flags.get_string("device-file"); !file.empty()) {
      devices.push_back(sim::load_device_config_file(file));
    } else {
      devices.push_back(sim::DeviceSpec::jetson_tk1());
      devices.push_back(sim::DeviceSpec::jetson_tx1());
    }
    const auto stride = static_cast<std::size_t>(flags.get_int("freq-stride"));

    util::TextTable table;
    table.set_header({"device", "dvfs", "seconds", "avg_power_w", "energy_J",
                      "EDP"});
    const std::string report_path = flags.get_string("report-out");
    std::optional<sim::RunReport> report_run;
    std::string report_device;
    for (const auto& device : devices) {
      auto emit = [&](const sim::DvfsPolicy& policy) {
        if (control.should_abort()) return;
        // The run feeding --report-out keeps its per-iteration reports.
        const bool keep = !report_path.empty() && !report_run.has_value();
        const auto report = sim::simulate_run(device, policy, workload,
                                              {.keep_iteration_reports = keep});
        const auto metrics = sim::compute_energy_metrics(report);
        table.add(device.name, policy.label(), report.total_seconds,
                  report.average_power_w, report.energy_joules, metrics.edp);
        if (keep) {
          report_run = report;
          report_device = device.name;
        }
      };
      emit(sim::DefaultGovernor());
      for (std::size_t ci = 0; ci < device.core_freq_menu_mhz.size();
           ci += stride) {
        for (std::size_t mi = 0; mi < device.mem_freq_menu_mhz.size();
             mi += stride) {
          emit(sim::PinnedDvfs({device.core_freq_menu_mhz[ci],
                                device.mem_freq_menu_mhz[mi]}));
        }
      }
    }
    const util::StopReason stop = control.reason();
    if (stop != util::StopReason::kNone)
      std::printf("sweep stopped early: %s\n", util::to_string(stop));
    std::printf("\n%s", table.to_string().c_str());

    if (report_run) {
      obs::RunReportMeta meta;
      meta.tool = "replay_tool";
      meta.algorithm = workload.algorithm;
      meta.dataset = workload.dataset;
      meta.device = report_device;
      meta.dvfs = "default";
      meta.threads = threads;
      meta.controller_seconds = report_run->controller_seconds;
      meta.interrupted = stop != util::StopReason::kNone;
      meta.outcome = stop == util::StopReason::kNone ? "completed"
                                                     : util::to_string(stop);
      obs::save_run_report(report_path, meta, {}, &*report_run);
      std::printf("wrote run report to %s\n", report_path.c_str());
    }
    tools::print_fault_summary();
    tools::write_observability_outputs(flags);
    if (stop != util::StopReason::kNone)
      return tools::exit_code_for_stop(stop);
  } catch (const graph::GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::exit_code_for(e);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
