// replay_tool — device-model what-if analysis without re-running the
// algorithm: load a recorded workload (see sim/workload_io.hpp), then
// sweep devices and DVFS settings over it.
//
//   sssp_tool --in g.bin --workload-csv run.csv   # record (see below)
//   replay_tool --workload run.csv                # sweep TK1+TX1 menus
//   replay_tool --workload run.csv --device-file myboard.cfg
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/checkpointed_run.hpp"
#include "core/self_tuning.hpp"
#include "obs/run_report.hpp"
#include "sim/device_config.hpp"
#include "sim/energy_metrics.hpp"
#include "sim/run.hpp"
#include "sim/workload_io.hpp"
#include "tools/tool_common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "verify/certifier.hpp"
#include "verify/flight_recorder.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("workload", "", "workload CSV (from sssp_tool --workload-csv)");
  flags.define("resume", "",
               "replay the iteration history recorded in this checkpoint "
               "file instead of a workload CSV");
  flags.define("device-file", "", "only sweep this custom device");
  flags.define("freq-stride", "3", "take every k-th frequency menu entry");
  flags.define("graph", "",
               "with --resume: the checkpoint's graph file; the run is "
               "finished in-process and the result certified (exit 13 on "
               "failure)");
  tools::define_observability_flags(flags);
  tools::define_fault_flags(flags);
  tools::define_threads_flag(flags);
  tools::define_run_control_flags(flags);
  tools::define_resource_flags(flags);
  tools::define_verify_flags(flags);
  flags.define("report-out", "",
               "write a run-report JSON for the first device's default-"
               "governor replay here");
  if (flags.handle_help("replay a recorded workload across device models"))
    return 0;
  flags.check_unknown();

  util::RunControl control;
  try {
    tools::enable_observability(flags);
    tools::enable_faults(flags);
    if (!flags.get_string("flight-out").empty() ||
        flags.get_int("audit-every") > 0)
      verify::set_flight_enabled(true);
    const std::size_t threads = tools::apply_threads_flag(flags);
    tools::apply_run_control_flags(flags, control);
    tools::apply_resource_flags(flags);
    // SIGINT/SIGTERM stop the sweep between replays; whatever was
    // simulated so far is flushed with "interrupted": true and exit 11.
    util::install_signal_stop(control);
    const std::string path = flags.get_string("workload");
    const std::string resume_path = flags.get_string("resume");
    if (path.empty() == resume_path.empty()) {
      std::fprintf(stderr,
                   "exactly one of --workload / --resume is required; see "
                   "--help\n");
      return 2;
    }
    sim::RunWorkload workload;
    if (!resume_path.empty()) {
      // A checkpoint carries the interrupted run's full iteration
      // history — enough to drive every what-if replay without
      // re-running the algorithm.
      const ckpt::RunState state = ckpt::load_checkpoint_file(resume_path);
      workload.algorithm = state.meta.algorithm;
      workload.dataset = resume_path;
      workload.iterations.reserve(state.snapshot.iterations.size());
      for (const auto& it : state.snapshot.iterations)
        workload.iterations.push_back(it.to_work());
    } else {
      workload = sim::load_workload_csv_file(path);
    }
    std::printf("workload: %s on %s, %zu iterations, %llu edge relaxations\n",
                workload.algorithm.c_str(), workload.dataset.c_str(),
                workload.iterations.size(),
                static_cast<unsigned long long>(
                    workload.total_edges_relaxed()));

    std::vector<sim::DeviceSpec> devices;
    if (const auto file = flags.get_string("device-file"); !file.empty()) {
      devices.push_back(sim::load_device_config_file(file));
    } else {
      devices.push_back(sim::DeviceSpec::jetson_tk1());
      devices.push_back(sim::DeviceSpec::jetson_tx1());
    }
    const auto stride = static_cast<std::size_t>(flags.get_int("freq-stride"));

    util::TextTable table;
    table.set_header({"device", "dvfs", "seconds", "avg_power_w", "energy_J",
                      "EDP"});
    const std::string report_path = flags.get_string("report-out");
    std::optional<sim::RunReport> report_run;
    std::string report_device;
    for (const auto& device : devices) {
      auto emit = [&](const sim::DvfsPolicy& policy) {
        if (control.should_abort()) return;
        // The run feeding --report-out keeps its per-iteration reports.
        const bool keep = !report_path.empty() && !report_run.has_value();
        const auto report = sim::simulate_run(device, policy, workload,
                                              {.keep_iteration_reports = keep});
        const auto metrics = sim::compute_energy_metrics(report);
        table.add(device.name, policy.label(), report.total_seconds,
                  report.average_power_w, report.energy_joules, metrics.edp);
        if (keep) {
          report_run = report;
          report_device = device.name;
        }
      };
      emit(sim::DefaultGovernor());
      for (std::size_t ci = 0; ci < device.core_freq_menu_mhz.size();
           ci += stride) {
        for (std::size_t mi = 0; mi < device.mem_freq_menu_mhz.size();
             mi += stride) {
          emit(sim::PinnedDvfs({device.core_freq_menu_mhz[ci],
                                device.mem_freq_menu_mhz[mi]}));
        }
      }
    }
    const util::StopReason stop = control.reason();
    if (stop != util::StopReason::kNone)
      std::printf("sweep stopped early: %s\n", util::to_string(stop));
    std::printf("\n%s", table.to_string().c_str());

    // --graph: finish the checkpointed run in-process and certify the
    // final result — answers "does this checkpoint still lead to a
    // provably correct answer?" without a separate sssp_tool invocation.
    bool certification_failed = false;
    obs::RunReportVerification verification;
    const std::string graph_path = flags.get_string("graph");
    if (!graph_path.empty() && resume_path.empty())
      std::fprintf(stderr, "warning: --graph is only used with --resume\n");
    const bool strict = flags.get_bool("verify-strict");
    if (!graph_path.empty() && !resume_path.empty() &&
        (flags.get_bool("verify") || strict) &&
        stop == util::StopReason::kNone) {
      const graph::CsrGraph g = tools::load_any_graph(graph_path);
      ckpt::RunState resume_state = ckpt::load_checkpoint_file(resume_path);
      core::SelfTuningOptions options;  // replaced by the checkpoint's
      options.audit_every = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, flags.get_int("audit-every")));
      options.audit_abort = flags.get_bool("audit-abort");
      const ckpt::CheckpointedResult finished =
          ckpt::run_self_tuning_checkpointed(g, resume_state.meta.source,
                                             options, {}, &control,
                                             &resume_state);
      verification.audits_run = finished.result.audits_run;
      verification.audit_violations = finished.result.audit_violations;
      if (finished.audit_aborted) {
        std::printf("checkpoint completion run aborted by invariant audit\n");
        verification.requested = true;
        certification_failed = true;
      } else if (finished.stop != util::StopReason::kNone) {
        std::printf("checkpoint completion run stopped early: %s\n",
                    util::to_string(finished.stop));
      } else {
        verify::CertifyOptions copts;
        copts.strict = strict;
        const verify::Certificate cert = verify::certify(g, finished.result,
                                                         copts);
        std::printf("certification: %s (%s)\n",
                    cert.certified ? "PASS" : "FAILED",
                    cert.summary().c_str());
        if (!cert.certified)
          for (const verify::Violation& v : cert.samples)
            std::fprintf(stderr, "  violation: %s at v=%llu: %s\n",
                         verify::to_string(v.kind),
                         static_cast<unsigned long long>(v.vertex),
                         v.detail.c_str());
        verification.requested = true;
        verification.mode = strict ? "certify+dijkstra" : "certify";
        verification.certified = cert.certified;
        verification.vertices_checked = cert.vertices_checked;
        verification.edges_checked = cert.edges_checked;
        verification.violations = cert.violations;
        verification.seconds = cert.seconds;
        for (const verify::Violation& v : cert.samples)
          verification.samples.push_back(
              std::string(verify::to_string(v.kind)) + " at v=" +
              std::to_string(v.vertex) + ": " + v.detail);
        certification_failed = !cert.certified;
      }
    }
    if (const auto fpath = flags.get_string("flight-out"); !fpath.empty()) {
      const char* reason = certification_failed ? "certification-failed"
                                                : "replay-complete";
      if (verify::FlightRecorder::global().save(fpath, reason)) {
        verification.flight_recorder_path = fpath;
        std::printf("wrote flight recorder dump to %s\n", fpath.c_str());
      } else {
        std::fprintf(stderr, "flight recorder dump failed: %s\n",
                     fpath.c_str());
      }
    }

    if (report_run) {
      obs::RunReportMeta meta;
      meta.tool = "replay_tool";
      meta.algorithm = workload.algorithm;
      meta.dataset = workload.dataset;
      meta.device = report_device;
      meta.dvfs = "default";
      meta.threads = threads;
      meta.controller_seconds = report_run->controller_seconds;
      meta.interrupted = stop != util::StopReason::kNone;
      meta.outcome = stop == util::StopReason::kNone ? "completed"
                                                     : util::to_string(stop);
      meta.verification = verification;
      obs::save_run_report(report_path, meta, {}, &*report_run);
      std::printf("wrote run report to %s\n", report_path.c_str());
    }
    tools::print_fault_summary();
    tools::write_observability_outputs(flags);
    if (stop != util::StopReason::kNone)
      return tools::exit_code_for_stop(stop);
    if (certification_failed) return tools::kExitCertificationFailed;
  } catch (const graph::GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::exit_code_for(e);
  } catch (const util::DiskFullError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitDiskFull;
  } catch (const res::ResourceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitResourceBudget;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "error: out of memory\n");
    return tools::kExitResourceBudget;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
